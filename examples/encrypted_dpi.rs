//! Encrypted-traffic analysis (§III-D): the client's patched TLS library
//! forwards session keys into the enclave, where the `TLSDecrypt` Click
//! element decrypts application records so the IDS can inspect them — no
//! MITM proxy, no TLS protocol changes, no custom root certificate.
//!
//! ```text
//! cargo run --example encrypted_dpi
//! ```

use endbox::scenario::Scenario;
use endbox::tls_shim::{TlsClientSession, TlsServer};
use endbox::use_cases::UseCase;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// Client Click chain: decrypt TLS records in the enclave, then run the
/// IDS over the *plaintext*.
const DPI_CONFIG: &str = "FromDevice(tun0) \
     -> tls :: TLSDecrypt \
     -> ids :: IDSMatcher(COMMUNITY 377) \
     -> ToDevice(tun0);\n\
     ids[1] -> Discard;";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Encrypted-traffic DPI (§III-D)");
    println!("==============================\n");

    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let mut scenario = Scenario::enterprise(1, UseCase::Nop)
        .custom_client_click(DPI_CONFIG)
        .build()?;

    // An HTTPS server out on the Internet.
    let web_server = TlsServer::new(Ipv4Addr::new(93, 184, 216, 34), 443, &mut rng);
    println!("HTTPS server up at {}:443", web_server.addr);

    // The browser (linked against the patched OpenSSL) opens a session…
    let mut session =
        TlsClientSession::connect(Scenario::client_addr(0), 40_443, &web_server, &mut rng);
    // …and the patched library forwards the session key to the enclave
    // over the management interface.
    session.forward_key_to_endbox(&mut scenario.clients[0])?;
    println!("TLS session negotiated; key forwarded into the enclave");

    // An innocuous encrypted request passes.
    let request = session.encrypt_request(b"GET /index.html HTTP/1.1");
    assert!(
        !request.app_payload().windows(4).any(|w| w == b"GET "),
        "wire is ciphertext"
    );
    let datagrams = scenario.clients[0].send_packet(request)?;
    assert!(!datagrams.is_empty());
    println!("benign HTTPS request passed DPI (decrypted + scanned inside the enclave)");

    // Malware exfiltrating over TLS: ciphertext on the wire, but the
    // in-enclave IDS sees plaintext and the drop rule fires. Rule 11 of
    // the synthetic community set is a `drop` rule on port 443; its
    // triggering payload carries both required content patterns.
    let mut exfil = b"POST /upload stolen-data ".to_vec();
    exfil.extend_from_slice(&endbox_snort::community::triggering_payload(11));
    let evil = session.encrypt_request(&exfil);
    let datagrams = scenario.clients[0].send_packet(evil)?;
    assert!(datagrams.is_empty(), "IDS must drop the decrypted malware");
    println!("encrypted malware payload DROPPED despite TLS");

    println!(
        "\nDPI element counters: decrypted={}, IDS alerts={}",
        scenario.clients[0]
            .click_handler("tls", "decrypted")
            .unwrap_or_default(),
        scenario.clients[0]
            .click_handler("ids", "alerts")
            .unwrap_or_default(),
    );

    // Without key forwarding, the IDS only sees ciphertext: nothing fires.
    let mut blind = Scenario::enterprise(1, UseCase::Nop)
        .custom_client_click(DPI_CONFIG)
        .seed(3)
        .build()?;
    let mut session2 =
        TlsClientSession::connect(Scenario::client_addr(0), 40_444, &web_server, &mut rng);
    // (no forward_key_to_endbox call)
    let mut exfil2 = b"POST /upload stolen-data ".to_vec();
    exfil2.extend_from_slice(&endbox_snort::community::triggering_payload(11));
    let evil2 = session2.encrypt_request(&exfil2);
    let datagrams = blind.clients[0].send_packet(evil2)?;
    assert!(
        !datagrams.is_empty(),
        "without the key the IDS cannot see the plaintext"
    );
    println!("\ncontrol run without key forwarding: ciphertext passes (as expected)");
    println!("-> DPI on encrypted traffic requires only the forwarded session key.");
    Ok(())
}
