//! Scenario 2 (§II-A): an ISP deploys EndBox on customer machines to run
//! DDoS prevention at the source. Demonstrates: integrity-only traffic
//! protection (§IV-A), plaintext configuration files customers can
//! inspect, and the TrustedSplitter rate limiter throttling a flood.
//!
//! ```text
//! cargo run --example isp_network
//! ```

use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ISP network scenario (Fig. 2b)");
    println!("==============================\n");

    let mut scenario = Scenario::isp(2, UseCase::DdosPrevention).build()?;
    println!("2 customer machines enrolled with the DDoS-prevention plan");
    println!("traffic protection: integrity-only (customers opted in; §IV-A)");

    // Customers can inspect the rules: ISP configs are NOT encrypted.
    let stored = scenario.config_server.fetch(1).unwrap();
    println!(
        "\nconfig on the file server is plaintext: encrypted={}",
        stored.encrypted
    );
    let click_text = stored.plaintext_click().unwrap();
    println!("first line of the inspectable config:");
    println!("  {}", click_text.lines().next().unwrap_or_default());

    // Normal browsing traffic flows.
    scenario.send_from_client(0, b"regular customer browsing traffic")?;
    println!("\nbenign customer traffic delivered");

    // The ISP tightens customer 1's plan to 10 Mbps via a config update
    // (Fig. 5), then customer 1's IoT camera joins a botnet and floods.
    // The TrustedSplitter throttles the flood at the customer's own
    // machine — the ISP backbone never sees the excess.
    let plan = "FromDevice(tun0) \
         -> ids :: IDSMatcher(COMMUNITY 377) \
         -> shaper :: TrustedSplitter(RATE 10000000, SAMPLE 1000) \
         -> ToDevice(tun0);\n\
         ids[1] -> Discard;\n\
         shaper[1] -> Discard;";
    let v = scenario.update_config(plan, 0)?;
    println!("\nISP pushed 10 Mbps rate-limit plan as config v{v}");

    let mut sent = 0u32;
    let mut delivered = 0u32;
    for _ in 0..2_000 {
        sent += 1;
        if scenario.send_from_client(1, &[b'f'; 1200]).is_ok() {
            delivered += 1;
        }
    }
    println!("\nflood from customer 1: {sent} packets sent, {delivered} passed the rate limiter");
    println!(
        "splitter counters: conformed={}, exceeded={}",
        scenario.clients[1]
            .click_handler("shaper", "conformed")
            .unwrap_or_default(),
        scenario.clients[1]
            .click_handler("shaper", "exceeded")
            .unwrap_or_default(),
    );
    assert!(delivered < sent, "the shaper must throttle the flood");

    // Customer 0 is unaffected by the neighbour's flood (client-side
    // middleboxes fail/throttle independently, §V-A).
    scenario.send_from_client(0, b"still browsing fine")?;
    println!("\ncustomer 0 unaffected by the neighbour's flood — done.");
    Ok(())
}
