//! Event-driven socket ingress, step by step: sealed datagrams ride the
//! in-process wire into per-peer server sockets, and the
//! `AsyncFrontEnd`'s poll loop (one poll group per RX shard) drains them
//! into the pipelined dispatch — including what backpressure looks like
//! when one peer floods its socket.
//!
//! The condensed version is the rustdoc example on
//! `endbox::server::AsyncFrontEnd`.
//!
//! ```text
//! cargo run --example async_ingress
//! ```

use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Event-driven socket front-end");
    println!("=============================\n");

    // 6 peers, 2 RX framing shards (so 2 poll groups), 2 crypto workers.
    let mut s = Scenario::enterprise(6, UseCase::Firewall)
        .rx_shards(2)
        .async_ingress(true)
        .build_sharded(2)?;
    println!(
        "6 peers connected; {} poll groups over {} RX shards, {} workers",
        s.server.rx_shard_count(),
        s.server.rx_shard_count(),
        s.server.worker_count()
    );

    // Every peer seals one small record and puts it on the wire. Nothing
    // is processed yet — the datagrams sit in the server-side sockets.
    for peer in 0..6 {
        let pkt = Packet::tcp(
            Scenario::client_addr(peer),
            Scenario::network_addr(),
            40_000 + peer as u16,
            5_001,
            0,
            format!("peer {peer} says hello").as_bytes(),
        );
        let sealed = s.clients[peer].send_packet(pkt)?;
        s.send_wire_datagrams(peer as u64, sealed);
    }
    println!(
        "\n6 datagrams queued in sockets (backlog = {})",
        s.backlog()
    );

    // One pump: poll both groups, drain every readable socket, re-merge
    // by wire arrival stamp, one pipelined dispatch.
    let results = s.pump_async();
    println!("one event-loop run delivered {} packets", results.len());
    let stats = s.async_stats();
    println!(
        "stats: {} wakeups for {} datagrams ({:.2} wakeups/datagram — the \
         amortisation a call-driven front-end never gets)",
        stats.wakeups,
        stats.datagrams,
        stats.wakeups as f64 / stats.datagrams as f64
    );

    // Backpressure: peer 0 floods while its shard-mate (peer 2, same
    // RX shard: 2 mod 2 == 0) sends one packet. With a tight budget the
    // mate still rides the first round; the flood's tail defers.
    s.set_async_budget(2, 4);
    for seq in 0..10 {
        let pkt = Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5_001,
            1 + seq,
            b"flood flood flood",
        );
        let sealed = s.clients[0].send_packet(pkt)?;
        s.send_wire_datagrams(0, sealed);
    }
    let pkt = Packet::tcp(
        Scenario::client_addr(2),
        Scenario::network_addr(),
        40_002,
        5_001,
        1,
        b"just one polite packet",
    );
    let sealed = s.clients[2].send_packet(pkt)?;
    s.send_wire_datagrams(2, sealed);

    let first_round = s.pump_async_round();
    let served: Vec<u64> = first_round.iter().map(|(p, _)| *p).collect();
    println!(
        "\nflood round 1 (budget 4/shard): served peers {served:?} — the \
         shard-mate was not starved; backlog {} defers to later rounds",
        s.backlog()
    );
    let rest = s.pump_async();
    println!(
        "remaining rounds drained {} datagrams; deferred_rounds = {}",
        rest.len(),
        s.async_stats().deferred_rounds
    );

    println!("\nevent-driven ingress complete.");
    Ok(())
}
