//! The §V-A security evaluation as a runnable demo: every attack from the
//! paper mounted against live deployments.
//!
//! ```text
//! cargo run --example attack_simulation
//! ```

use endbox::attacks::{run_all, AttackOutcome};

fn main() {
    println!("EndBox attack simulation (§V-A)");
    println!("===============================\n");
    let results = run_all();
    let mut defended = 0;
    for (name, outcome) in &results {
        match outcome {
            AttackOutcome::Defended(why) => {
                defended += 1;
                println!("[defended] {name}");
                println!("           {why}\n");
            }
            AttackOutcome::Breached(why) => {
                println!("[BREACHED] {name}: {why}\n");
            }
        }
    }
    println!("{defended}/{} attacks defended.", results.len());
    assert_eq!(defended, results.len(), "all attacks must be defended");
}
