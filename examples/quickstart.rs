//! Quickstart: bring up a complete EndBox deployment — attestation
//! service, certificate authority, VPN server and one client running a
//! firewall middlebox inside its enclave — then push traffic through it,
//! single packets and batches alike.
//!
//! The condensed version of this walk-through lives as runnable rustdoc
//! examples on `endbox::scenario::ScenarioBuilder` and
//! `endbox::scenario::ScenarioBuilder::build_sharded`; the sharded and
//! event-driven deployments are shown in
//! `examples/enterprise_network.rs` and `examples/async_ingress.rs`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("EndBox quickstart");
    println!("=================\n");

    // One client, hardware-mode enclave, the FW middlebox (16 rules).
    // Building the scenario runs the entire Fig. 4 machinery: enclave
    // creation, key generation inside the enclave, quoting, IAS
    // verification, certificate issuance and the VPN handshake.
    let mut scenario = Scenario::enterprise(1, UseCase::Firewall).build()?;
    println!(
        "client 0 enrolled + connected (session {})",
        scenario.session_id(0)
    );
    println!(
        "enclave measurement: {}",
        scenario.clients[0].enclave_app().measurement()
    );

    // Send application traffic into the managed network.
    let delivered = scenario.send_from_client(0, b"hello managed network")?;
    println!(
        "\ndelivered through middlebox + tunnel: {:?} -> {:?}, payload {:?}",
        delivered.header().src,
        delivered.header().dst,
        std::str::from_utf8(delivered.app_payload())?
    );

    // Inspect the in-enclave firewall through the management interface.
    println!(
        "\nfirewall counters: allowed={}, denied={} (of {} rules)",
        scenario.clients[0]
            .click_handler("fw", "allowed")
            .unwrap_or_default(),
        scenario.clients[0]
            .click_handler("fw", "denied")
            .unwrap_or_default(),
        scenario.clients[0]
            .click_handler("fw", "rules")
            .unwrap_or_default(),
    );

    // Batched send (§IV batching): many packets, ONE enclave transition,
    // ONE Click traversal, ONE sealed record on the wire.
    let payloads: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("batched payload {i}").into_bytes())
        .collect();
    let datagrams_before = scenario.clients[0].stats.datagrams_out;
    let batch = scenario.send_batch_from_client(0, &payloads)?;
    println!(
        "\nbatched send: {} packets delivered in {} wire record(s)",
        batch.len(),
        scenario.clients[0].stats.datagrams_out - datagrams_before,
    );

    // Push a configuration update through the Fig. 5 protocol.
    let new_version = scenario.update_config(&UseCase::Idps.click_config(), 30)?;
    println!("\nhot-swapped to IDPS config, version {new_version}");
    println!(
        "IDS now active with {} rules",
        scenario.clients[0]
            .click_handler("ids", "rules")
            .unwrap_or_default()
    );

    // Traffic still flows after the swap.
    scenario.send_from_client(0, b"traffic after the hot swap")?;
    println!("\ntraffic flows after reconfiguration — done.");
    Ok(())
}
