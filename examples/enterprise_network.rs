//! Scenario 1 (§II-A): a large company offloads its middleboxes to
//! employee machines. Demonstrates: several clients with IDPS, encrypted
//! configuration files (rules hidden from employees), a malicious
//! payload being dropped at the *source*, and grace-period enforcement
//! against a client that refuses to update.
//!
//! ```text
//! cargo run --example enterprise_network
//! ```

use endbox::error::EndBoxError;
use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Enterprise network scenario (Fig. 2a)");
    println!("=====================================\n");

    let mut scenario = Scenario::enterprise(3, UseCase::Idps).build()?;
    println!("3 employee machines enrolled; IDPS (377 rules) runs inside each enclave");

    // Normal work traffic flows.
    for i in 0..3 {
        scenario.send_from_client(i, b"quarterly report upload")?;
    }
    println!("benign traffic from all 3 clients delivered");

    // Employee 1's machine is infected: the malware tries to reach an
    // internal server. Rule 0 of the rule set (a `drop` rule on port 80)
    // catches it before the packet ever leaves the machine.
    let malware_packet = Packet::tcp(
        Scenario::client_addr(1),
        Scenario::network_addr(),
        40_001,
        80,
        0,
        b"beacon EB-MAL-0000 exfil",
    );
    match scenario.send_packet_from_client(1, malware_packet) {
        Err(EndBoxError::PacketDropped) => {
            println!("malware beacon DROPPED at the source by the in-enclave IDPS");
        }
        other => panic!("expected drop, got {other:?}"),
    }
    println!(
        "client 1 IDS alerts: {}",
        scenario.clients[1]
            .click_handler("ids", "alerts")
            .unwrap_or_default()
    );

    // The admin pushes an updated (encrypted!) rule set with a 30 s grace
    // period. Configs are encrypted in the enterprise scenario so
    // employees cannot read the detection rules (§III-E).
    let version = scenario.update_config(&UseCase::DdosPrevention.click_config(), 30)?;
    println!("\nadmin pushed config v{version} (encrypted, 30 s grace period)");
    for i in 0..3 {
        println!("  client {i} now at version {}", scenario.client_version(i));
    }
    let stored = scenario.config_server.fetch(version).unwrap();
    println!(
        "  config on the file server is encrypted: {} ({} bytes)",
        stored.encrypted,
        stored.payload.len()
    );

    // A stale client (simulated by a fresh deployment where client 0 skips
    // the update) is blocked once the grace period is over.
    let mut stale = Scenario::enterprise(1, UseCase::Idps).seed(7).build()?;
    stale.server.announce_config(99, 0); // grace period 0 s
    let pkt = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        b"from stale client",
    );
    match stale.send_packet_from_client(0, pkt) {
        Err(EndBoxError::Vpn(endbox_vpn::VpnError::StaleConfiguration { client, required })) => {
            println!(
                "\nstale client blocked after grace period (has v{client}, server requires v{required})"
            );
        }
        other => panic!("expected stale-config block, got {other:?}"),
    }

    // Scale-out: the same enterprise, served by the sharded pipeline —
    // 2 RX framing shards in front of 2 session-crypto workers, every
    // client's batch in one multi-client dispatch. Results are
    // byte-identical to the single-threaded server (the parity grids in
    // tests/ are the proof); the sharding win shows up in
    // `exp_fig10_scalability` / `exp_rx_scaling`.
    let mut sharded = Scenario::enterprise(4, UseCase::Idps)
        .seed(11)
        .rx_shards(2)
        .build_sharded(2)?;
    let payloads: Vec<Vec<Vec<u8>>> = (0..4)
        .map(|c| {
            (0..4)
                .map(|i| format!("dept {c} doc {i}").into_bytes())
                .collect()
        })
        .collect();
    let delivered = sharded.send_batches_from_all(&payloads)?;
    println!(
        "\nsharded fan-in: {} clients x {} packets through {} RX shards / {} workers, all delivered",
        delivered.len(),
        delivered[0].len(),
        sharded.server.rx_shard_count(),
        sharded.server.worker_count(),
    );

    println!("\nenterprise scenario complete.");
    Ok(())
}
