//! Shard determinism: a sharded server with N ∈ {1, 2, 4, 8} workers must
//! be observationally equivalent to the single-threaded server on
//! interleaved multi-client traffic — byte-identical per-client
//! emissions, identical drop/replay verdicts, identical session state —
//! for any thread schedule, under **both** dispatch policies (static
//! session-id affinity and the load-aware dispatcher with bounded
//! migration) and with the pipelined RX front-end in between.
//!
//! Both servers are driven with byte-identical wire traffic: scenarios
//! built from the same seed produce identical client key material, so
//! replaying the same (client, action) script through each scenario's own
//! clients yields the same datagrams bit for bit.

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::{Scenario, ShardedScenario};
use endbox::use_cases::UseCase;
use endbox::EndBoxClient;
use endbox_netsim::Packet;
use endbox_vpn::shard::DispatchPolicy;

/// `(workers, rx_shards)` pairs the named parity tests run: every worker
/// count, with the RX pool width varied alongside (the full
/// rx × workers × policy cross-product runs in `tests/rx_interleaving.rs`
/// and the proptests below).
const PARITY_GRID: [(usize, usize); 4] = [(1, 4), (2, 2), (4, 1), (8, 4)];

/// An aggressive load-aware configuration so that even the small parity
/// scripts cross the migration threshold — parity must hold *across*
/// migrations, not just in their absence.
fn eager_load_aware() -> DispatchPolicy {
    DispatchPolicy::LoadAware {
        imbalance_bytes: 1_000,
        max_migrations_per_dispatch: 2,
    }
}

fn parity_policies() -> [DispatchPolicy; 2] {
    [DispatchPolicy::Static, eager_load_aware()]
}

/// One step of the traffic script.
#[derive(Debug, Clone)]
enum Action {
    /// `client` seals a batch of `n_packets` payloads.
    SendBatch { client: usize, n_packets: usize },
    /// `client` seals a single data record.
    SendSingle { client: usize },
    /// `client` sends a config-version ping.
    Ping { client: usize },
    /// Re-send every datagram of the previous round (replay attack).
    Replay,
}

// The per-delivery view both servers must agree on lives in the shared
// harness, so this file and the schedule-based tests compare the same
// thing.
use support::{simplify, Out};

/// Builds the wire datagrams for one action using the given scenario's
/// own clients (deterministic: both scenarios produce identical bytes).
fn seal_action(
    clients: &mut [EndBoxClient],
    action: &Action,
    round: usize,
    prev_round: &[(u64, Vec<u8>)],
) -> Vec<(u64, Vec<u8>)> {
    let payload = |client: usize, i: usize| {
        format!(
            "round {round} client {client} packet {i} {}",
            "x".repeat(round % 37)
        )
        .into_bytes()
    };
    let mk_packet = |client: usize, i: usize| {
        Packet::tcp(
            Scenario::client_addr(client),
            Scenario::network_addr(),
            40_000 + client as u16,
            5_001,
            i as u32,
            &payload(client, i),
        )
    };
    match action {
        Action::SendBatch { client, n_packets } => {
            let packets: Vec<Packet> = (0..*n_packets).map(|i| mk_packet(*client, i)).collect();
            clients[*client]
                .send_batch(packets)
                .unwrap()
                .into_iter()
                .map(|d| (*client as u64, d))
                .collect()
        }
        Action::SendSingle { client } => clients[*client]
            .send_packet(mk_packet(*client, 0))
            .unwrap()
            .into_iter()
            .map(|d| (*client as u64, d))
            .collect(),
        Action::Ping { client } => clients[*client]
            .build_ping()
            .unwrap()
            .into_iter()
            .map(|d| (*client as u64, d))
            .collect(),
        Action::Replay => prev_round.to_vec(),
    }
}

/// Drives the script through a single-threaded scenario, one datagram at
/// a time (the reference behaviour).
fn run_single(scenario: &mut Scenario, script: &[Action]) -> Vec<Out> {
    let mut outs = Vec::new();
    let mut prev: Vec<(u64, Vec<u8>)> = Vec::new();
    for (round, action) in script.iter().enumerate() {
        let datagrams = seal_action(&mut scenario.clients, action, round, &prev);
        for (peer, d) in &datagrams {
            outs.push(simplify(scenario.server.receive_datagram(*peer, d)));
        }
        prev = datagrams;
    }
    outs
}

/// Drives the same script through a sharded scenario; each round's
/// datagrams go through the server as **one** pipelined multi-client
/// dispatch (ownership moves into the RX stage).
fn run_sharded(scenario: &mut ShardedScenario, script: &[Action]) -> Vec<Out> {
    let mut outs = Vec::new();
    let mut prev: Vec<(u64, Vec<u8>)> = Vec::new();
    for (round, action) in script.iter().enumerate() {
        let datagrams = seal_action(&mut scenario.clients, action, round, &prev);
        outs.extend(
            scenario
                .server
                .receive_datagrams(datagrams.clone())
                .into_iter()
                .map(simplify),
        );
        prev = datagrams;
    }
    outs
}

/// Asserts parity for every worker count under `policy`; returns the
/// total migrations the dispatcher performed across all worker counts.
fn assert_parity_with(
    n_clients: usize,
    use_case: UseCase,
    seed: u64,
    script: &[Action],
    policy: DispatchPolicy,
) -> u64 {
    let mut single = Scenario::enterprise(n_clients, use_case)
        .seed(seed)
        .build()
        .unwrap();
    let reference = run_single(&mut single, script);
    let mut migrations = 0;
    for (workers, rx_shards) in PARITY_GRID {
        let mut sharded = Scenario::enterprise(n_clients, use_case)
            .seed(seed)
            .dispatch(policy)
            .rx_shards(rx_shards)
            .build_sharded(workers)
            .unwrap();
        let got = run_sharded(&mut sharded, script);
        assert_eq!(
            got, reference,
            "N={workers} workers, K={rx_shards} RX shards ({policy:?}) diverged from \
             the single-threaded server (clients={n_clients}, seed={seed})"
        );
        // Session state agrees too.
        assert_eq!(sharded.server.session_ids(), single.server.session_ids());
        for idx in 0..n_clients {
            assert_eq!(
                sharded
                    .server
                    .client_config_version(sharded.session_id(idx)),
                single.server.client_config_version(single.session_id(idx)),
                "reported config version diverged for client {idx}"
            );
        }
        let (delivered_single, _, _) = single.server.counters();
        let (delivered_sharded, _) = sharded.server.counters();
        assert_eq!(delivered_sharded, delivered_single);
        migrations += sharded.server.migrations();
    }
    migrations
}

fn assert_parity(n_clients: usize, use_case: UseCase, seed: u64, script: &[Action]) {
    for policy in parity_policies() {
        assert_parity_with(n_clients, use_case, seed, script, policy);
    }
}

#[test]
fn interleaved_batches_with_replays_match_single_server() {
    let script = vec![
        Action::SendBatch {
            client: 0,
            n_packets: 4,
        },
        Action::SendBatch {
            client: 1,
            n_packets: 3,
        },
        Action::Replay, // both batches replayed -> Replay verdicts
        Action::SendSingle { client: 2 },
        Action::SendBatch {
            client: 2,
            n_packets: 8,
        },
        Action::Ping { client: 0 },
        Action::SendBatch {
            client: 0,
            n_packets: 1,
        },
        Action::Replay,
    ];
    assert_parity(3, UseCase::Firewall, 0xeb01, &script);
}

#[test]
fn config_grace_period_verdicts_match_single_server() {
    // Announce a new config on both servers, then send stale traffic:
    // the StaleConfiguration verdicts (and the recovery after a ping)
    // must agree shard-for-shard.
    let n_clients = 2;
    let mut single = Scenario::enterprise(n_clients, UseCase::Nop)
        .seed(7)
        .build()
        .unwrap();
    for (workers, rx_shards) in PARITY_GRID {
        let mut sharded = Scenario::enterprise(n_clients, UseCase::Nop)
            .seed(7)
            .rx_shards(rx_shards)
            .build_sharded(workers)
            .unwrap();
        // (Policy default: load-aware; the stale-config verdicts must be
        // identical regardless.)
        single.server.announce_config(2, 0);
        sharded.server.announce_config(2, 0);
        let script = vec![
            Action::SendBatch {
                client: 0,
                n_packets: 2,
            },
            Action::SendSingle { client: 1 },
        ];
        let reference = run_single(&mut single, &script);
        let got = run_sharded(&mut sharded, &script);
        assert_eq!(got, reference, "N={workers}");
        assert!(
            reference
                .iter()
                .all(|o| matches!(o, Out::Rejected(_) | Out::Pending)),
            "stale traffic must be rejected: {reference:?}"
        );
        // A fresh single server for the next worker count (its replay
        // windows advanced).
        single = Scenario::enterprise(n_clients, UseCase::Nop)
            .seed(7)
            .build()
            .unwrap();
    }
}

#[test]
fn heavy_tailed_load_mix_matches_single_server_and_migrates() {
    // Clients 0 and 4 (session ids 1 and 5 — both homed on shard 0 at 4
    // workers) are elephants; the rest are mice. The load-aware
    // dispatcher must migrate under this mix, and the output must stay
    // byte-identical to the single-threaded server across the migration.
    let mut script = Vec::new();
    for round in 0..6 {
        script.push(Action::SendBatch {
            client: 0,
            n_packets: 24,
        });
        script.push(Action::SendBatch {
            client: 4,
            n_packets: 16,
        });
        for client in [1, 2, 3] {
            script.push(Action::SendBatch {
                client,
                n_packets: 1,
            });
        }
        if round % 2 == 1 {
            script.push(Action::Replay);
        }
    }
    assert_parity_with(
        5,
        UseCase::Firewall,
        0xeb77,
        &script,
        DispatchPolicy::Static,
    );
    let migrations = assert_parity_with(5, UseCase::Firewall, 0xeb77, &script, eager_load_aware());
    assert!(
        migrations > 0,
        "the heavy-tailed mix must exercise actual migrations"
    );
}

#[test]
fn adversarial_single_session_load_matches_single_server() {
    // All traffic from ONE session: the worst case for any dispatcher (a
    // session is unsplittable, so migration cannot help and must not
    // fire pathologically or corrupt the replay window).
    let mut script = Vec::new();
    for _ in 0..5 {
        script.push(Action::SendBatch {
            client: 0,
            n_packets: 8,
        });
        script.push(Action::SendSingle { client: 0 });
        script.push(Action::Replay);
        script.push(Action::Ping { client: 0 });
    }
    assert_parity_with(
        3,
        UseCase::Firewall,
        0xeb78,
        &script,
        DispatchPolicy::Static,
    );
    let migrations = assert_parity_with(3, UseCase::Firewall, 0xeb78, &script, eager_load_aware());
    assert_eq!(
        migrations, 0,
        "an unsplittable dominant session must never ping-pong"
    );
}

/// Crafts a single-datagram Disconnect plus a two-fragment follow-up
/// record for `sid` (contents irrelevant — the session is gone; only the
/// sequencing verdicts matter).
fn craft_disconnect_and_fragments(sid: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    use endbox_vpn::frag::Fragmenter;
    use endbox_vpn::proto::{Opcode, Record};

    let mtu = endbox_netsim::CostModel::calibrated().mtu_payload;
    let mut frag = Fragmenter::new();
    let disconnect = Record {
        opcode: Opcode::Disconnect,
        session_id: sid,
        packet_id: 0,
        payload: vec![],
    };
    let d = frag.fragment(&disconnect.to_bytes(), mtu);
    assert_eq!(d.len(), 1);
    let next = Record {
        opcode: Opcode::Data,
        session_id: sid,
        packet_id: 1,
        payload: vec![0xab; mtu + 100],
    };
    let f = frag.fragment(&next.to_bytes(), mtu);
    assert_eq!(f.len(), 2);
    (d.into_iter().next().unwrap(), f)
}

#[test]
fn disconnect_followed_by_in_batch_fragment_matches_single_server() {
    // A successful Disconnect tears down the peer's reassembler. If the
    // same receive batch carries a *fragment* of the peer's next record
    // after the Disconnect, the single-threaded server processes the
    // teardown first and the fragment lands in a fresh reassembler; the
    // pipelined server must sequence it identically even though the
    // teardown now happens on the RX stage, across the pipeline boundary
    // (the RX stage pauses on the Disconnect until its verdict is known).
    let mut single = Scenario::enterprise(1, UseCase::Nop)
        .seed(99)
        .build()
        .unwrap();
    let (d, f) = craft_disconnect_and_fragments(single.session_id(0));
    let mut reference = vec![simplify(single.server.receive_datagram(0, &d))];
    reference.push(simplify(single.server.receive_datagram(0, &f[0])));
    reference.push(simplify(single.server.receive_datagram(0, &f[1])));

    for (workers, rx_shards) in PARITY_GRID {
        let mut sharded = Scenario::enterprise(1, UseCase::Nop)
            .seed(99)
            .rx_shards(rx_shards)
            .build_sharded(workers)
            .unwrap();
        let (d, f) = craft_disconnect_and_fragments(sharded.session_id(0));
        // Disconnect and the first fragment of the next record arrive in
        // ONE batch; the second fragment arrives later.
        let mut got: Vec<Out> = sharded
            .server
            .receive_datagrams(vec![(0, d), (0, f[0].clone())])
            .into_iter()
            .map(simplify)
            .collect();
        got.push(simplify(sharded.server.receive_datagram(0, &f[1])));
        assert_eq!(got, reference, "N={workers}");
    }
}

#[test]
fn disconnect_race_interleaved_with_other_peers_matches_single_server() {
    // The Disconnect races the RX stage while OTHER peers' fragments are
    // in flight in the same batch: pausing the RX stage for peer 0's
    // teardown must not reorder or stall peer 1's reassembly, and a
    // REPLAYED (now-invalid) Disconnect later in the same batch must NOT
    // tear the fresh reassembler down.
    let mut single = Scenario::enterprise(2, UseCase::Nop)
        .seed(101)
        .build()
        .unwrap();
    let mk_inputs = |sid0: u64, sid1: u64| {
        let (d0, f0) = craft_disconnect_and_fragments(sid0);
        let (_, f1) = craft_disconnect_and_fragments(sid1);
        // peer0: disconnect, then its next record's two fragments with the
        // replayed disconnect wedged between them; peer1's fragments
        // interleave throughout.
        vec![
            (0u64, d0.clone()),
            (1u64, f1[0].clone()),
            (0u64, f0[0].clone()),
            (0u64, d0), // replayed Disconnect: session unknown now
            (1u64, f1[1].clone()),
            (0u64, f0[1].clone()),
        ]
    };
    let reference: Vec<Out> = mk_inputs(single.session_id(0), single.session_id(1))
        .into_iter()
        .map(|(peer, d)| simplify(single.server.receive_datagram(peer, &d)))
        .collect();
    // Sanity: peer 0's record completes (the replayed Disconnect fails and
    // must not reset reassembly) and is then rejected at the session layer.
    assert!(matches!(reference[0], Out::Disconnected(_)));
    assert!(matches!(reference[3], Out::Rejected(_)));
    assert!(matches!(reference[5], Out::Rejected(_)));

    for (workers, rx_shards) in PARITY_GRID {
        let mut sharded = Scenario::enterprise(2, UseCase::Nop)
            .seed(101)
            .rx_shards(rx_shards)
            .build_sharded(workers)
            .unwrap();
        let inputs = mk_inputs(sharded.session_id(0), sharded.session_id(1));
        let got: Vec<Out> = sharded
            .server
            .receive_datagrams(inputs)
            .into_iter()
            .map(simplify)
            .collect();
        assert_eq!(got, reference, "N={workers}");
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn to_script(raw: &[(usize, usize, usize)], n_clients: usize) -> Vec<Action> {
        raw.iter()
            .map(|&(kind, client, n)| {
                let client = client % n_clients;
                match kind % 5 {
                    0 | 1 => Action::SendBatch {
                        client,
                        n_packets: 1 + n % 8,
                    },
                    2 => Action::SendSingle { client },
                    3 => Action::Ping { client },
                    _ => Action::Replay,
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Any interleaving of batches, singles, pings and replays from
        /// 2-4 clients produces byte-identical emissions and identical
        /// verdicts on 1/2/4/8-worker sharded servers.
        #[test]
        fn sharded_server_is_observationally_equivalent(
            n_clients in 2usize..5,
            seed in 0u64..1_000,
            raw in prop::collection::vec((0usize..5, 0usize..5, 0usize..8), 2..7),
        ) {
            let script = to_script(&raw, n_clients);
            assert_parity(n_clients, UseCase::Firewall, 0xeb00 + seed, &script);
        }
    }

    /// Adversarial peer-mix proptests: these drive the schedule harness
    /// (`tests/support`) so the peer ids, split points and batch
    /// boundaries are chosen hostile to the RX pool, and assert the
    /// input-order re-merge over the FULL (rx_shards × workers × policy)
    /// grid.
    mod adversarial {
        use super::*;
        use support::{assert_schedule_parity, PeerMap, Schedule, Step};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            /// All peers collide on ONE RX shard via chosen `peer_id`s
            /// (stride 4 ≡ shard 0 for every K in the grid): the collided
            /// shard must sequence everything exactly like the single RX
            /// thread.
            #[test]
            fn colliding_peer_ids_match_single_server(
                seed in 0u64..500,
                raw in prop::collection::vec((0usize..5, 0usize..3, 0usize..8), 3..8),
            ) {
                let mut schedule =
                    Schedule::new("prop-colliding-peers", 3, 0xeb20 + seed).peers(PeerMap::Stride(4));
                for &(kind, client, n) in &raw {
                    schedule = schedule.step(match kind {
                        0 | 1 => Step::Batch { client, n_packets: 1 + n % 6 },
                        2 => Step::Single { client },
                        3 => Step::Replay,
                        _ => Step::Flush,
                    });
                }
                assert_schedule_parity(&schedule);
            }

            /// A single peer floods the server (deep batches, splits,
            /// replays, a disconnect race) — one RX shard does all the
            /// work while its siblings idle, and order must still hold.
            #[test]
            fn single_peer_flood_matches_single_server(
                seed in 0u64..500,
                raw in prop::collection::vec((0usize..6, 1usize..9), 3..8),
            ) {
                let mut schedule = Schedule::new("prop-single-peer-flood", 1, 0xeb30 + seed)
                    .stall(0, 80);
                for &(kind, n) in &raw {
                    schedule = schedule.step(match kind {
                        0 | 1 => Step::Batch { client: 0, n_packets: n },
                        2 => Step::Single { client: 0 },
                        3 => Step::Replay,
                        4 => Step::SplitRecord {
                            client: 0,
                            payload_len: 30 + n * 17,
                            splits: vec![n, n * 5, 70],
                        },
                        _ => Step::Flush,
                    });
                }
                assert_schedule_parity(&schedule);
            }

            /// Interleaved tiny datagrams: every peer's records split
            /// into 1-byte-ish fragments, alternating datagram-by-datagram
            /// across flush boundaries.
            #[test]
            fn interleaved_tiny_datagrams_match_single_server(
                seed in 0u64..500,
                cuts in prop::collection::vec(1usize..32, 2..10),
            ) {
                let mut schedule = Schedule::new("prop-tiny-datagrams", 2, 0xeb40 + seed)
                    .stall((seed % 2) as usize, 100);
                for (i, &c) in cuts.iter().enumerate() {
                    schedule = schedule
                        .step(Step::SplitRecord {
                            client: i % 2,
                            payload_len: 8 + c,
                            splits: (1..(8 + c)).collect(),
                        })
                        .step(Step::Single { client: (i + 1) % 2 });
                    if c % 3 == 0 {
                        schedule = schedule.step(Step::Flush);
                    }
                }
                assert_schedule_parity(&schedule);
            }
        }
    }
}
