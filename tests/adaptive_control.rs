//! Parity and reconciliation tests for the self-tuning datapath control
//! plane (`ScenarioBuilder::adaptive_control`: closed-loop per-shard
//! budgets with per-socket token buckets, the autonomous hot-peer remap
//! law, and `DispatchPolicy::Adaptive` rate-based rebalance + idle-worker
//! stealing).
//!
//! The named schedules replay the same deterministic interleaving
//! classes the static configurations are pinned by — plus [`Step::Remap`]
//! steps that fire the manual re-home hook at exact schedule positions,
//! racing a peer's re-home against a crafted `Disconnect`, against a
//! partial record in flight inside its reassembler, and against the
//! colliding-peers placement where every peer homes on shard 0. The
//! parity claim is the controller's core invariant: every decision lands
//! at a round boundary, so outcomes stay byte-identical to the
//! single-threaded reference — only scheduling moves.
//!
//! The reconciliation tests pin the [`ControllerStats`] contract against
//! independent datapath counters: granted budget covers every drained
//! datagram, re-homes and their drained partials account exactly against
//! the server's RX counters, steals stay a subset of migrations, and the
//! token buckets only report borrowing when a burst actually spends
//! capacity that idle shard-mates banked in earlier rounds.
//!
//! [`ControllerStats`]: endbox::server::ControllerStats

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::{Scenario, ShardedScenario};
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;
use endbox_vpn::proto::{Opcode, Record};
use support::{assert_schedule_parity_adaptive, simplify, split_raw, Out, PeerMap, Schedule, Step};

/// A partial record parked in its reassembler, then a crafted
/// `Disconnect` queued and the peer re-homed *before* the Disconnect is
/// delivered — so the teardown arrives at the new home, races a replayed
/// Disconnect for the now-dead session, and the record tail completes
/// (and fails its verdict) at the new home. A second re-home moves the
/// dead-session peer back.
#[test]
fn adaptive_schedule_remap_races_disconnect() {
    let schedule = Schedule::new("remap-races-disconnect", 3, 0xada1)
        .step(Step::Batch {
            client: 0,
            n_packets: 3,
        })
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 96,
            splits: vec![7, 33],
            tag: 1,
            lo: 0,
            hi: 2,
        })
        .step(Step::Flush)
        .step(Step::Disconnect { client: 1 })
        .step(Step::Remap { client: 1, to: 1 })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Single { client: 2 })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 96,
            splits: vec![7, 33],
            tag: 1,
            lo: 2,
            hi: 3,
        })
        .step(Step::Remap { client: 1, to: 0 })
        .step(Step::Single { client: 0 });
    assert_schedule_parity_adaptive(&schedule);
}

/// A split record whose head is already inside the reassembler when its
/// peer re-homes: the in-flight partial drains at the quiesce point and
/// reinstalls at the new group, the tail arrives there and completes the
/// record, a replay of the tail fragments is rejected identically, and a
/// second re-home follows.
#[test]
fn adaptive_schedule_split_record_straddles_remap() {
    let schedule = Schedule::new("split-record-straddles-remap", 3, 0xada2)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 120,
            splits: vec![7, 33, 80],
            tag: 7,
            lo: 0,
            hi: 2,
        })
        .step(Step::Batch {
            client: 1,
            n_packets: 2,
        })
        .step(Step::Flush)
        .step(Step::Remap { client: 0, to: 1 })
        .step(Step::Single { client: 2 })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 120,
            splits: vec![7, 33, 80],
            tag: 7,
            lo: 2,
            hi: 4,
        })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Remap { client: 0, to: 3 })
        .step(Step::Single { client: 0 });
    assert_schedule_parity_adaptive(&schedule);
}

/// The adversarial colliding placement (`PeerMap::Stride(4)`: every peer
/// homes on shard 0 at every RX count in the grid), then manual re-homes
/// spread the peers across shards mid-schedule while traffic continues —
/// the spread changes which poll group serves whom, and nothing else.
#[test]
fn adaptive_schedule_remap_spreads_colliding_peers() {
    let schedule = Schedule::new("remap-spreads-colliding-peers", 3, 0xada4)
        .peers(PeerMap::Stride(4))
        .step(Step::Batch {
            client: 0,
            n_packets: 2,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Single { client: 2 })
        .step(Step::Flush)
        .step(Step::Remap { client: 1, to: 1 })
        .step(Step::Remap { client: 2, to: 2 })
        .step(Step::Batch {
            client: 1,
            n_packets: 2,
        })
        .step(Step::Single { client: 2 })
        .step(Step::Single { client: 0 })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Remap { client: 0, to: 1 })
        .step(Step::Single { client: 1 });
    assert_schedule_parity_adaptive(&schedule);
}

/// Mixed traffic (batches, pings, a split record, a replayed batch) with
/// stalled RX shards and **no** manual remaps: the controller's own
/// budget/token/remap laws run against ordinary adversarial interleaving
/// and must not move a single outcome.
#[test]
fn adaptive_schedule_controller_on_mixed_traffic() {
    let schedule = Schedule::new("controller-on-mixed-traffic", 4, 0xada3)
        .stall(0, 35)
        .stall(2, 20)
        .step(Step::Batch {
            client: 0,
            n_packets: 4,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Ping { client: 2 })
        .step(Step::Flush)
        .step(Step::SplitRecord {
            client: 3,
            payload_len: 64,
            splits: vec![9, 30],
        })
        .step(Step::Batch {
            client: 2,
            n_packets: 2,
        })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Single { client: 0 })
        .step(Step::Ping { client: 3 })
        .step(Step::Flush)
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Single { client: 2 });
    assert_schedule_parity_adaptive(&schedule);
}

/// Seals `n` single-packet records from `client` and ships them onto the
/// wire; returns the number of wire datagrams sent.
fn send_records(scenario: &mut ShardedScenario, client: usize, n: usize, round: usize) -> usize {
    let mut sent = 0;
    for i in 0..n {
        let payload = format!("ctrl round {round} client {client} packet {i}");
        let packet = Packet::tcp(
            Scenario::client_addr(client),
            Scenario::network_addr(),
            41_000 + client as u16,
            5_001,
            (round * 1_000 + i) as u32,
            payload.as_bytes(),
        );
        let datagrams = scenario.clients[client].send_packet(packet).unwrap();
        sent += datagrams.len();
        scenario.send_wire_datagrams(client as u64, datagrams);
    }
    sent
}

/// Pumps the event loop until `expect` outcomes arrived.
fn pump_all(scenario: &mut ShardedScenario, expect: usize) -> Vec<Out> {
    let mut outs = Vec::new();
    let mut spins = 0;
    while outs.len() < expect {
        outs.extend(
            scenario
                .pump_async()
                .into_iter()
                .map(|(_, result)| simplify(result)),
        );
        spins += 1;
        assert!(
            spins < 100_000,
            "wire lost datagrams: {} of {expect}",
            outs.len()
        );
    }
    outs
}

/// The [`endbox::server::ControllerStats`] reconciliation contract
/// against independent datapath counters, under a heavy-tailed mix:
/// every drained datagram was covered by a granted budget, the budget
/// controller planned a subset of the event loop's rounds, steals are a
/// subset of migrations, and manual re-homes account exactly against the
/// server's RX remap counters.
#[test]
fn controller_stats_reconcile_with_datapath_counters() {
    let mut scenario: ShardedScenario = Scenario::enterprise(8, UseCase::Nop)
        .seed(0xadc0)
        .rx_shards(2)
        .adaptive_control(true)
        .build_sharded(4)
        .unwrap();
    let sizes = [6usize, 1, 1, 1, 3, 1, 1, 1];
    let mut drained_total = 0u64;
    for round in 0..4 {
        let mut sent = 0;
        for (client, &n) in sizes.iter().enumerate() {
            sent += send_records(&mut scenario, client, n, round);
        }
        pump_all(&mut scenario, sent);
        drained_total += sent as u64;
    }

    let ingress = scenario.async_stats();
    let stats = scenario.controller_stats();
    assert_eq!(ingress.datagrams, drained_total);
    assert!(
        stats.budget_rounds >= 1,
        "controller never planned: {stats:?}"
    );
    assert!(
        stats.budget_rounds <= ingress.rounds,
        "planned more rounds than the event loop ran: {stats:?} vs {ingress:?}"
    );
    assert!(
        stats.budget_grants >= ingress.datagrams,
        "drained datagrams exceeded the granted budget: {stats:?} vs {ingress:?}"
    );
    assert!(
        stats.steals <= stats.migrations,
        "steals must be a subset of migrations: {stats:?}"
    );
    assert_eq!(
        (stats.remaps, stats.drained_partials),
        scenario.server.rx_remap_counters(),
        "controller snapshot diverged from the server's RX counters"
    );

    // The manual re-home pair accounts exactly like the controller's
    // own: one of the two moves below must change the peer's shard
    // (they target both shards), and every drained partial rides the
    // counter.
    let before = scenario.controller_stats();
    let drained = scenario.remap_peer(1, 0) + scenario.remap_peer(1, 1);
    let after = scenario.controller_stats();
    assert!(
        after.remaps > before.remaps,
        "a shard-changing re-home must count: {before:?} vs {after:?}"
    );
    assert_eq!(
        after.drained_partials,
        before.drained_partials + drained as u64
    );
    assert_eq!(
        (after.remaps, after.drained_partials),
        scenario.server.rx_remap_counters()
    );
}

/// A manual re-home with a record head in flight: the partial drains at
/// the quiesce point (counted in [`endbox::server::ControllerStats`]),
/// reinstalls at the new home, and the tail completes the record to the
/// **same** outcome as an identical run that never re-homed.
#[test]
fn manual_remap_drains_inflight_partial_and_preserves_outcome() {
    let build = || -> ShardedScenario {
        Scenario::enterprise(2, UseCase::Nop)
            .seed(0xadc2)
            .rx_shards(2)
            .adaptive_control(true)
            .build_sharded(2)
            .unwrap()
    };
    let mut remapped = build();
    let mut control = build();

    let record = Record {
        opcode: Opcode::Data,
        session_id: remapped.session_id(0),
        packet_id: 0x6001,
        payload: vec![0xab; 160],
    };
    let frags = split_raw(&record.to_bytes(), &[11, 60], 0xBEEF_0001);
    assert_eq!(frags.len(), 3);

    // Head (2 of 3 fragments) into both scenarios; both park a partial.
    let head: Vec<Vec<u8>> = frags[..2].to_vec();
    remapped.send_wire_datagrams(0, head.clone());
    control.send_wire_datagrams(0, head);
    let mut outs_remapped = pump_all(&mut remapped, 2);
    let mut outs_control = pump_all(&mut control, 2);

    // Re-home peer 0 (shard 0 -> 1) in one scenario only: exactly the
    // one in-flight partial drains and reinstalls.
    let drained = remapped.remap_peer(0, 1);
    assert_eq!(drained, 1, "the parked partial must drain with the move");
    let stats = remapped.controller_stats();
    assert_eq!(stats.remaps, 1);
    assert_eq!(stats.drained_partials, 1);

    // Tail completes the record at the new home; the verdict must be
    // identical with and without the re-home.
    remapped.send_wire_datagrams(0, vec![frags[2].clone()]);
    control.send_wire_datagrams(0, vec![frags[2].clone()]);
    outs_remapped.extend(pump_all(&mut remapped, 1));
    outs_control.extend(pump_all(&mut control, 1));
    assert_eq!(outs_remapped, outs_control);
    assert!(
        matches!(outs_remapped[0], Out::Pending) && matches!(outs_remapped[1], Out::Pending),
        "head fragments must park, not deliver: {outs_remapped:?}"
    );
}

/// The token buckets' borrowing contract: a steady trickle never
/// borrows (every socket stays inside its fair share), while a burst
/// after a trickle spends the capacity idle shard-mates banked —
/// `tokens_borrowed` moves only then.
#[test]
fn token_buckets_borrow_only_after_banked_carryover() {
    let mut scenario: ShardedScenario = Scenario::enterprise(8, UseCase::Nop)
        .seed(0xadc1)
        .rx_shards(1)
        .adaptive_control(true)
        .build_sharded(2)
        .unwrap();

    // Trickle round: one record per peer; everyone is far under fair
    // share, so nothing is borrowed — but every peer banks unclaimed
    // tokens.
    let mut sent = 0;
    for client in 0..8 {
        sent += send_records(&mut scenario, client, 1, 0);
    }
    pump_all(&mut scenario, sent);
    let steady = scenario.controller_stats();
    assert_eq!(
        steady.tokens_borrowed, 0,
        "a steady trickle must not borrow: {steady:?}"
    );

    // Burst round: one peer floods far past its per-round fair share
    // while shard-mates trickle; the flood drains in full against the
    // banked carryover and the excess is accounted as borrowed.
    let mut sent = send_records(&mut scenario, 0, 200, 1);
    for client in 1..8 {
        sent += send_records(&mut scenario, client, 1, 1);
    }
    pump_all(&mut scenario, sent);
    let burst = scenario.controller_stats();
    assert!(
        burst.tokens_borrowed > 0,
        "a burst after a trickle must spend banked tokens: {burst:?}"
    );
}

/// The runtime toggle ([`ShardedScenario::set_adaptive_control`])
/// freezes the budget controller without disturbing the datapath:
/// `budget_rounds` stops advancing while the event loop keeps draining,
/// and resumes when re-armed.
#[test]
fn runtime_toggle_freezes_budget_controller() {
    let mut scenario: ShardedScenario = Scenario::enterprise(4, UseCase::Nop)
        .seed(0xadc3)
        .rx_shards(2)
        .adaptive_control(true)
        .build_sharded(2)
        .unwrap();

    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 0);
    }
    pump_all(&mut scenario, sent);
    let armed = scenario.controller_stats();
    assert!(armed.budget_rounds >= 1);

    scenario.set_adaptive_control(false);
    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 1);
    }
    pump_all(&mut scenario, sent);
    let frozen = scenario.controller_stats();
    assert_eq!(
        frozen.budget_rounds, armed.budget_rounds,
        "a disarmed controller must not plan budgets"
    );
    assert!(
        scenario.async_stats().rounds > armed.budget_rounds,
        "the event loop must keep draining while disarmed"
    );

    scenario.set_adaptive_control(true);
    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 2);
    }
    pump_all(&mut scenario, sent);
    assert!(
        scenario.controller_stats().budget_rounds > frozen.budget_rounds,
        "a re-armed controller must resume planning"
    );
}
