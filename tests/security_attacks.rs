//! Integration: the §V-A attack battery plus cross-crate attack variants
//! not covered by the built-in battery.

use endbox::attacks::run_all;
use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_vpn::proto::{Opcode, Record};

#[test]
fn full_attack_battery_defended() {
    for (name, outcome) in run_all() {
        assert!(outcome.defended(), "attack `{name}`: {outcome:?}");
    }
}

#[test]
fn battery_names_cover_the_papers_discussion() {
    let names: Vec<&str> = run_all().into_iter().map(|(n, _)| n).collect();
    for expected in [
        "bypass_middlebox", // §V-A bypassing middlebox functions
        "config_rollback",  // §V-A old or invalid configurations
        "stale_config_after_grace",
        "replay_traffic",   // §V-A replaying traffic
        "enclave_dos",      // §V-A denial-of-service
        "downgrade_attack", // §V-A downgrade attacks
        "interface_attack", // §V-A interface attacks
        "qos_spoofing",     // §IV-A flag sanitisation
        "crafted_ping",     // §III-E ping authenticity
    ] {
        assert!(names.contains(&expected), "missing attack {expected}");
    }
}

#[test]
fn session_hijack_with_wrong_keys_fails() {
    // Client 1 tries to inject traffic into client 0's session.
    let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
    let datagrams = s.clients[1]
        .send_packet(endbox_netsim::Packet::tcp(
            Scenario::client_addr(1),
            Scenario::network_addr(),
            40_001,
            5001,
            0,
            b"hijack attempt",
        ))
        .unwrap();
    // Rewrite the session id on the wire to client 0's session.
    let mut reasm = endbox_vpn::frag::Reassembler::new();
    let mut record_bytes = None;
    for d in &datagrams {
        if let Some(b) = reasm.push(d).unwrap() {
            record_bytes = Some(b);
        }
    }
    let mut record = Record::from_bytes(&record_bytes.unwrap()).unwrap();
    record.session_id = s.session_id(0);
    record.opcode = Opcode::Data;
    let mut frag = endbox_vpn::frag::Fragmenter::new();
    for d in frag.fragment(&record.to_bytes(), 8_960) {
        let result = s.server.receive_datagram(0, &d);
        assert!(
            !matches!(result, Ok(endbox::server::Delivery::Packet { .. })),
            "hijacked record must not decrypt under another session's keys"
        );
    }
}

#[test]
fn truncated_and_garbage_datagrams_never_panic() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x00],
        vec![0xff; 7],
        vec![0xff; 64],
        vec![0x01; 10_000],
        {
            // Valid fragment header, garbage record inside.
            let mut frag = endbox_vpn::frag::Fragmenter::new();
            frag.fragment(&[0xeb; 100], 8_960).remove(0)
        },
    ];
    for (i, datagram) in cases.iter().enumerate() {
        // Errors are fine; panics or deliveries are not.
        let result = s.server.receive_datagram(77, datagram);
        assert!(
            !matches!(result, Ok(endbox::server::Delivery::Packet { .. })),
            "case {i} must not deliver"
        );
    }
    // The server keeps working for the legitimate client.
    s.send_from_client(0, b"still alive").unwrap();
}

#[test]
fn client_ingress_rejects_garbage_without_panicking() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    for garbage in [vec![0u8; 3], vec![0xffu8; 40], vec![0x42u8; 2_000]] {
        let _ = s.clients[0].receive_datagram(&garbage); // must not panic
    }
    s.send_from_client(0, b"still alive too").unwrap();
}

#[test]
fn dos_on_own_enclave_is_self_limiting() {
    let mut s = Scenario::enterprise(2, UseCase::Firewall).build().unwrap();
    s.clients[0].enclave_app().destroy();
    assert!(
        s.send_from_client(0, b"x").is_err(),
        "destroyed enclave cannot send"
    );
    // The neighbour and the network are unaffected.
    s.send_from_client(1, b"neighbour unaffected").unwrap();
    assert_eq!(s.server.session_count(), 2);
}
