//! Parity, fault-injection and accounting tests for the kernel-bypass
//! transport backends: the io_uring-style [`RingWire`]
//! submission/completion ring and the AF_XDP-shaped [`XdpWire`]
//! zero-copy frame backend.
//!
//! The parity tests replay the adversarial [`support::Schedule`]s —
//! 1-byte fragments, splits inside record headers, partial records
//! straddling poll rounds, replayed Disconnects, deep queue floods —
//! through the event-driven front-end over each backend and assert
//! byte-identical outcomes against the single-threaded reference server
//! across the `(rx_shards, workers, policy, bulk)` grid. Both backends
//! are in-process and always available; by default the named schedules
//! run on a representative sub-grid, and setting `ENDBOX_REQUIRE_RING=1`
//! (the CI Linux runner does) widens them to the **full** grid, the same
//! way `ENDBOX_REQUIRE_OS_SOCKET=1` hardens the loopback suite.
//!
//! The fault-injection tests decorate each backend with
//! [`ShortSendWire`], forcing short `send_many` returns mid-batch, and
//! assert the tail-in-place retry path ([`FramedSender::forward`]'s
//! stall loop, [`TxBatcher`]'s queue-head requeue) never reorders,
//! drops or duplicates a datagram on any backend. The reconciliation
//! tests pin the `io_calls` symmetry between ingress and egress
//! accounting: [`TxBatchStats`] totals must agree with the
//! [`FramedSender::send_stats`] totals for the same datagrams.

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::Scenario;
use endbox::server::TxBatcher;
use endbox::use_cases::UseCase;
use endbox_netsim::net::{RingWire, ShortSendWire, Transport, TransportKind, VirtualWire, XdpWire};
use endbox_netsim::Packet;
use endbox_vpn::endpoint::FramedSender;
use std::sync::Arc;
use support::{
    assert_schedule_parity_backend, assert_schedule_parity_backend_on, PeerMap, Schedule, Step,
};

/// The two kernel-bypass backends under test.
const BYPASS_BACKENDS: [TransportKind; 2] = [TransportKind::Ring, TransportKind::XdpFrame];

/// Whether the full `(rx_shards, workers)` grid is required (CI sets
/// `ENDBOX_REQUIRE_RING=1`); the default sub-grid keeps local runs fast
/// while still covering 1/2/4 RX shards and 2/4 workers.
fn full_grid_required() -> bool {
    std::env::var("ENDBOX_REQUIRE_RING").as_deref() == Ok("1")
}

/// Splits through the record header and 1-byte fragments, partial
/// records straddling poll rounds, a replayed Disconnect — the
/// adversarial framing schedule of the bulk-ingress suite — must be
/// byte-identical to the reference on the ring and frame backends.
fn adversarial_framing_schedule() -> Schedule {
    Schedule::new("backend-adversarial-framing", 2, 0xc2_01)
        .stall(0, 200)
        .step(Step::SplitRecord {
            client: 0,
            payload_len: 40,
            splits: (1..60).collect(), // 1-byte fragments through header + body
        })
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 200,
            splits: vec![1, 2, 3, 90], // splits inside the record header
            tag: 1,
            lo: 0,
            hi: 3,
        })
        .step(Step::Disconnect { client: 1 })
        .step(Step::Replay)
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 200,
            splits: vec![1, 2, 3, 90],
            tag: 1,
            lo: 3,
            hi: 5,
        })
        .step(Step::Single { client: 0 })
}

#[test]
fn ring_backend_matches_reference_on_adversarial_framing() {
    let schedule = adversarial_framing_schedule();
    if full_grid_required() {
        assert_schedule_parity_backend(&schedule, TransportKind::Ring);
    } else {
        assert_schedule_parity_backend_on(
            &schedule,
            &[(1, 2), (2, 4), (4, 2)],
            TransportKind::Ring,
        );
    }
}

#[test]
fn xdp_backend_matches_reference_on_adversarial_framing() {
    let schedule = adversarial_framing_schedule();
    if full_grid_required() {
        assert_schedule_parity_backend(&schedule, TransportKind::XdpFrame);
    } else {
        assert_schedule_parity_backend_on(
            &schedule,
            &[(1, 2), (2, 4), (4, 2)],
            TransportKind::XdpFrame,
        );
    }
}

/// Deep per-socket queues with all peers colliding on RX shard 0
/// (stride-4 peer map): descriptor rings must cut and re-merge the
/// flood exactly like the socket backends do.
#[test]
fn bypass_backends_survive_deep_queues_on_a_collided_shard() {
    let mut schedule = Schedule::new("backend-deep-queues", 3, 0xc2_02).peers(PeerMap::Stride(4));
    for round in 0..3 {
        for _ in 0..12 {
            schedule = schedule.step(Step::Single { client: 0 });
        }
        schedule = schedule
            .step(Step::Single { client: 1 })
            .step(Step::Ping { client: 2 });
        if round < 2 {
            schedule = schedule.step(Step::Flush);
        }
    }
    for kind in BYPASS_BACKENDS {
        assert_schedule_parity_backend_on(&schedule, &[(2, 4)], kind);
    }
}

/// The scenario reports the bypass backends by name — the knob CI's
/// gated parity suites flip — and a round-trip works end to end on each.
#[test]
fn bypass_backends_are_reported_by_the_scenario() {
    for (kind, name) in [
        (TransportKind::Ring, "ring"),
        (TransportKind::XdpFrame, "xdp-frame"),
    ] {
        let mut scenario = Scenario::enterprise(1, UseCase::Nop)
            .seed(0xc2_03)
            .async_ingress(true)
            .transport(kind)
            .build_sharded(1)
            .unwrap();
        assert_eq!(scenario.wire_backend(), name);
        let pkt = Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            47_000,
            5_001,
            1,
            b"backend probe",
        );
        let sealed = scenario.clients[0].send_packet(pkt).unwrap();
        let sent = sealed.len();
        scenario.send_wire_datagrams(0, sealed);
        let outs = scenario.pump_async();
        assert_eq!(outs.len(), sent, "{name}: every datagram delivered");
        for (_, result) in outs {
            result.unwrap();
        }
    }
}

/// Egress senders built over the backend's pre-registered arena
/// ([`RingWire::pool`] / [`XdpWire::umem`] — the wiring
/// `ScenarioBuilder::transport` installs for the client links): fragment
/// buffers come from the arena, recycle through it, and arrive intact.
#[test]
fn pooled_egress_draws_fragment_buffers_from_the_backend_arena() {
    let ring = RingWire::new();
    let xdp = XdpWire::new();
    let cases: [(&str, Arc<dyn Transport>, endbox_netsim::BufferPool); 2] = [
        ("ring", Arc::new(ring.clone()), ring.pool().clone()),
        ("xdp-frame", Arc::new(xdp.clone()), xdp.umem().clone()),
    ];
    for (name, wire, arena) in cases {
        let receiver = wire.bind(1).unwrap();
        let mut sender = FramedSender::with_pool(wire.bind(100).unwrap(), 16, arena.clone());
        let record = endbox_vpn::proto::Record {
            opcode: endbox_vpn::proto::Opcode::Data,
            session_id: 7,
            packet_id: 3,
            payload: vec![0xee; 50],
        };
        let n = sender.send_record(1, &record).unwrap();
        assert!(n > 1, "{name}: 50 B record at 16 B MTU must fragment");
        let cold = arena.stats();
        assert_eq!(
            cold.fresh_allocs, n as u64,
            "{name}: cold arena hands out one buffer per fragment"
        );
        // The receiver recycles the frames into the same arena; a second
        // send then allocates nothing new — the zero-copy loop closes
        // through the backend's registered memory.
        while let Some(d) = receiver.try_recv() {
            arena.give(d.payload);
        }
        sender.send_record(1, &record).unwrap();
        assert_eq!(
            arena.stats().fresh_allocs,
            cold.fresh_allocs,
            "{name}: warm arena egress allocates nothing new"
        );
    }
}

/// Forced short `send_many` returns mid-batch on every backend: the
/// [`FramedSender::forward`] stall-retry loop must ship the tail in
/// place — the receiver sees every datagram exactly once, in order.
#[test]
fn short_send_tails_retry_in_order_through_framed_sender() {
    let inners: [Arc<dyn Transport>; 3] = [
        Arc::new(VirtualWire::new()),
        Arc::new(RingWire::new()),
        Arc::new(XdpWire::new()),
    ];
    for inner in inners {
        let backend = inner.backend();
        let wire = ShortSendWire::new(inner);
        let receiver = wire.bind(1).unwrap();
        let sender = FramedSender::new(wire.bind(100).unwrap(), 1 << 20);
        // Three staged faults: a 2-cap, a 0-cap (nothing moves, pure
        // stall), then a 1-cap; the remaining retries send unfaulted.
        wire.push_short_send(2);
        wire.push_short_send(0);
        wire.push_short_send(1);
        let batch: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 8]).collect();
        let shipped = sender.forward(1, batch).unwrap();
        assert_eq!(shipped, 10, "{backend}: every datagram ships");
        assert_eq!(wire.pending_faults(), 0, "{backend}: all faults consumed");
        let stats = sender.send_stats();
        assert_eq!(stats.datagrams, 10);
        assert_eq!(
            stats.io_calls, 4,
            "{backend}: caps 2/0/1 then the 7-tail -> four bulk calls"
        );
        assert_eq!(stats.stalls, 3, "{backend}: each short return stalls once");
        let mut got = Vec::new();
        while let Some(d) = receiver.try_recv() {
            got.push(d.payload[0]);
            assert!(d.payload.iter().all(|&b| b == d.payload[0]));
        }
        assert_eq!(
            got,
            (0u8..10).collect::<Vec<_>>(),
            "{backend}: tail-in-place retry must not reorder or duplicate"
        );
    }
}

/// The same fault shape through the TX-batching egress stage: a partial
/// flush leaves the tail at the head of its queue, the next flush ships
/// it, and per-destination FIFO order survives on every backend.
#[test]
fn short_send_tails_stay_queued_in_order_through_tx_batcher() {
    let inners: [Arc<dyn Transport>; 3] = [
        Arc::new(VirtualWire::new()),
        Arc::new(RingWire::new()),
        Arc::new(XdpWire::new()),
    ];
    for inner in inners {
        let backend = inner.backend();
        let wire = ShortSendWire::new(inner);
        let dst_a = wire.bind(1).unwrap();
        let dst_b = wire.bind(2).unwrap();
        let mut tx = TxBatcher::new(wire.bind(100).unwrap());
        tx.enqueue(1, (0u8..6).map(|i| vec![i; 4]));
        tx.enqueue(2, (10u8..14).map(|i| vec![i; 4]));
        // First flush: destination 1 ships only 2 of 6, destination 2
        // only 1 of 4; the tails stay queued in place.
        wire.push_short_send(2);
        wire.push_short_send(1);
        let shipped = tx.flush().unwrap();
        assert_eq!(shipped, 3, "{backend}: partial flush ships the caps");
        assert_eq!(tx.pending(), 7, "{backend}: tails stay queued");
        let mid = tx.stats();
        assert_eq!(mid.partial_sends, 2, "{backend}: both queues went short");
        // Second flush ships everything that is left, unfaulted.
        let rest = tx.flush().unwrap();
        assert_eq!(rest, 7);
        assert_eq!(tx.pending(), 0);
        let stats = tx.stats();
        assert_eq!(stats.sent, 10);
        assert_eq!(
            stats.io_calls, 4,
            "{backend}: two destinations x two flushes"
        );
        let drain = |ep: &endbox_netsim::net::UdpEndpoint| {
            let mut got = Vec::new();
            while let Some(d) = ep.try_recv() {
                got.push(d.payload[0]);
            }
            got
        };
        assert_eq!(
            drain(&dst_a),
            (0u8..6).collect::<Vec<_>>(),
            "{backend}: destination 1 FIFO survives the partial flush"
        );
        assert_eq!(
            drain(&dst_b),
            (10u8..14).collect::<Vec<_>>(),
            "{backend}: destination 2 FIFO survives the partial flush"
        );
    }
}

/// `io_calls` symmetry between the two egress counters: shipping the
/// same fragments through [`FramedSender`] (bulk `send_many` per record
/// batch) and through [`TxBatcher`] (bulk `send_many` per destination
/// per flush) must reconcile — identical datagram totals, identical
/// bulk-call counts, identical wire bytes — even under injected partial
/// sends.
#[test]
fn tx_batcher_reconciles_with_framed_sender_send_totals() {
    let wire = ShortSendWire::new(Arc::new(VirtualWire::new()) as Arc<dyn Transport>);
    let via_sender = wire.bind(1).unwrap();
    let via_batcher = wire.bind(2).unwrap();
    let sender = FramedSender::new(wire.bind(100).unwrap(), 1 << 20);
    let mut tx = TxBatcher::new(wire.bind(101).unwrap());
    // Three "record batches" of 4 datagrams each; both paths see the
    // identical payloads and the identical mid-batch fault.
    let batches: Vec<Vec<Vec<u8>>> = (0u8..3)
        .map(|b| (0u8..4).map(|i| vec![b * 16 + i; 6]).collect())
        .collect();
    wire.push_short_send(2);
    for batch in &batches {
        sender.forward(1, batch.clone()).unwrap();
    }
    wire.push_short_send(2);
    for batch in &batches {
        tx.enqueue(2, batch.clone());
        while tx.pending() > 0 {
            tx.flush().unwrap();
        }
    }
    let s = sender.send_stats();
    let t = tx.stats();
    assert_eq!(s.datagrams, 12);
    assert_eq!(t.sent, s.datagrams, "egress totals reconcile");
    assert_eq!(t.enqueued, s.datagrams);
    assert_eq!(
        t.io_calls, s.io_calls,
        "one faulted batch each -> both sides pay the same extra call: {s:?} vs {t:?}"
    );
    assert_eq!(
        s.stalls + 3,
        s.io_calls,
        "3 batches + 1 stall retry each side"
    );
    assert_eq!(t.partial_sends, 1);
    let drain = |ep: &endbox_netsim::net::UdpEndpoint| {
        let mut got = Vec::new();
        while let Some(d) = ep.try_recv() {
            got.push(d.payload.clone());
        }
        got
    };
    assert_eq!(
        drain(&via_sender),
        drain(&via_batcher),
        "both egress paths put identical bytes on the wire, in order"
    );
}

/// Regression pin for the bulk-128 plateau (ISSUE 7 satellite): the
/// measured datagrams-per-call ratio saturates at the **per-socket
/// queue depth at drain time**, not at the bulk size — a `recv_many`
/// cannot move more than is waiting. With the dry-socket skip in
/// `AsyncFrontEnd::pump`, a bulk at or above the depth moves each queue
/// in exactly one call (`got < want` marks the socket dry; no zero-yield
/// re-check), so bulk 32 and bulk 128 are call-for-call identical on
/// 8-deep queues: the `BENCH_wire.json` plateau is queue-depth
/// saturation, documented in `docs/architecture.md` §6.
#[test]
fn datagrams_per_call_saturates_at_queue_depth_not_bulk_size() {
    const DEPTH: u32 = 8;
    let run = |bulk: usize| {
        let mut scenario = Scenario::enterprise(2, UseCase::Nop)
            .seed(0xc2_04)
            .rx_shards(2)
            .async_ingress(true)
            .build_sharded(2)
            .unwrap();
        scenario.set_recv_bulk(bulk);
        for client in 0..2usize {
            for seq in 0..DEPTH {
                let pkt = Packet::tcp(
                    Scenario::client_addr(client),
                    Scenario::network_addr(),
                    48_000 + client as u16,
                    5_001,
                    seq,
                    format!("saturate {client} {seq}").as_bytes(),
                );
                let sealed = scenario.clients[client].send_packet(pkt).unwrap();
                assert_eq!(sealed.len(), 1, "single-fragment records");
                scenario.send_wire_datagrams(client as u64, sealed);
            }
        }
        let outs = scenario.pump_async().len();
        assert_eq!(outs as u32, 2 * DEPTH);
        scenario.async_stats()
    };
    let at_32 = run(32);
    let at_128 = run(128);
    // At or above the depth: one call per 8-deep socket queue — the
    // ratio is the queue depth, and raising the bulk cannot move it.
    assert_eq!(at_32.io_calls, 2, "one recv_many per drained socket");
    assert_eq!(at_32.io_calls, at_128.io_calls);
    assert_eq!(at_32.datagrams, at_128.datagrams);
    let ratio = at_32.datagrams as f64 / at_32.io_calls as f64;
    assert_eq!(ratio, DEPTH as f64, "saturation point == queue depth");
    // Below the depth the call count is governed by the bulk size
    // (ceil(depth/bulk) full vectors + one short dry-marking call when
    // the last vector fills exactly).
    let at_4 = run(4);
    assert_eq!(at_4.io_calls, 6, "8-deep at bulk 4: 4+4+dry per socket");
}
