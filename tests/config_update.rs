//! Integration: the Fig. 5 configuration-update protocol end to end —
//! versioning, grace periods, encryption, replay defence and state
//! preservation across hot swaps.

use endbox::config_update::SignedConfig;
use endbox::error::EndBoxError;
use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_vpn::VpnError;
use rand::SeedableRng;

#[test]
fn full_update_cycle_over_the_wire() {
    let mut s = Scenario::enterprise(3, UseCase::Nop).build().unwrap();
    assert_eq!(s.client_version(0), 1);
    let v = s
        .update_config(&UseCase::Firewall.click_config(), 60)
        .unwrap();
    for i in 0..3 {
        assert_eq!(s.client_version(i), v, "client {i}");
        assert_eq!(s.server.client_config_version(s.session_id(i)), Some(v));
    }
    // The new middlebox is live: firewall handlers exist now.
    assert_eq!(
        s.clients[0].click_handler("fw", "rules").as_deref(),
        Some("16")
    );
}

#[test]
fn enterprise_configs_are_encrypted_isp_configs_are_not() {
    let mut ent = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    ent.update_config(&UseCase::Firewall.click_config(), 0)
        .unwrap();
    assert!(ent.config_server.fetch(2).unwrap().encrypted);

    let mut isp = Scenario::isp(1, UseCase::Nop).build().unwrap();
    isp.update_config(&UseCase::Firewall.click_config(), 0)
        .unwrap();
    let cfg = isp.config_server.fetch(2).unwrap();
    assert!(!cfg.encrypted);
    assert!(cfg.plaintext_click().unwrap().contains("IPFilter"));
}

#[test]
fn version_replay_rejected_by_enclave() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    s.update_config(&UseCase::Firewall.click_config(), 0)
        .unwrap(); // v2
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Replay v1-style config (signed by the genuine CA, old version).
    let old = SignedConfig::publish(
        &UseCase::Nop.click_config(),
        2, // same version as current -> not newer
        s.ca.signing_key(),
        None,
        &mut rng,
    );
    let err = s.clients[0].enclave_app().apply_config(&old).unwrap_err();
    assert_eq!(
        err,
        EndBoxError::ConfigUpdate("version not newer (replay?)")
    );
}

#[test]
fn forged_signature_rejected() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let attacker_key = endbox_crypto::schnorr::SigningKey::generate(&mut rng);
    let forged = SignedConfig::publish(
        "FromDevice(t) -> ToDevice(t);",
        99,
        &attacker_key, // not the CA
        None,
        &mut rng,
    );
    let err = s.clients[0]
        .enclave_app()
        .apply_config(&forged)
        .unwrap_err();
    assert_eq!(err, EndBoxError::ConfigUpdate("signature invalid"));
}

#[test]
fn version_mismatch_inside_payload_rejected() {
    // An attacker splices a valid old payload under a new version header;
    // the version embedded *inside* the (signed) body must match.
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let good = SignedConfig::publish(
        &UseCase::Firewall.click_config(),
        7,
        s.ca.signing_key(),
        None,
        &mut rng,
    );
    // Manually altering the version breaks the outer signature first.
    let mut spliced = good.clone();
    spliced.version = 8;
    let err = s.clients[0]
        .enclave_app()
        .apply_config(&spliced)
        .unwrap_err();
    assert_eq!(err, EndBoxError::ConfigUpdate("signature invalid"));
}

#[test]
fn grace_period_allows_old_then_blocks() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    // Announce v2 with a 30 s grace period but DON'T update the client.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let signed = SignedConfig::publish(
        &UseCase::Firewall.click_config(),
        2,
        s.ca.signing_key(),
        Some(&s.ca.config_key()),
        &mut rng,
    );
    s.config_server.upload(signed);
    s.server.announce_config(2, 30);

    // During grace: old config still accepted.
    s.send_from_client(0, b"during grace").unwrap();

    // Advance past the grace period.
    s.clock
        .advance(endbox_netsim::time::SimDuration::from_secs(31));
    let err = s.send_from_client(0, b"after grace").unwrap_err();
    assert!(matches!(
        err,
        EndBoxError::Vpn(VpnError::StaleConfiguration {
            client: 1,
            required: 2
        })
    ));

    // Client finally updates (ping -> fetch -> apply -> proof) and is
    // readmitted.
    s.ping_and_update_client(0).unwrap();
    assert_eq!(s.client_version(0), 2);
    s.send_from_client(0, b"after update").unwrap();
}

#[test]
fn hot_swap_preserves_element_state() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let counted_config = "FromDevice(tun0) -> c :: Counter -> ToDevice(tun0);";
    s.update_config(counted_config, 0).unwrap();
    for _ in 0..5 {
        s.send_from_client(0, b"count me").unwrap();
    }
    assert_eq!(
        s.clients[0].click_handler("c", "count").as_deref(),
        Some("5")
    );
    // Swap to a config that keeps the same named Counter: state carries
    // over ("Click's hot-swapping transfers state").
    let extended = "FromDevice(tun0) -> c :: Counter -> f :: IPFilter(allow all) -> ToDevice(tun0);\nf[1] -> Discard;";
    s.update_config(extended, 0).unwrap();
    assert_eq!(
        s.clients[0].click_handler("c", "count").as_deref(),
        Some("5")
    );
    s.send_from_client(0, b"count me too").unwrap();
    assert_eq!(
        s.clients[0].click_handler("c", "count").as_deref(),
        Some("6")
    );
}

#[test]
fn broken_config_leaves_old_one_running() {
    let mut s = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    // Admin fat-fingers a config: signed and versioned correctly but not
    // valid Click text.
    let broken = SignedConfig::publish(
        "FromDevice(tun0) -> NoSuchElement -> ToDevice(tun0);",
        2,
        s.ca.signing_key(),
        Some(&s.ca.config_key()),
        &mut rng,
    );
    let err = s.clients[0]
        .enclave_app()
        .apply_config(&broken)
        .unwrap_err();
    assert_eq!(err, EndBoxError::ConfigUpdate("config rejected by Click"));
    // Old config still in force.
    assert_eq!(s.client_version(0), 1);
    s.send_from_client(0, b"still running v1").unwrap();
}

#[test]
fn wrong_config_key_cannot_decrypt() {
    // A client from a different deployment (different CA/config key)
    // cannot decrypt this deployment's encrypted configs.
    let mut s1 = Scenario::enterprise(1, UseCase::Nop)
        .seed(100)
        .build()
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let foreign_key = [0xaau8; 32]; // not s1's config key
    let cfg = SignedConfig::publish(
        &UseCase::Firewall.click_config(),
        2,
        s1.ca.signing_key(),
        Some(&foreign_key),
        &mut rng,
    );
    let err = s1.clients[0].enclave_app().apply_config(&cfg).unwrap_err();
    assert_eq!(err, EndBoxError::ConfigUpdate("decryption failed"));
}

/// Test element that panics on its N-th packet — used to interrupt a
/// batch traversal halfway so packets are stranded in the router's
/// pending queues.
#[derive(Debug)]
struct PanicAfter {
    remaining: u64,
}

impl endbox_click::element::Element for PanicAfter {
    fn class_name(&self) -> &'static str {
        "PanicAfter"
    }

    fn process(
        &mut self,
        _port: usize,
        pkt: endbox_netsim::Packet,
        ctx: &mut endbox_click::element::ElementContext<'_>,
    ) {
        if self.remaining == 0 {
            // Disarm before unwinding: the fault fires exactly once.
            self.remaining = u64::MAX;
            panic!("injected element fault");
        }
        self.remaining -= 1;
        ctx.output(0, pkt);
    }
}

fn panic_after_factory(
    args: &[String],
    _env: &endbox_click::element::ElementEnv,
) -> Result<Box<dyn endbox_click::element::Element>, String> {
    let remaining = args
        .first()
        .and_then(|a| a.parse().ok())
        .ok_or("PanicAfter needs a packet count")?;
    Ok(Box::new(PanicAfter { remaining }))
}

#[test]
fn hot_swap_mid_batch_drains_stranded_packets_deterministically() {
    use endbox_click::element::ElementEnv;
    use endbox_click::registry::ElementRegistry;
    use endbox_click::Router;
    use endbox_netsim::{BufferPool, Packet, PacketBatch};
    use std::net::Ipv4Addr;

    let mut registry = ElementRegistry::standard();
    registry.register("PanicAfter", panic_after_factory);
    // Tee fans out: branch 1 runs (Counter, then queues at ToDevice)
    // before branch 0's PanicAfter run — so when PanicAfter dies on its
    // third packet, ToDevice still holds a full batch of clones.
    let config = "FromDevice(t) -> tee :: Tee(2); \
                  tee[0] -> p :: PanicAfter(2) -> Discard; \
                  tee[1] -> c :: Counter -> ToDevice(t);";
    let mut router =
        Router::from_config_with_registry(config, ElementEnv::default(), &registry).unwrap();

    let pool = BufferPool::new();
    let batch: PacketBatch = (0..6)
        .map(|i| {
            Packet::udp_in(
                &pool,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 1, 1),
                1000 + i as u16,
                2000,
                b"mid-batch swap",
            )
        })
        .collect();

    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.process_batch(batch)));
    assert!(result.is_err(), "the injected element fault must surface");
    assert_eq!(
        router.pending_depth(),
        6,
        "the ToDevice queue still holds the surviving branch"
    );

    // Swapping mid-batch must drain the stranded packets back to their
    // pools — deterministically, and observably via `stale_recycled`.
    let before = pool.stats();
    router
        .hot_swap("FromDevice(t) -> c :: Counter -> ToDevice(t);")
        .unwrap();
    let after = pool.stats();
    assert_eq!(router.pending_depth(), 0);
    assert_eq!(router.stale_recycled(), 6);
    assert_eq!(
        after.returned - before.returned,
        6,
        "stranded packets recycled by the swap"
    );
    assert_eq!(
        after.batched_ops - before.batched_ops,
        1,
        "one pool lock for the whole stranded queue"
    );
    // Pool reconciliation: every buffer ever taken is back.
    assert_eq!(
        after.fresh_allocs + after.reused,
        after.returned + after.discarded,
        "no pooled buffer leaked across the interrupted traversal: {after:?}"
    );
    // Counter state survived the swap (same name, same class) and the
    // new graph processes traffic normally.
    assert_eq!(router.read_handler("c", "count").as_deref(), Some("6"));
    let out = router.process_batch(
        (0..3)
            .map(|_| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    2,
                    b"after swap",
                )
            })
            .collect(),
    );
    assert_eq!(
        out.accepted, 3,
        "new config is live after the mid-batch swap"
    );
}

#[test]
fn interrupted_batch_drains_on_next_traversal_without_a_swap() {
    use endbox_click::element::ElementEnv;
    use endbox_click::registry::ElementRegistry;
    use endbox_click::Router;
    use endbox_netsim::{BufferPool, Packet, PacketBatch};
    use std::net::Ipv4Addr;

    let mut registry = ElementRegistry::standard();
    registry.register("PanicAfter", panic_after_factory);
    // As above: the Counter hop makes ToDevice's sequence keys longer
    // than PanicAfter's, so the panic fires while ToDevice still queues
    // the surviving branch.
    let config = "FromDevice(t) -> tee :: Tee(2); \
                  tee[0] -> p :: PanicAfter(1) -> Discard; \
                  tee[1] -> Counter -> ToDevice(t);";
    let mut router =
        Router::from_config_with_registry(config, ElementEnv::default(), &registry).unwrap();

    let pool = BufferPool::new();
    let batch: PacketBatch = (0..4)
        .map(|_| {
            Packet::udp_in(
                &pool,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 1, 1),
                7,
                8,
                b"x",
            )
        })
        .collect();
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.process_batch(batch)));
    assert!(result.is_err());
    assert_eq!(router.pending_depth(), 4);

    // The next batch drains the stale queue before seeding — old packets
    // cannot leak into the new traversal's output.
    let out = router.process_batch(
        (0..2)
            .map(|_| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    7,
                    8,
                    b"y",
                )
            })
            .collect(),
    );
    assert_eq!(router.stale_recycled(), 4);
    assert_eq!(out.emitted.len(), 2, "only the new batch's packets emit");
    let stats = pool.stats();
    assert_eq!(
        stats.fresh_allocs + stats.reused,
        stats.returned + stats.discarded + 2,
        "everything but the two just-emitted packets is back in the pool"
    );
}

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

/// The PR 9 seam under structural elasticity: a config hot-swap lands
/// while a **resize drain is in flight** — the RX pool has just shrunk,
/// moving a parked partial record to its new home, and the record's tail
/// has not yet arrived — and the swapped router itself holds packets
/// stranded by an interrupted traversal. `drain_stale_pending` must
/// recover every stranded packet back to its pool, and the resize drain
/// must still complete the in-flight record exactly once: the two drain
/// disciplines (router pending queues, RX reassembly state) never eat
/// each other's packets.
#[test]
fn hot_swap_during_resize_drain_recovers_every_inflight_packet() {
    use endbox::scenario::ShardedScenario;
    use endbox_click::element::ElementEnv;
    use endbox_click::registry::ElementRegistry;
    use endbox_click::Router;
    use endbox_netsim::{BufferPool, Packet, PacketBatch};
    use endbox_vpn::proto::{Opcode, Record};
    use std::net::Ipv4Addr;
    use support::{simplify, split_raw, Out};

    // Datapath side: peer 1's record head parks on RX shard 1 — the
    // shard the shrink below retires.
    let mut scenario: ShardedScenario = Scenario::enterprise(2, UseCase::Nop)
        .seed(0x9e1)
        .rx_shards(2)
        .async_ingress(true)
        .build_sharded(2)
        .unwrap();
    let record = Record {
        opcode: Opcode::Data,
        session_id: scenario.session_id(1),
        packet_id: 0x8001,
        payload: vec![0x5a; 140],
    };
    let frags = split_raw(&record.to_bytes(), &[9, 50], 0xBEEF_0003);
    assert_eq!(frags.len(), 3);
    scenario.send_wire_datagrams(1, frags[..2].to_vec());
    let mut outs: Vec<Out> = Vec::new();
    let mut spins = 0;
    while outs.len() < 2 {
        outs.extend(scenario.pump_async().into_iter().map(|(_, r)| simplify(r)));
        spins += 1;
        assert!(spins < 100_000, "wire lost the record head");
    }
    assert!(outs.iter().all(|o| matches!(o, Out::Pending)));

    // The resize drain fires: the shrink retires shard 1 and the parked
    // partial migrates to the survivor. The drain is now "in flight" —
    // reassembly state has moved but the record is still incomplete.
    let (_, drained) = scenario.resize_rx_shards(1);
    assert_eq!(drained, 1, "the parked partial must ride the shrink");

    // Mid-drain, the operator hot-swaps a config whose router holds a
    // batch stranded by an interrupted traversal (the PR 9 scenario).
    let mut registry = ElementRegistry::standard();
    registry.register("PanicAfter", panic_after_factory);
    let config = "FromDevice(t) -> tee :: Tee(2); \
                  tee[0] -> p :: PanicAfter(2) -> Discard; \
                  tee[1] -> c :: Counter -> ToDevice(t);";
    let mut router =
        Router::from_config_with_registry(config, ElementEnv::default(), &registry).unwrap();
    let pool = BufferPool::new();
    let batch: PacketBatch = (0..6)
        .map(|i| {
            Packet::udp_in(
                &pool,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 1, 1),
                3000 + i as u16,
                4000,
                b"swap during resize drain",
            )
        })
        .collect();
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.process_batch(batch)));
    assert!(result.is_err(), "the injected element fault must surface");
    assert_eq!(router.pending_depth(), 6);

    let before = pool.stats();
    router
        .hot_swap("FromDevice(t) -> c :: Counter -> ToDevice(t);")
        .unwrap();
    let after = pool.stats();
    assert_eq!(router.pending_depth(), 0);
    assert_eq!(router.stale_recycled(), 6);
    assert_eq!(
        after.returned - before.returned,
        6,
        "drain_stale_pending must recover every stranded packet"
    );
    assert_eq!(
        after.fresh_allocs + after.reused,
        after.returned + after.discarded,
        "no pooled buffer leaked across the swap: {after:?}"
    );

    // The resize drain completes: the tail arrives at the rehashed home
    // and the in-flight record resolves exactly once — neither lost to
    // the shrink nor duplicated by the swap.
    scenario.send_wire_datagrams(1, vec![frags[2].clone()]);
    let mut tail: Vec<Out> = Vec::new();
    let mut spins = 0;
    while tail.is_empty() {
        tail.extend(scenario.pump_async().into_iter().map(|(_, r)| simplify(r)));
        spins += 1;
        assert!(spins < 100_000, "wire lost the record tail");
    }
    assert_eq!(tail.len(), 1, "the record must resolve exactly once");
    assert!(
        !matches!(tail[0], Out::Pending),
        "the tail must complete the record: {tail:?}"
    );
    let stats = scenario.resize_stats();
    assert_eq!(stats.rx_shrinks, 1);
    assert_eq!(stats.partials_drained, 1);
}
