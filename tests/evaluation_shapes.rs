//! Integration: the headline quantitative claims of §V, asserted as
//! *shapes* (who wins, by what factor, where the knees are) rather than
//! absolute numbers — per the reproduction methodology in DESIGN.md.

use endbox::eval::deploy::Deployment;
use endbox::eval::latency::fig7;
use endbox::eval::reconfig::table2;
use endbox::eval::scalability::sweep;
use endbox::eval::throughput::single_flow_mbps;
use endbox::use_cases::UseCase;

/// §V headline: "ENDBOX achieves up to 3.8× higher throughput and scales
/// linearly with the number of clients."
#[test]
fn headline_scalability_claim() {
    let endbox = sweep(Deployment::EndBoxSgx(UseCase::Idps));
    let central = sweep(Deployment::OpenVpnClick(UseCase::Idps));
    let e60 = endbox.last().unwrap().gbps;
    let c60 = central.last().unwrap().gbps;
    let factor = e60 / c60;
    assert!(
        (2.2..=4.5).contains(&factor),
        "paper: 2.6x-3.8x; measured {factor:.2}x ({e60:.2} vs {c60:.2} Gbps)"
    );

    // Linearity: correlation of throughput with client count below the
    // saturation knee.
    let pre_knee: Vec<(f64, f64)> = endbox
        .iter()
        .filter(|p| p.clients <= 30)
        .map(|p| (p.clients as f64, p.gbps))
        .collect();
    for w in pre_knee.windows(2) {
        let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
        assert!(
            (0.15..0.30).contains(&slope),
            "~0.2 Gbps per client expected, got {slope:.3}"
        );
    }
}

/// §V-D: "ENDBOX introduces an acceptable throughput overhead of only 16%
/// for large packets in the NOP use case."
#[test]
fn large_packet_overhead_matches_paper_band() {
    let vanilla = single_flow_mbps(Deployment::VanillaOpenVpn, 65_000);
    let sgx = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 65_000);
    let overhead = 1.0 - sgx / vanilla;
    assert!(
        (0.08..=0.25).contains(&overhead),
        "paper: ~16% best-case overhead; measured {:.0}%",
        overhead * 100.0
    );
}

/// §V-D: worst-case overhead for small packets is large (paper: 39%).
#[test]
fn small_packet_overhead_is_worst_case() {
    let vanilla = single_flow_mbps(Deployment::VanillaOpenVpn, 256);
    let sgx = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 256);
    let small_overhead = 1.0 - sgx / vanilla;
    let large_overhead = 1.0
        - single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 65_000)
            / single_flow_mbps(Deployment::VanillaOpenVpn, 65_000);
    assert!(
        small_overhead > large_overhead,
        "overhead must shrink with packet size: {small_overhead:.2} vs {large_overhead:.2}"
    );
    assert!(
        (0.25..=0.55).contains(&small_overhead),
        "paper: ~39%; got {small_overhead:.2}"
    );
}

/// Fig. 7: EndBox's latency overhead is ~6%, cloud redirection is 61% to
/// 1773%.
#[test]
fn redirection_latency_shape() {
    let rows = fig7();
    let get = |l: &str| rows.iter().find(|(label, _)| *label == l).unwrap().1;
    let baseline = get("no redirection");
    assert!(
        (get("EndBox SGX") / baseline - 1.0) < 0.10,
        "EndBox ~6% overhead"
    );
    let eu = get("AWS eu-central") / baseline - 1.0;
    assert!(
        (0.4..1.0).contains(&eu),
        "paper: +61%; got {:.0}%",
        eu * 100.0
    );
    let us = get("AWS us-east") / baseline - 1.0;
    assert!(us > 10.0, "paper: +1773%; got {:.0}%", us * 100.0);
}

/// §V-F: "ENDBOX requires only 30% of the time for the actual
/// reconfiguration compared to vanilla Click."
#[test]
fn reconfiguration_ratio() {
    let rows = table2();
    let vanilla = rows.iter().find(|r| r.system == "vanilla Click").unwrap();
    let endbox = rows.iter().find(|r| r.system == "EndBox").unwrap();
    let ratio = endbox.hotswap_ms / vanilla.hotswap_ms;
    assert!((0.2..0.45).contains(&ratio), "paper: ~0.30; got {ratio:.2}");
}

/// Fig. 10a: vanilla Click is capped by its single process; OpenVPN+Click
/// *decreases* beyond its peak; EndBox tracks vanilla OpenVPN.
#[test]
fn fig10a_deployment_shapes() {
    let vanilla = sweep(Deployment::VanillaOpenVpn);
    let endbox = sweep(Deployment::EndBoxSgx(UseCase::Nop));
    let click = sweep(Deployment::VanillaClick(UseCase::Nop));
    let central = sweep(Deployment::OpenVpnClick(UseCase::Nop));

    // EndBox == vanilla OpenVPN server-side (within 5%).
    for (v, e) in vanilla.iter().zip(endbox.iter()) {
        assert!((v.gbps - e.gbps).abs() / v.gbps.max(0.1) < 0.05);
    }
    // Vanilla Click plateaus below the VPN plateau (single process).
    let click_plateau = click.last().unwrap().gbps;
    let vpn_plateau = vanilla.last().unwrap().gbps;
    assert!(
        click_plateau < vpn_plateau,
        "{click_plateau} < {vpn_plateau}"
    );
    assert!(
        (4.0..6.5).contains(&click_plateau),
        "paper: ~5.5 Gbps; got {click_plateau:.1}"
    );
    // OpenVPN+Click decreases after its peak.
    let peak = central.iter().map(|p| p.gbps).fold(0.0f64, f64::max);
    let last = central.last().unwrap().gbps;
    assert!(
        last < peak * 0.95,
        "central middlebox declines: peak {peak:.2}, 60cl {last:.2}"
    );
}
