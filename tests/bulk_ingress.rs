//! Parity and accounting tests for the syscall-batched transport: bulk
//! `recv_many` ingress, the TX-batching egress stage and the OS-socket
//! backend.
//!
//! The named tests replay [`support::Schedule`]s — the deterministic
//! interleaving classes of `tests/rx_interleaving.rs` and
//! `tests/async_ingress.rs` — through the event-driven front-end with an
//! explicit ingress bulk size (`ShardedScenario::set_recv_bulk`): `1` is
//! the per-datagram transport the previous PRs shipped, `2` forces call
//! boundaries in the middle of every deep socket queue, `32` is the
//! production `recvmmsg`-shaped bulk. Outcomes must be byte-identical to
//! the single-threaded reference server across the whole
//! `(rx_shards, workers, policy, bulk)` grid — bulk size may only ever
//! move the *call count*, never the results.
//!
//! The OS-socket tests run the same schedules over real loopback UDP
//! sockets ([`endbox_netsim::net::OsWire`]) behind the identical
//! transport API, asserting the backends agree byte-for-byte; they skip
//! when the sandbox forbids loopback (set `ENDBOX_REQUIRE_OS_SOCKET=1`
//! to make the skip a failure).

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_netsim::net::OsWire;
use endbox_netsim::Packet;
use support::{
    assert_schedule_parity_bulk, assert_schedule_parity_os, run_async_bulk, run_single, PeerMap,
    Schedule, Step,
};

/// Splits through the record header and 1-byte fragments, partial
/// records straddling poll rounds, a replayed Disconnect — the
/// adversarial framing schedule — through every bulk size on the full
/// grid.
#[test]
fn bulk_sizes_are_outcome_invariant_on_adversarial_framing() {
    let schedule = Schedule::new("bulk-adversarial-framing", 2, 0xb1_01)
        .stall(0, 200)
        .step(Step::SplitRecord {
            client: 0,
            payload_len: 40,
            splits: (1..60).collect(), // 1-byte fragments through header + body
        })
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 200,
            splits: vec![1, 2, 3, 90], // splits inside the record header
            tag: 1,
            lo: 0,
            hi: 3,
        })
        .step(Step::Disconnect { client: 1 })
        .step(Step::Replay)
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 200,
            splits: vec![1, 2, 3, 90],
            tag: 1,
            lo: 3,
            hi: 5,
        })
        .step(Step::Single { client: 0 });
    assert_schedule_parity_bulk(&schedule);
}

/// Deep per-socket queues (one peer floods 12 datagrams per flush while
/// collided stride-4 peers trickle): bulk 2 must cut every queue into
/// many calls, bulk 32 must swallow each queue whole, and neither may
/// change a single outcome.
#[test]
fn bulk_call_boundaries_mid_queue_preserve_outcomes() {
    let mut schedule = Schedule::new("bulk-deep-queues", 3, 0xb1_02).peers(PeerMap::Stride(4));
    for round in 0..3 {
        for _ in 0..12 {
            schedule = schedule.step(Step::Single { client: 0 });
        }
        schedule = schedule
            .step(Step::Single { client: 1 })
            .step(Step::Ping { client: 2 });
        if round < 2 {
            schedule = schedule.step(Step::Flush);
        }
    }
    assert_schedule_parity_bulk(&schedule);
}

/// The bulk knob moves exactly one observable: the ingress io-call
/// count. Same traffic at bulk 1 vs bulk 32 → identical outcomes and
/// datagram counts, strictly fewer `recv_many` calls.
#[test]
fn bulk_ingress_amortises_io_calls_without_changing_results() {
    let schedule = Schedule::new("bulk-io-call-accounting", 2, 0xb1_03)
        .step(Step::Batch {
            client: 0,
            n_packets: 4,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Single { client: 0 })
        .step(Step::Single { client: 1 });
    let reference = run_single(&schedule);

    let run = |bulk: usize| {
        let mut scenario = Scenario::enterprise(2, UseCase::Nop)
            .seed(0xb1_03)
            .rx_shards(2)
            .async_ingress(true)
            .build_sharded(2)
            .unwrap();
        scenario.set_recv_bulk(bulk);
        // Queue everything, then drain in one event-loop run so the
        // amortisation has a deep backlog to work on.
        for client in 0..2usize {
            for seq in 0..8u32 {
                let pkt = Packet::tcp(
                    Scenario::client_addr(client),
                    Scenario::network_addr(),
                    45_000 + client as u16,
                    5_001,
                    seq,
                    format!("amortise {client} {seq}").as_bytes(),
                );
                let sealed = scenario.clients[client].send_packet(pkt).unwrap();
                scenario.send_wire_datagrams(client as u64, sealed);
            }
        }
        let outs = scenario.pump_async().len();
        (outs, scenario.async_stats())
    };
    let (outs_1, stats_1) = run(1);
    let (outs_32, stats_32) = run(32);
    assert_eq!(outs_1, outs_32, "bulk size must not change delivery");
    assert_eq!(stats_1.datagrams, stats_32.datagrams);
    assert!(
        stats_32.io_calls * 2 < stats_1.io_calls,
        "bulk-32 must need far fewer socket calls: {} vs {}",
        stats_32.io_calls,
        stats_1.io_calls
    );

    // And the schedule-level outcomes match the reference at both sizes
    // (the accounting run above used its own traffic).
    use endbox_vpn::shard::DispatchPolicy;
    for bulk in [1, 32] {
        assert_eq!(
            run_async_bulk(&schedule, 2, 2, DispatchPolicy::Static, bulk),
            reference
        );
    }
}

/// Egress mirror: server→client batches ride the TX-batching stage (one
/// bulk `send_many` per destination per flush) and must put exactly the
/// fragments of a direct `send_batch_to_client` on the wire, in order.
#[test]
fn tx_batched_egress_is_byte_identical_to_direct_fragments() {
    let build = || {
        Scenario::enterprise(3, UseCase::Nop)
            .seed(0xb1_04)
            .rx_shards(2)
            .async_ingress(true)
            .build_sharded(2)
            .unwrap()
    };
    let mut direct = build();
    let mut batched = build();
    let packets: Vec<Packet> = (0..5)
        .map(|i| {
            Packet::tcp(
                Scenario::network_addr(),
                Scenario::client_addr(1),
                5_001,
                46_000,
                i,
                format!("egress packet {i} {}", "z".repeat(i as usize * 40)).as_bytes(),
            )
        })
        .collect();
    // Identical seeds → identical session keys → identical fragments.
    let want = direct
        .server
        .send_batch_to_client(direct.session_id(1), &packets)
        .unwrap();
    let got = batched.egress_batch_to_client(1, &packets).unwrap();
    assert_eq!(got, want, "TX batching must not alter wire bytes");

    let stats = batched.tx_stats();
    assert_eq!(stats.enqueued, want.len() as u64);
    assert_eq!(stats.sent, want.len() as u64);
    assert_eq!(stats.flushes, 1);
    assert_eq!(
        stats.io_calls, 1,
        "one destination, one flush -> one bulk send: {stats:?}"
    );
    assert_eq!(stats.partial_sends, 0, "virtual wire never splits a bulk");
}

/// The OS-socket backend behind the same transport API: adversarial
/// framing schedules over real loopback UDP deliver byte-identical
/// results to the single-threaded reference (and hence to the virtual
/// wire, which the bulk grid pins against the same reference).
#[test]
fn os_socket_backend_matches_virtual_wire_byte_for_byte() {
    let schedule = Schedule::new("os-backend-parity", 2, 0xb1_05)
        .step(Step::SplitRecord {
            client: 0,
            payload_len: 32,
            splits: (1..48).collect(),
        })
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Flush)
        .step(Step::Disconnect { client: 0 })
        .step(Step::Replay)
        .step(Step::Single { client: 1 });
    assert_schedule_parity_os(&schedule, &[(1, 2), (2, 4)]);
}

/// Deep queues over the OS backend: kernel-buffered datagrams drain
/// through bulk `recv_many` with pool-backed receive buffers, and the
/// flood schedule still matches the reference exactly.
#[test]
fn os_socket_backend_survives_deep_queues_and_bulk_drains() {
    let mut schedule = Schedule::new("os-backend-deep-queues", 2, 0xb1_06);
    for _ in 0..20 {
        schedule = schedule.step(Step::Single { client: 0 });
    }
    schedule = schedule
        .step(Step::Single { client: 1 })
        .step(Step::Flush)
        .step(Step::Single { client: 0 });
    assert_schedule_parity_os(&schedule, &[(2, 2)]);
}

/// The scenario reports which backend it runs on — the knob CI's gated
/// loopback smoke test flips.
#[test]
fn wire_backend_is_reported() {
    let virt = Scenario::enterprise(1, UseCase::Nop)
        .seed(0xb1_07)
        .async_ingress(true)
        .build_sharded(1)
        .unwrap();
    assert_eq!(virt.wire_backend(), "virtual");
    if OsWire::available() {
        let os = Scenario::enterprise(1, UseCase::Nop)
            .seed(0xb1_08)
            .async_ingress(true)
            .os_transport(true)
            .build_sharded(1)
            .unwrap();
        assert_eq!(os.wire_backend(), "os-socket");
    }
}
