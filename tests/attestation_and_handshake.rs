//! Integration: the full Fig. 4 enrollment chain across `endbox-sgx`,
//! `endbox-vpn` and `endbox` — and every way it must fail.

use endbox::ca::CertificateAuthority;
use endbox::client::{EndBoxClient, EndBoxClientConfig};
use endbox::error::EndBoxError;
use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_sgx::attestation::{CpuIdentity, IasSimulator};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x1e57)
}

#[test]
fn full_enrollment_and_handshake() {
    let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
    assert_eq!(s.ca.issued_count(), 3, "2 clients + 1 server certificate");
    assert!(s.clients.iter().all(|c| c.is_connected()));
    // Both clients share the same enclave measurement (same build).
    let m0 = s.clients[0].enclave_app().measurement();
    let m1 = s.clients[1].enclave_app().measurement();
    assert_eq!(m0, m1);
}

#[test]
fn unknown_measurement_is_refused_by_ca() {
    let mut r = rng();
    let mut ias = IasSimulator::new(&mut r);
    let cpu = CpuIdentity::from_seed([1u8; 32]);
    ias.register_platform(cpu.attestation_public());
    let mut ca = CertificateAuthority::new(ias.public_key(), &mut r);
    // CA never whitelists the measurement.
    let cfg = EndBoxClientConfig::new("rogue", ca.public_key(), cpu);
    let mut client = EndBoxClient::new(cfg).unwrap();
    let err = client.enroll("rogue", &mut ca, &ias, &mut r).unwrap_err();
    assert_eq!(err, EndBoxError::Enrollment("unknown enclave measurement"));
}

#[test]
fn revoked_platform_cannot_enroll() {
    let mut r = rng();
    let mut ias = IasSimulator::new(&mut r);
    let cpu = CpuIdentity::from_seed([2u8; 32]);
    ias.register_platform(cpu.attestation_public());
    let mut ca = CertificateAuthority::new(ias.public_key(), &mut r);
    let cfg = EndBoxClientConfig::new("victim", ca.public_key(), cpu.clone());
    let mut client = EndBoxClient::new(cfg).unwrap();
    ca.allow_measurement(client.enclave_app().measurement());
    // Platform key leaked -> Intel revokes it.
    ias.revoke_platform(&cpu.attestation_public());
    let err = client.enroll("victim", &mut ca, &ias, &mut r).unwrap_err();
    assert_eq!(err, EndBoxError::Enrollment("IAS rejected the quote"));
}

#[test]
fn unregistered_platform_cannot_enroll() {
    let mut r = rng();
    let ias = IasSimulator::new(&mut r); // platform never provisioned
    let cpu = CpuIdentity::from_seed([3u8; 32]);
    let mut ca = CertificateAuthority::new(ias.public_key(), &mut r);
    let cfg = EndBoxClientConfig::new("ghost", ca.public_key(), cpu);
    let mut client = EndBoxClient::new(cfg).unwrap();
    ca.allow_measurement(client.enclave_app().measurement());
    assert!(client.enroll("ghost", &mut ca, &ias, &mut r).is_err());
}

#[test]
fn wrong_ca_key_in_binary_rejects_enrollment_response() {
    // The enclave pins the CA public key at build time; a client built
    // with a different CA key must reject certificates from this CA.
    let mut r = rng();
    let mut ias = IasSimulator::new(&mut r);
    let cpu = CpuIdentity::from_seed([4u8; 32]);
    ias.register_platform(cpu.attestation_public());
    let mut ca = CertificateAuthority::new(ias.public_key(), &mut r);
    let other_ca = CertificateAuthority::new(ias.public_key(), &mut r);

    // Client binary embeds *other_ca*'s key.
    let cfg = EndBoxClientConfig::new("confused", other_ca.public_key(), cpu);
    let mut client = EndBoxClient::new(cfg).unwrap();
    ca.allow_measurement(client.enclave_app().measurement());
    let err = client
        .enroll("confused", &mut ca, &ias, &mut r)
        .unwrap_err();
    assert_eq!(err, EndBoxError::Enrollment("CA signature invalid"));
}

#[test]
fn client_cannot_connect_before_enrollment() {
    let mut r = rng();
    let ias = IasSimulator::new(&mut r);
    let ca = CertificateAuthority::new(ias.public_key(), &mut r);
    let cfg = EndBoxClientConfig::new("eager", ca.public_key(), CpuIdentity::from_seed([5; 32]));
    let mut client = EndBoxClient::new(cfg).unwrap();
    assert!(matches!(
        client.connect_start(),
        Err(EndBoxError::NotReady(_))
    ));
}

#[test]
fn sending_before_handshake_fails() {
    let mut r = rng();
    let mut ias = IasSimulator::new(&mut r);
    let cpu = CpuIdentity::from_seed([6u8; 32]);
    ias.register_platform(cpu.attestation_public());
    let mut ca = CertificateAuthority::new(ias.public_key(), &mut r);
    let cfg = EndBoxClientConfig::new("early", ca.public_key(), cpu);
    let mut client = EndBoxClient::new(cfg).unwrap();
    ca.allow_measurement(client.enclave_app().measurement());
    client.enroll("early", &mut ca, &ias, &mut r).unwrap();
    // Enrolled but not connected.
    let pkt = endbox_netsim::Packet::udp(
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        std::net::Ipv4Addr::new(10, 1, 0, 1),
        1,
        2,
        b"too early",
    );
    assert!(matches!(
        client.send_packet(pkt),
        Err(EndBoxError::NotReady(_))
    ));
}

#[test]
fn interface_matches_paper_dimensions() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    assert_eq!(s.clients[0].enclave_app().raw_enclave_ecall_names(), 70);
    // Steady state uses one ecall per packet.
    let before = s.clients[0].enclave_app().transition_counters().ecalls;
    for _ in 0..10 {
        s.send_from_client(0, b"count my ecalls").unwrap();
    }
    let after = s.clients[0].enclave_app().transition_counters().ecalls;
    assert_eq!(after - before, 10, "exactly one ecall per packet (§IV-A)");
}
