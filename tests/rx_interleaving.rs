//! Deterministic interleaving/fault tests for the sharded RX front-end
//! (`RxShardPool`, `peer_id mod K`).
//!
//! Every test replays a named [`support::Schedule`] — an explicit
//! description of one interleaving class (input order, batch boundaries,
//! chosen `peer_id`s, partial-datagram splits, per-shard stalls) —
//! through the single-threaded reference server and the sharded server
//! across the `(rx_shards, workers, dispatch policy)` grid, asserting
//! byte-identical outcomes. The re-merge makes the result independent of
//! the actual thread schedule; the stalls force the adversarial arrival
//! orders to really occur, so nothing here is a timing accident.

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::Scenario;
use endbox::server::Delivery;
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;
use support::{
    assert_schedule_parity, assert_schedule_parity_on, simplify, split_raw, Out, PeerMap, Schedule,
    Step,
};

/// A successful Disconnect pauses only its owning RX shard; stalling that
/// shard makes every other shard's events reach the re-merge first, so
/// the front-end must hold them while the Disconnect verdict round-trips
/// across the pipeline boundary — with the peer's next record (split so a
/// fragment lands inside a fresh reassembler) and a failed replayed
/// Disconnect behind it.
#[test]
fn rx_schedule_disconnect_races_slow_owning_shard() {
    let schedule = Schedule::new("disconnect-races-slow-owning-shard", 2, 0xeb90)
        .stall(0, 400) // peer 0's shard (for every K in the grid) frames slowly
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Disconnect { client: 0 })
        .step(Step::Replay) // replayed Disconnect: session unknown now -> must NOT tear down
        .step(Step::SplitRecord {
            client: 0,
            payload_len: 220,
            splits: vec![3, 40], // first cut inside the record header
        })
        .step(Step::Single { client: 1 })
        .step(Step::Flush)
        .step(Step::Single { client: 1 });
    assert_schedule_parity(&schedule);
}

/// The mirror image: the *sibling* shard is slow, so the Disconnect
/// verdict is ready long before the other peers' events arrive and the
/// re-merge buffer holds completed later-index events instead.
#[test]
fn rx_schedule_disconnect_with_slow_sibling_shard() {
    let schedule = Schedule::new("disconnect-with-slow-sibling-shard", 3, 0xeb91)
        .stall(1, 400)
        .step(Step::Single { client: 1 })
        .step(Step::Disconnect { client: 0 })
        .step(Step::Batch {
            client: 2,
            n_packets: 4,
        })
        .step(Step::SplitRecord {
            client: 1,
            payload_len: 150,
            splits: vec![1], // 1-byte first fragment
        })
        .step(Step::Ping { client: 2 });
    assert_schedule_parity(&schedule);
}

/// All peers collide on RX shard 0 via chosen `peer_id`s (stride 4 is
/// divisible by every K in the grid): sharding buys nothing, but the
/// collided shard must still sequence every peer exactly like the single
/// RX thread — including a Disconnect pause in the middle of the
/// collided stream.
#[test]
fn rx_schedule_all_peers_collide_on_one_shard() {
    let schedule = Schedule::new("all-peers-collide", 3, 0xeb92)
        .peers(PeerMap::Stride(4))
        .step(Step::Batch {
            client: 0,
            n_packets: 2,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Replay)
        .step(Step::Disconnect { client: 2 })
        .step(Step::Replay)
        .step(Step::Single { client: 0 })
        .step(Step::Flush)
        .step(Step::Ping { client: 1 })
        .step(Step::Single { client: 1 });
    assert_schedule_parity(&schedule);
}

/// A split record's tail straddles both a `Flush` boundary and the
/// RX_DISPATCH_CHUNK cut: the head fragments arrive in one
/// `receive_datagrams` batch, 40 complete records from other peers force
/// chunked dispatches, and only then does the tail complete the record —
/// which the session layer rejects identically on both servers (crafted
/// payload, live session).
#[test]
fn rx_schedule_split_straddles_dispatch_and_flush_boundaries() {
    let mut schedule = Schedule::new("split-straddles-boundaries", 2, 0xeb93)
        .stall(0, 150)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 300,
            splits: vec![5, 9, 120],
            tag: 1,
            lo: 0,
            hi: 2,
        })
        .step(Step::Flush);
    for _ in 0..40 {
        schedule = schedule.step(Step::Single { client: 1 });
    }
    schedule = schedule
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 300,
            splits: vec![5, 9, 120],
            tag: 1,
            lo: 2,
            hi: 4,
        })
        .step(Step::Single { client: 1 });
    assert_schedule_parity(&schedule);
}

/// Interleaved tiny datagrams: every record of every peer is split to
/// single-digit fragment sizes (including 1-byte splits), peers
/// alternating datagram-by-datagram across batch boundaries.
#[test]
fn rx_schedule_interleaved_tiny_datagrams() {
    let mut schedule = Schedule::new("interleaved-tiny-datagrams", 2, 0xeb94).stall(1, 100);
    for i in 0..6 {
        schedule = schedule
            .step(Step::SplitRecord {
                client: i % 2,
                payload_len: 24,
                splits: (1..40).collect(), // 1-byte fragments through header and body
            })
            .step(Step::Single {
                client: (i + 1) % 2,
            });
        if i % 3 == 2 {
            schedule = schedule.step(Step::Flush);
        }
    }
    assert_schedule_parity(&schedule);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn to_schedule(
        raw: &[(usize, usize, usize)],
        n_clients: usize,
        collide: bool,
        seed: u64,
    ) -> Schedule {
        let mut schedule =
            Schedule::new("proptest-schedule", n_clients, 0xeb50 + seed).peers(if collide {
                PeerMap::Stride(4)
            } else {
                PeerMap::Identity
            });
        // A deterministic stall profile derived from the seed keeps the
        // cross-shard arrival order adversarial without flaking.
        schedule = schedule.stall((seed % 4) as usize, 120);
        for &(kind, client, n) in raw {
            let client = client % n_clients;
            schedule = schedule.step(match kind % 8 {
                0 | 1 => Step::Batch {
                    client,
                    n_packets: 1 + n % 6,
                },
                2 => Step::Single { client },
                3 => Step::Ping { client },
                4 => Step::Replay,
                5 => Step::SplitRecord {
                    client,
                    payload_len: 16 + n * 13,
                    splits: vec![1 + n, 7 + n * 3, 60],
                },
                6 => Step::Flush,
                _ => Step::Disconnect { client },
            });
        }
        schedule
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Proptest-generated schedules (batches, singles, pings,
        /// replays, disconnects, arbitrary splits, flush boundaries,
        /// colliding or spread peer maps) are byte-identical to the
        /// single-threaded server over the FULL
        /// (rx_shards × workers × policy) grid.
        #[test]
        fn generated_schedules_match_single_server_on_full_grid(
            n_clients in 2usize..4,
            seed in 0u64..1_000,
            collide in proptest::any::<bool>(),
            raw in prop::collection::vec((0usize..8, 0usize..4, 0usize..8), 3..9),
        ) {
            let schedule = to_schedule(&raw, n_clients, collide, seed);
            assert_schedule_parity(&schedule);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Reassembly fuzz: a real sealed record, re-split at arbitrary
        /// byte offsets (1-byte fragments, cuts inside the record header,
        /// anything), fed through the sharded RX path must yield exactly
        /// the records the unsplit stream yields on the single-threaded
        /// `VpnServer` path.
        #[test]
        fn arbitrary_split_points_match_unsplit_stream(
            seed in 0u64..1_000,
            n_packets in 1usize..5,
            raw_splits in prop::collection::vec(1usize..900, 0..14),
        ) {
            let payloads: Vec<Vec<u8>> = (0..n_packets)
                .map(|i| format!("fuzz {seed} packet {i}").into_bytes())
                .collect();
            let mk_packets = |idx: usize| -> Vec<Packet> {
                payloads
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Packet::tcp(
                            Scenario::client_addr(idx),
                            Scenario::network_addr(),
                            42_000,
                            5_001,
                            i as u32,
                            p,
                        )
                    })
                    .collect()
            };

            // Reference: the unsplit datagrams through the single server.
            let mut single = Scenario::enterprise(1, UseCase::Nop)
                .seed(0xeb60 + seed)
                .build()
                .unwrap();
            let unsplit = single.clients[0].send_batch(mk_packets(0)).unwrap();
            let reference_np: Vec<Out> = unsplit
                .iter()
                .map(|d| simplify(single.server.receive_datagram(0, d)))
                .filter(|o| *o != Out::Pending)
                .collect();

            for rx_shards in [1usize, 2, 4] {
                let mut sharded = Scenario::enterprise(1, UseCase::Nop)
                    .seed(0xeb60 + seed)
                    .rx_shards(rx_shards)
                    .build_sharded(rx_shards) // workers vary with the RX grid
                    .unwrap();
                // Identical key material -> identical record bytes; recover
                // them from the client's own fragments, then re-split at
                // the fuzzed offsets.
                let datagrams = sharded.clients[0].send_batch(mk_packets(0)).unwrap();
                let mut reasm = endbox_vpn::frag::Reassembler::new();
                let mut record_bytes = None;
                for d in &datagrams {
                    if let Some(bytes) = reasm.push(d).unwrap() {
                        record_bytes = Some(bytes);
                    }
                }
                let record_bytes = record_bytes.expect("one full record");
                let frags = split_raw(&record_bytes, &raw_splits, 0xF00D_0001);
                let got: Vec<Out> = sharded
                    .server
                    .receive_datagrams(frags.into_iter().map(|d| (0u64, d)).collect())
                    .into_iter()
                    .map(simplify)
                    .collect();
                // Fragment counts differ, so Pending verdicts differ; the
                // *records* (non-pending outcomes) must be identical.
                let got_np: Vec<Out> =
                    got.into_iter().filter(|o| *o != Out::Pending).collect();
                prop_assert_eq!(&got_np, &reference_np, "rx_shards={} diverged", rx_shards);
            }
        }
    }
}

/// Mixed singular (`receive_datagram`) and batch (`receive_datagrams`)
/// calls route through the same RX shard pool and must preserve per-peer
/// order — a multi-fragment record fed fragment-by-fragment across
/// call-style boundaries completes exactly like on the single server.
#[test]
fn mixed_singular_and_batch_calls_preserve_per_peer_order() {
    let seed = 0xeb95;
    let payloads: Vec<Vec<u8>> = (0..24).map(|i| vec![0x55u8; 1_200 + i]).collect();
    let packets = |idx: usize| -> Vec<Packet> {
        payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    43_000,
                    5_001,
                    i as u32,
                    p,
                )
            })
            .collect()
    };

    let mut single = Scenario::enterprise(2, UseCase::Nop)
        .seed(seed)
        .build()
        .unwrap();
    let d0 = single.clients[0].send_batch(packets(0)).unwrap();
    let d1 = single.clients[1].send_batch(packets(1)).unwrap();
    assert!(
        d0.len() >= 3,
        "record must fragment: {} datagrams",
        d0.len()
    );
    let mut reference = Vec::new();
    // Interleave peers datagram-by-datagram, like the sharded run below.
    let mut interleaved: Vec<(u64, Vec<u8>)> = Vec::new();
    let (mut i0, mut i1) = (0usize, 0usize);
    while i0 < d0.len() || i1 < d1.len() {
        if i0 < d0.len() {
            interleaved.push((0, d0[i0].clone()));
            i0 += 1;
        }
        if i1 < d1.len() {
            interleaved.push((1, d1[i1].clone()));
            i1 += 1;
        }
    }
    for (peer, d) in &interleaved {
        reference.push(simplify(single.server.receive_datagram(*peer, d)));
    }

    for rx_shards in [1usize, 2, 4] {
        let mut sharded = Scenario::enterprise(2, UseCase::Nop)
            .seed(seed)
            .rx_shards(rx_shards)
            .build_sharded(4)
            .unwrap();
        let d0 = sharded.clients[0].send_batch(packets(0)).unwrap();
        let d1 = sharded.clients[1].send_batch(packets(1)).unwrap();
        let mut interleaved: Vec<(u64, Vec<u8>)> = Vec::new();
        let (mut i0, mut i1) = (0usize, 0usize);
        while i0 < d0.len() || i1 < d1.len() {
            if i0 < d0.len() {
                interleaved.push((0, d0[i0].clone()));
                i0 += 1;
            }
            if i1 < d1.len() {
                interleaved.push((1, d1[i1].clone()));
                i1 += 1;
            }
        }
        // Alternate call styles: singular, then a batch of three, then
        // singular again, … — per-peer fragment order must survive the
        // mix because both styles feed the same pool.
        let mut got = Vec::new();
        let mut queue = interleaved
            .into_iter()
            .collect::<std::collections::VecDeque<_>>();
        let mut batch_turn = false;
        while let Some((peer, d)) = queue.pop_front() {
            if batch_turn {
                let mut batch = vec![(peer, d)];
                for _ in 0..2 {
                    if let Some(next) = queue.pop_front() {
                        batch.push(next);
                    }
                }
                got.extend(
                    sharded
                        .server
                        .receive_datagrams(batch)
                        .into_iter()
                        .map(simplify),
                );
            } else {
                got.push(simplify(sharded.server.receive_datagram(peer, &d)));
            }
            batch_turn = !batch_turn;
        }
        assert_eq!(got, reference, "rx_shards={rx_shards}");
    }
}

/// The RX shard pool's per-shard counters must reconcile with the
/// front-end re-merge totals, and reassembly state must sit exactly on
/// the owning shard.
#[test]
fn rx_shard_stats_reconcile_with_frontend_totals() {
    let mut s = Scenario::enterprise(4, UseCase::Nop)
        .seed(0xeb96)
        .rx_shards(4)
        .build_sharded(2)
        .unwrap();

    // A few full batches from every client...
    let payloads: Vec<Vec<Vec<u8>>> = (0..4)
        .map(|c| {
            (0..3)
                .map(|i| format!("stats {c} {i}").into_bytes())
                .collect()
        })
        .collect();
    s.send_batches_from_all(&payloads).unwrap();

    // ...a crafted disconnect for client 3 (pauses RX shard 3)...
    let sid = s.session_id(3);
    let disconnect = endbox_vpn::proto::Record {
        opcode: endbox_vpn::proto::Opcode::Disconnect,
        session_id: sid,
        packet_id: 0,
        payload: vec![],
    };
    let frags = support::split_raw(&disconnect.to_bytes(), &[], 0xBEEF_0001);
    let mut total_datagrams = 4u64; // one record datagram per client above
    for d in frags {
        total_datagrams += 1;
        let r = s.server.receive_datagram(3, &d).unwrap();
        assert!(matches!(r, Delivery::Disconnected { .. }));
    }

    // ...and a dangling partial record from client 1 (held on shard 1).
    let partial = endbox_vpn::proto::Record {
        opcode: endbox_vpn::proto::Opcode::Data,
        session_id: s.session_id(1),
        packet_id: 99,
        payload: vec![0xee; 300],
    };
    let frags = support::split_raw(&partial.to_bytes(), &[40, 200], 0xBEEF_0002);
    let held_bytes: usize = frags[..2].iter().map(|d| d.len() - 8).sum();
    for d in &frags[..2] {
        total_datagrams += 1;
        assert!(matches!(
            s.server.receive_datagram(1, d).unwrap(),
            Delivery::Pending
        ));
    }

    let stats = s.server.rx_shard_stats();
    assert_eq!(stats.len(), 4);
    let (merged, verdicts) = s.server.rx_merge_counters();

    // Counter reconciliation: per-shard sums == front-end totals. (The
    // handshake ran through the pool too, so compare against the
    // front-end's own totals rather than re-deriving from the script.)
    let framed: u64 = stats.iter().map(|st| st.records_framed).sum();
    let pauses: u64 = stats.iter().map(|st| st.disconnect_pauses).sum();
    let datagrams: u64 = stats.iter().map(|st| st.datagrams).sum();
    assert_eq!(framed, merged, "framed records must reconcile: {stats:?}");
    assert_eq!(pauses, verdicts, "disconnect pauses must reconcile");
    assert_eq!(verdicts, 1, "exactly one disconnect verdict was issued");
    assert!(
        datagrams >= total_datagrams,
        "shards saw every datagram (incl. handshakes): {datagrams} < {total_datagrams}"
    );

    // Placement: the partial record is pinned to peer 1's shard (1 mod 4),
    // byte-for-byte; every other shard holds nothing.
    for (shard, st) in stats.iter().enumerate() {
        if shard == 1 {
            assert_eq!(st.pending_records, 1, "shard 1 holds the partial");
            assert_eq!(
                st.reassembly_bytes_held, held_bytes,
                "held bytes must match the two buffered fragments"
            );
        } else {
            assert_eq!(st.pending_records, 0, "shard {shard} must hold nothing");
            assert_eq!(st.reassembly_bytes_held, 0);
        }
        // Peer i (i = client idx) lands on shard i for K=4.
        assert_eq!(
            st.peers,
            if shard == 3 { 0 } else { 1 },
            "shard {shard}: disconnect tore down peer 3's reassembler only"
        );
    }

    // The pool keeps working after the stats round-trip.
    let delivered = s.send_batches_from_all(&payloads[..3]).unwrap();
    assert_eq!(delivered.len(), 3);
}

/// The full-grid comprehensive schedule: a little of everything, checked
/// over every `(rx, workers)` pair on a reduced step budget (the
/// acceptance grid for the named tests above runs per-class).
#[test]
fn rx_schedule_kitchen_sink_on_reduced_grid() {
    let schedule = Schedule::new("kitchen-sink", 3, 0xeb97)
        .peers(PeerMap::Identity)
        .stall(2, 200)
        .step(Step::Batch {
            client: 0,
            n_packets: 5,
        })
        .step(Step::SplitRecord {
            client: 1,
            payload_len: 180,
            splits: vec![2, 90],
        })
        .step(Step::Replay)
        .step(Step::Flush)
        .step(Step::Disconnect { client: 1 })
        .step(Step::Replay)
        .step(Step::Ping { client: 2 })
        .step(Step::Single { client: 0 })
        .step(Step::Flush)
        .step(Step::Batch {
            client: 2,
            n_packets: 2,
        });
    assert_schedule_parity_on(&schedule, &[(1, 1), (2, 8), (4, 2), (4, 4)]);
}
