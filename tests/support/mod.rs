//! Deterministic interleaving/fault harness for the sharded RX front-end.
//!
//! A [`Schedule`] is an explicit, named description of one interleaving
//! class: which client produces which wire datagrams in which order,
//! where the `receive_datagrams` batch boundaries fall ([`Step::Flush`]),
//! which `peer_id`s the datagrams carry (steering them onto chosen RX
//! shards), how records are split into partial datagrams (including
//! splits inside record headers), and which RX shards are artificially
//! stalled so their events reach the front-end re-merge late.
//!
//! [`assert_schedule_parity`] replays the schedule through the
//! single-threaded reference server and through the sharded server for
//! every `(rx_shards, workers, dispatch policy)` in the grid, asserting
//! byte-identical outcomes; [`assert_schedule_parity_async`] does the
//! same through the **event-driven** socket front-end
//! (`ScenarioBuilder::async_ingress`), where a [`Step::Flush`] becomes a
//! poll-round boundary instead of a `receive_datagrams` batch boundary.
//! Because the sharded server re-merges by input index (and the event
//! loop re-merges drained datagrams by wire arrival stamp), the
//! assertions hold for *every* thread schedule — the stalls only force
//! the adversarial arrival orders to actually occur, so each
//! interleaving class is a reproducible named test instead of a timing
//! accident. [`assert_schedule_parity_adaptive`] replays a schedule with
//! the whole **self-tuning control plane** live
//! (`ScenarioBuilder::adaptive_control`), where [`Step::Remap`] steps
//! additionally fire manual peer re-homes at exact schedule positions.

use endbox::scenario::{Scenario, ShardedScenario};
use endbox::server::Delivery;
use endbox::use_cases::UseCase;
use endbox::{EndBoxClient, EndBoxError};
use endbox_netsim::net::TransportKind;
use endbox_netsim::Packet;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::shard::DispatchPolicy;
use endbox_vpn::wire::Writer;

/// RX shard counts the grid covers.
pub const RX_GRID: [usize; 3] = [1, 2, 4];
/// Worker shard counts the grid covers.
pub const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

/// An aggressive load-aware configuration so even short schedules cross
/// the migration threshold — parity must hold *across* migrations.
pub fn eager_load_aware() -> DispatchPolicy {
    DispatchPolicy::LoadAware {
        imbalance_bytes: 1_000,
        max_migrations_per_dispatch: 2,
    }
}

/// The dispatch policies the grid covers.
pub fn policies() -> [DispatchPolicy; 2] {
    [DispatchPolicy::Static, eager_load_aware()]
}

/// How client indices map to wire-level `peer_id`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerMap {
    /// `peer = client` (peers spread across RX shards as `client mod K`).
    Identity,
    /// `peer = client * stride`. With a stride divisible by every RX
    /// shard count in the grid (e.g. 4), **all** peers collide on RX
    /// shard 0 — the adversarial placement where sharding buys nothing
    /// but must still be correct.
    Stride(u64),
}

impl PeerMap {
    pub fn peer(self, client: usize) -> u64 {
        match self {
            PeerMap::Identity => client as u64,
            PeerMap::Stride(s) => client as u64 * s,
        }
    }
}

/// One step of a schedule.
#[derive(Debug, Clone)]
pub enum Step {
    /// `client` seals `n_packets` payloads as one `DataBatch` record.
    Batch { client: usize, n_packets: usize },
    /// `client` seals one `Data` record.
    Single { client: usize },
    /// `client` sends its config-version ping.
    Ping { client: usize },
    /// Re-queue the datagrams produced by the previous datagram-producing
    /// step (replay attack; after a [`Step::Disconnect`] this is the
    /// *failed replayed Disconnect* — the session is gone, so the verdict
    /// fails and the fresh reassembler must NOT be torn down).
    Replay,
    /// A crafted single-datagram `Disconnect` record for `client`'s
    /// session.
    Disconnect { client: usize },
    /// A crafted `Data` record for `client`'s session, split into partial
    /// datagrams at the given byte offsets of the record body (0 < split
    /// < body len; offsets may fall inside the record header). The
    /// fragments are emitted in order, so a [`Step::Flush`] between other
    /// steps lets a partial record straddle dispatch boundaries.
    SplitRecord {
        client: usize,
        payload_len: usize,
        splits: Vec<usize>,
    },
    /// Emit only fragments `lo..hi` of a crafted split record; the other
    /// fragments come from a sibling part-step carrying the same `tag`
    /// (and identical `payload_len`/`splits`). This is how a partial
    /// record **straddles** `Flush`/dispatch boundaries: the head lands
    /// in one `receive_datagrams` batch, the tail in a later one, with
    /// other peers' traffic in between.
    SplitRecordPart {
        client: usize,
        payload_len: usize,
        splits: Vec<usize>,
        tag: u32,
        lo: usize,
        hi: usize,
    },
    /// Re-home `client`'s peer onto RX shard / poll group `to` at this
    /// exact schedule position, via the manual control-plane hook
    /// ([`ShardedScenario::remap_peer`]: reassembly state moves first —
    /// quiesced, in-flight partial records drained and reinstalled —
    /// then the socket registration follows). `to` is clamped onto the
    /// run's RX shard count so one schedule drives every grid point. A
    /// no-op for the single-threaded reference and the call-driven
    /// sharded runs — the parity claim is precisely that re-homing
    /// never changes outcomes, only where reassembly happens.
    Remap { client: usize, to: usize },
    /// Resize the sharded server's structure at this exact schedule
    /// position — RX framing shards to `rx` and worker shards to
    /// `workers` — via the manual elasticity hooks
    /// ([`ShardedScenario::resize_rx_shards`] /
    /// [`ShardedScenario::resize_workers`]: every peer's reassembly
    /// state rehashes to its home under the new modulus, quiesced and
    /// drained; retiring workers drain their sessions to survivors).
    /// Both counts are clamped to `1..=8`. Like [`Step::Remap`], buffered
    /// datagrams are deliberately NOT flushed first — they arrive after
    /// the rehash, racing buffered traffic against the resize. A no-op
    /// for the single-threaded reference — the parity claim is precisely
    /// that capacity changes never change outcomes.
    Resize { rx: usize, workers: usize },
    /// Cut a `receive_datagrams` batch boundary here (no-op for the
    /// single-threaded reference, which always goes datagram-at-a-time).
    Flush,
}

/// A named, reproducible interleaving class.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub name: &'static str,
    pub n_clients: usize,
    pub seed: u64,
    pub peers: PeerMap,
    /// `(rx_shard, micros)` stalls installed before the sharded run;
    /// entries whose shard index exceeds the run's RX count are skipped.
    pub stalls: Vec<(usize, u64)>,
    pub steps: Vec<Step>,
}

impl Schedule {
    pub fn new(name: &'static str, n_clients: usize, seed: u64) -> Schedule {
        Schedule {
            name,
            n_clients,
            seed,
            peers: PeerMap::Identity,
            stalls: Vec::new(),
            steps: Vec::new(),
        }
    }

    pub fn peers(mut self, peers: PeerMap) -> Schedule {
        self.peers = peers;
        self
    }

    pub fn stall(mut self, shard: usize, micros: u64) -> Schedule {
        self.stalls.push((shard, micros));
        self
    }

    pub fn step(mut self, step: Step) -> Schedule {
        self.steps.push(step);
        self
    }
}

/// The view of a delivery both servers must agree on.
#[derive(Debug, PartialEq)]
pub enum Out {
    Pending,
    Packets(Vec<Vec<u8>>),
    Ping(u64),
    Disconnected(u64),
    Rejected(EndBoxError),
}

pub fn simplify(result: Result<Delivery, EndBoxError>) -> Out {
    match result {
        Ok(Delivery::Pending) => Out::Pending,
        Ok(Delivery::Packet { packet, .. }) => Out::Packets(vec![packet.bytes().to_vec()]),
        Ok(Delivery::PacketBatch { packets, .. }) => {
            Out::Packets(packets.iter().map(|p| p.bytes().to_vec()).collect())
        }
        Ok(Delivery::Ping { message, .. }) => Out::Ping(message.config_version),
        Ok(Delivery::Disconnected { session_id }) => Out::Disconnected(session_id),
        Ok(other) => panic!("unexpected delivery in parity run: {other:?}"),
        Err(e) => Out::Rejected(e),
    }
}

/// Splits raw record bytes into fragment datagrams at the given offsets,
/// writing the fragment headers by hand — so a split may fall anywhere,
/// including inside the record header or 1 byte in. `id` must be unique
/// per (peer, in-flight record); crafted ids live far above the clients'
/// own fragmenter sequence.
pub fn split_raw(record_bytes: &[u8], splits: &[usize], id: u32) -> Vec<Vec<u8>> {
    let mut cuts: Vec<usize> = splits
        .iter()
        .copied()
        .filter(|&s| s > 0 && s < record_bytes.len())
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut bounds = vec![0usize];
    bounds.extend(cuts);
    bounds.push(record_bytes.len());
    let total = (bounds.len() - 1) as u16;
    (0..total as usize)
        .map(|i| {
            let mut w = Writer::new();
            w.u32(id)
                .u16(i as u16)
                .u16(total)
                .raw(&record_bytes[bounds[i]..bounds[i + 1]]);
            w.finish()
        })
        .collect()
}

/// Frag-id namespace for crafted records (clients' own fragmenters count
/// up from 0; crafted records must not collide with their in-flight ids).
const CRAFT_ID_BASE: u32 = 0xC0DE_0000;
/// Separate namespace for [`Step::SplitRecordPart`] tags (stable across
/// the sibling part-steps of one record).
const CRAFT_PART_BASE: u32 = 0xD0DE_0000;

/// Seals one step into wire datagrams using the scenario's own clients.
/// Deterministic: scenarios built from the same seed hold identical key
/// material, so the single and sharded runs see identical bytes.
#[allow(clippy::too_many_arguments)]
fn seal_step(
    clients: &mut [EndBoxClient],
    session_ids: &[u64],
    peers: PeerMap,
    step: &Step,
    round: usize,
    prev: &[(u64, Vec<u8>)],
    craft_seq: &mut u32,
) -> Vec<(u64, Vec<u8>)> {
    let mk_packet = |client: usize, i: usize| {
        let payload = format!(
            "sched round {round} client {client} packet {i} {}",
            "y".repeat(round % 29)
        );
        Packet::tcp(
            Scenario::client_addr(client),
            Scenario::network_addr(),
            41_000 + client as u16,
            5_001,
            i as u32,
            payload.as_bytes(),
        )
    };
    match step {
        Step::Batch { client, n_packets } => {
            let packets: Vec<Packet> = (0..*n_packets).map(|i| mk_packet(*client, i)).collect();
            clients[*client]
                .send_batch(packets)
                .unwrap()
                .into_iter()
                .map(|d| (peers.peer(*client), d))
                .collect()
        }
        Step::Single { client } => clients[*client]
            .send_packet(mk_packet(*client, 0))
            .unwrap()
            .into_iter()
            .map(|d| (peers.peer(*client), d))
            .collect(),
        Step::Ping { client } => clients[*client]
            .build_ping()
            .unwrap()
            .into_iter()
            .map(|d| (peers.peer(*client), d))
            .collect(),
        Step::Replay => prev.to_vec(),
        Step::Disconnect { client } => {
            *craft_seq += 1;
            let record = Record {
                opcode: Opcode::Disconnect,
                session_id: session_ids[*client],
                packet_id: 0,
                payload: vec![],
            };
            split_raw(&record.to_bytes(), &[], CRAFT_ID_BASE + *craft_seq)
                .into_iter()
                .map(|d| (peers.peer(*client), d))
                .collect()
        }
        Step::SplitRecord {
            client,
            payload_len,
            splits,
        } => {
            *craft_seq += 1;
            let record = Record {
                opcode: Opcode::Data,
                session_id: session_ids[*client],
                packet_id: 1 + *craft_seq as u64,
                payload: vec![0xab; *payload_len],
            };
            split_raw(&record.to_bytes(), splits, CRAFT_ID_BASE + *craft_seq)
                .into_iter()
                .map(|d| (peers.peer(*client), d))
                .collect()
        }
        Step::SplitRecordPart {
            client,
            payload_len,
            splits,
            tag,
            lo,
            hi,
        } => {
            let record = Record {
                opcode: Opcode::Data,
                session_id: session_ids[*client],
                packet_id: 0x7000 + *tag as u64,
                payload: vec![0xcd; *payload_len],
            };
            split_raw(&record.to_bytes(), splits, CRAFT_PART_BASE + *tag)
                .drain(..)
                .skip(*lo)
                .take(hi.saturating_sub(*lo))
                .map(|d| (peers.peer(*client), d))
                .collect()
        }
        Step::Flush | Step::Remap { .. } | Step::Resize { .. } => Vec::new(),
    }
}

/// Replays the schedule through the single-threaded reference server,
/// one datagram at a time.
pub fn run_single(schedule: &Schedule) -> Vec<Out> {
    let mut scenario = Scenario::enterprise(schedule.n_clients, UseCase::Nop)
        .seed(schedule.seed)
        .build()
        .unwrap();
    let session_ids: Vec<u64> = (0..schedule.n_clients)
        .map(|i| scenario.session_id(i))
        .collect();
    let mut outs = Vec::new();
    let mut prev: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut craft_seq = 0u32;
    for (round, step) in schedule.steps.iter().enumerate() {
        let datagrams = seal_step(
            &mut scenario.clients,
            &session_ids,
            schedule.peers,
            step,
            round,
            &prev,
            &mut craft_seq,
        );
        for (peer, d) in &datagrams {
            outs.push(simplify(scenario.server.receive_datagram(*peer, d)));
        }
        if !datagrams.is_empty() {
            prev = datagrams;
        }
    }
    outs
}

/// Replays the schedule through a sharded scenario: datagrams accumulate
/// until a [`Step::Flush`] (or the end), then go through the server as
/// one pipelined `receive_datagrams` dispatch.
pub fn run_sharded(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
) -> Vec<Out> {
    run_sharded_elastic(schedule, rx_shards, workers, policy).0
}

/// Like [`run_sharded`], but also returns the server's [`ResizeStats`]
/// after the replay, so property tests can reconcile the resize counters
/// against the schedule that drove them (e.g. grows + shrinks never
/// exceed the number of [`Step::Resize`] steps, and a schedule without
/// resizes leaves the stats at zero).
///
/// [`ResizeStats`]: endbox::server::ResizeStats
pub fn run_sharded_elastic(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
) -> (Vec<Out>, endbox::server::ResizeStats) {
    let mut scenario: ShardedScenario = Scenario::enterprise(schedule.n_clients, UseCase::Nop)
        .seed(schedule.seed)
        .dispatch(policy)
        .rx_shards(rx_shards)
        .build_sharded(workers)
        .unwrap();
    for &(shard, micros) in &schedule.stalls {
        if shard < rx_shards {
            scenario.server.set_rx_stall_micros(shard, micros);
        }
    }
    let session_ids: Vec<u64> = (0..schedule.n_clients)
        .map(|i| scenario.session_id(i))
        .collect();
    let mut outs = Vec::new();
    let mut prev: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut segment: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut craft_seq = 0u32;
    for (round, step) in schedule.steps.iter().enumerate() {
        if matches!(step, Step::Flush) {
            outs.extend(
                scenario
                    .server
                    .receive_datagrams(std::mem::take(&mut segment))
                    .into_iter()
                    .map(simplify),
            );
            continue;
        }
        if let Step::Resize { rx, workers } = step {
            // Between receive batches by construction (the segment has
            // not been dispatched yet), so the resize's quiescence
            // requirement holds; the buffered segment then rides through
            // the *resized* server.
            scenario.resize_rx_shards((*rx).clamp(1, 8));
            scenario.resize_workers((*workers).clamp(1, 8));
            continue;
        }
        let datagrams = seal_step(
            &mut scenario.clients,
            &session_ids,
            schedule.peers,
            step,
            round,
            &prev,
            &mut craft_seq,
        );
        segment.extend(datagrams.iter().cloned());
        if !datagrams.is_empty() {
            prev = datagrams;
        }
    }
    outs.extend(
        scenario
            .server
            .receive_datagrams(segment)
            .into_iter()
            .map(simplify),
    );
    let stats = scenario.resize_stats();
    (outs, stats)
}

/// Replays the schedule through an **event-driven** sharded scenario
/// ([`ScenarioBuilder::async_ingress`]): datagrams accumulate until a
/// [`Step::Flush`] (or the end), then ride the virtual wire into the
/// per-peer server sockets — one `send` per datagram, in input order, so
/// the wire stamps reproduce the exact interleaving — and one
/// run-until-idle event loop drains them through the pipelined dispatch.
///
/// With the default (generous) shard budget everything drains in one
/// poll round per flush segment, so the event loop re-merges the drained
/// datagrams into exact wire order and the flat output sequence is
/// comparable 1:1 with the single-threaded reference.
pub fn run_async(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        Some(policy),
        None,
        TransportKind::Virtual,
    )
}

/// [`run_async`] with the whole **self-tuning control plane** live
/// ([`ScenarioBuilder::adaptive_control`]): closed-loop per-shard
/// budgets with per-socket token buckets, the autonomous hot-peer remap
/// law, [`DispatchPolicy::Adaptive`] rate-derived migration and
/// idle-worker stealing. There is no policy parameter — the controller
/// owns the policy; that is the configuration under test. [`Step::Remap`]
/// steps additionally fire the manual remap hook at their exact schedule
/// position, racing re-homes against whatever the schedule interleaves
/// them with.
///
/// [`ScenarioBuilder::adaptive_control`]: endbox::scenario::ScenarioBuilder::adaptive_control
pub fn run_async_adaptive(schedule: &Schedule, rx_shards: usize, workers: usize) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        None,
        None,
        TransportKind::Virtual,
    )
}

/// [`run_async_adaptive`] with an explicit ingress `recv_many` bulk
/// size, so the controller-on grid also covers the bulk axis: the
/// closed-loop budgets must not depend on how many datagrams each
/// transport call returns.
pub fn run_async_adaptive_bulk(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    recv_bulk: usize,
) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        None,
        Some(recv_bulk),
        TransportKind::Virtual,
    )
}

/// [`run_async`] with an explicit ingress `recv_many` bulk size (`1` =
/// the per-datagram transport shape; the default is the production bulk
/// of `DEFAULT_DRAIN_QUOTA`). Outcomes must not depend on the setting —
/// that is the invariant the bulk parity grid pins.
pub fn run_async_bulk(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
    recv_bulk: usize,
) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        Some(policy),
        Some(recv_bulk),
        TransportKind::Virtual,
    )
}

/// [`run_async_bulk`] over the **OS-socket** backend: the same schedule
/// rides real loopback UDP sockets (wire stamps survive the kernel
/// round-trip in the OS wire header), so the outcomes must still be
/// byte-identical to the single-threaded reference. Only call when
/// [`endbox_netsim::net::OsWire::available`].
pub fn run_async_os(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
    recv_bulk: usize,
) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        Some(policy),
        Some(recv_bulk),
        TransportKind::OsSocket,
    )
}

/// [`run_async_bulk`] over an arbitrary wire backend
/// ([`ScenarioBuilder::transport`]): the same schedule rides the chosen
/// transport — SQ/CQ descriptor rings for [`TransportKind::Ring`],
/// zero-copy frame descriptors for [`TransportKind::XdpFrame`] — and
/// the outcomes must still be byte-identical to the single-threaded
/// reference.
///
/// [`ScenarioBuilder::transport`]: endbox::scenario::ScenarioBuilder::transport
pub fn run_async_backend(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: DispatchPolicy,
    recv_bulk: usize,
    kind: TransportKind,
) -> Vec<Out> {
    run_async_configured(
        schedule,
        rx_shards,
        workers,
        Some(policy),
        Some(recv_bulk),
        kind,
    )
}

/// `policy: None` selects the self-tuning control plane
/// (`ScenarioBuilder::adaptive_control` — the controller owns the
/// dispatch policy); `Some(policy)` pins the classic static
/// configuration.
fn run_async_configured(
    schedule: &Schedule,
    rx_shards: usize,
    workers: usize,
    policy: Option<DispatchPolicy>,
    recv_bulk: Option<usize>,
    transport: TransportKind,
) -> Vec<Out> {
    let builder = Scenario::enterprise(schedule.n_clients, UseCase::Nop)
        .seed(schedule.seed)
        .rx_shards(rx_shards)
        .async_ingress(true)
        .transport(transport);
    let builder = match policy {
        Some(policy) => builder.dispatch(policy),
        None => builder.adaptive_control(true),
    };
    let mut scenario: ShardedScenario = builder.build_sharded(workers).unwrap();
    if let Some(bulk) = recv_bulk {
        scenario.set_recv_bulk(bulk);
    }
    for &(shard, micros) in &schedule.stalls {
        if shard < rx_shards {
            scenario.server.set_rx_stall_micros(shard, micros);
        }
    }
    let session_ids: Vec<u64> = (0..schedule.n_clients)
        .map(|i| scenario.session_id(i))
        .collect();
    let mut outs = Vec::new();
    let mut prev: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut segment: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut craft_seq = 0u32;
    let mut sent_total = 0usize;
    // Every datagram yields exactly one outcome, so after a flush the
    // loop pumps until the output count catches up with the send count —
    // immediate on the virtual wire, a bounded wait for the kernel to
    // deliver on the OS backend.
    let flush = |scenario: &mut ShardedScenario,
                 segment: &mut Vec<(u64, Vec<u8>)>,
                 outs: &mut Vec<Out>,
                 sent_total: &mut usize| {
        *sent_total += segment.len();
        for (peer, d) in segment.drain(..) {
            scenario.send_wire_datagrams(peer, vec![d]);
        }
        let mut spins = 0;
        loop {
            outs.extend(
                scenario
                    .pump_async()
                    .into_iter()
                    .map(|(_, result)| simplify(result)),
            );
            if outs.len() >= *sent_total {
                break;
            }
            spins += 1;
            assert!(
                spins < 100_000,
                "wire lost datagrams: {} of {}",
                outs.len(),
                *sent_total
            );
            std::thread::yield_now();
        }
    };
    for (round, step) in schedule.steps.iter().enumerate() {
        if matches!(step, Step::Flush) {
            flush(&mut scenario, &mut segment, &mut outs, &mut sent_total);
            continue;
        }
        if let Step::Remap { client, to } = step {
            // Socket registration is lazy on first send; an empty send
            // forces it so a schedule may re-home a peer that has not
            // produced traffic yet. Datagrams still buffered in
            // `segment` are deliberately NOT flushed first: they arrive
            // *after* the re-home, which is one of the races the remap
            // schedules pin.
            let peer = schedule.peers.peer(*client);
            scenario.send_wire_datagrams(peer, Vec::new());
            scenario.remap_peer(peer, to % rx_shards);
            continue;
        }
        if let Step::Resize { rx, workers } = step {
            // Like Remap: buffered datagrams are deliberately NOT
            // flushed first — they ride sockets registered before the
            // rehash and arrive after it, which is exactly the
            // resize-races-buffered-traffic class these schedules pin.
            scenario.resize_rx_shards((*rx).clamp(1, 8));
            scenario.resize_workers((*workers).clamp(1, 8));
            continue;
        }
        let datagrams = seal_step(
            &mut scenario.clients,
            &session_ids,
            schedule.peers,
            step,
            round,
            &prev,
            &mut craft_seq,
        );
        segment.extend(datagrams.iter().cloned());
        if !datagrams.is_empty() {
            prev = datagrams;
        }
    }
    flush(&mut scenario, &mut segment, &mut outs, &mut sent_total);
    outs
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the **event-driven** front-end for every
/// `(rx_shards, workers, policy)` in the grid.
pub fn assert_schedule_parity_async(schedule: &Schedule) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_async_on(schedule, &grid);
}

/// Like [`assert_schedule_parity_async`], but over a caller-chosen
/// sub-grid.
pub fn assert_schedule_parity_async_on(schedule: &Schedule, grid: &[(usize, usize)]) {
    let reference = run_single(schedule);
    for policy in policies() {
        for &(rx, workers) in grid {
            let got = run_async(schedule, rx, workers, policy);
            assert_eq!(
                got, reference,
                "schedule `{}` diverged from the single-threaded server through the \
                 event-driven front-end at rx_shards={rx} workers={workers} policy={policy:?}",
                schedule.name
            );
        }
    }
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the event-driven front-end with the **self-tuning control plane**
/// live, for every `(rx_shards, workers, bulk)` in the grid ×
/// [`BULK_GRID`] (no policy axis — the controller owns the policy).
/// Adaptive budgets, token buckets,
/// the autonomous remap law and idle-worker stealing are all armed
/// while the schedule replays; any [`Step::Remap`] steps fire the
/// manual re-home hook at their exact position. The claim under test:
/// every controller decision lands at a round boundary, so outcomes
/// never move — only scheduling does.
pub fn assert_schedule_parity_adaptive(schedule: &Schedule) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_adaptive_on(schedule, &grid);
}

/// Like [`assert_schedule_parity_adaptive`], but over a caller-chosen
/// sub-grid. Every `(rx, workers)` point additionally sweeps the
/// ingress `recv_many` bulk axis ([`BULK_GRID`]) — the budget
/// controller sits *above* the transport drain, so the bulk shape must
/// not leak into outcomes either.
pub fn assert_schedule_parity_adaptive_on(schedule: &Schedule, grid: &[(usize, usize)]) {
    let reference = run_single(schedule);
    for &(rx, workers) in grid {
        for bulk in BULK_GRID {
            let got = run_async_adaptive_bulk(schedule, rx, workers, bulk);
            assert_eq!(
                got, reference,
                "schedule `{}` diverged from the single-threaded server under the \
                 self-tuning control plane at rx_shards={rx} workers={workers} bulk={bulk}",
                schedule.name
            );
        }
    }
}

/// The dispatch-policy axis of the elastic resize grid: the two static
/// configurations plus the self-tuning controller (`None` — the
/// controller owns the policy, including the resize law's worker
/// placement).
pub fn elastic_policies() -> [Option<DispatchPolicy>; 3] {
    [Some(DispatchPolicy::Static), Some(eager_load_aware()), None]
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the resizing sharded server for every **starting**
/// `(rx_shards, workers)` in the full grid × {Static, LoadAware,
/// Adaptive}. Schedules are expected to carry [`Step::Resize`] steps —
/// the grid point is only the starting geometry; the schedule moves it.
/// Every point replays through both doorways: the call-driven
/// `receive_datagrams` path (static policies) and the event-driven
/// front-end (all three policies — there a resize additionally rebuilds
/// the poll groups around the live sockets).
pub fn assert_schedule_parity_elastic(schedule: &Schedule) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_elastic_on(schedule, &grid);
}

/// Like [`assert_schedule_parity_elastic`], but over a caller-chosen
/// sub-grid of starting `(rx_shards, workers)` points.
pub fn assert_schedule_parity_elastic_on(schedule: &Schedule, grid: &[(usize, usize)]) {
    let reference = run_single(schedule);
    for policy in elastic_policies() {
        for &(rx, workers) in grid {
            if let Some(policy) = policy {
                let got = run_sharded(schedule, rx, workers, policy);
                assert_eq!(
                    got, reference,
                    "schedule `{}` diverged from the single-threaded server across a \
                     call-driven resize at rx_shards={rx} workers={workers} policy={policy:?}",
                    schedule.name
                );
            }
            let got =
                run_async_configured(schedule, rx, workers, policy, None, TransportKind::Virtual);
            assert_eq!(
                got, reference,
                "schedule `{}` diverged from the single-threaded server across an \
                 event-driven resize at rx_shards={rx} workers={workers} policy={policy:?}",
                schedule.name
            );
        }
    }
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the sharded server for every `(rx_shards, workers, policy)` in
/// the grid.
pub fn assert_schedule_parity(schedule: &Schedule) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_on(schedule, &grid);
}

/// Like [`assert_schedule_parity`], but over a caller-chosen sub-grid
/// (proptest keeps case counts low; the named tests run the full grid).
pub fn assert_schedule_parity_on(schedule: &Schedule, grid: &[(usize, usize)]) {
    let reference = run_single(schedule);
    for policy in policies() {
        for &(rx, workers) in grid {
            let got = run_sharded(schedule, rx, workers, policy);
            assert_eq!(
                got, reference,
                "schedule `{}` diverged from the single-threaded server at \
                 rx_shards={rx} workers={workers} policy={policy:?}",
                schedule.name
            );
        }
    }
}

/// Ingress `recv_many` bulk sizes the bulk parity grid covers: the
/// per-datagram transport shape (1), a tiny bulk that forces call
/// boundaries mid-queue (2), and the production default (32).
pub const BULK_GRID: [usize; 3] = [1, 2, 32];

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the event-driven front-end draining through bulk `recv_many`
/// calls, for every `(rx_shards, workers, policy, bulk)` in the full
/// grid × [`BULK_GRID`].
pub fn assert_schedule_parity_bulk(schedule: &Schedule) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_bulk_on(schedule, &grid);
}

/// Like [`assert_schedule_parity_bulk`], but over a caller-chosen
/// sub-grid of `(rx_shards, workers)` points.
pub fn assert_schedule_parity_bulk_on(schedule: &Schedule, grid: &[(usize, usize)]) {
    let reference = run_single(schedule);
    for policy in policies() {
        for &(rx, workers) in grid {
            for bulk in BULK_GRID {
                let got = run_async_bulk(schedule, rx, workers, policy, bulk);
                assert_eq!(
                    got, reference,
                    "schedule `{}` diverged from the single-threaded server through \
                     bulk recv_many ingress at rx_shards={rx} workers={workers} \
                     policy={policy:?} bulk={bulk}",
                    schedule.name
                );
            }
        }
    }
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the **OS-socket** backend (real loopback UDP) over `grid`, at
/// both the per-datagram and the production bulk size. Skips (with a
/// note) when the sandbox forbids loopback sockets — set
/// `ENDBOX_REQUIRE_OS_SOCKET=1` to turn the skip into a failure.
pub fn assert_schedule_parity_os(schedule: &Schedule, grid: &[(usize, usize)]) {
    if !endbox_netsim::net::OsWire::available() {
        if std::env::var("ENDBOX_REQUIRE_OS_SOCKET").as_deref() == Ok("1") {
            panic!("ENDBOX_REQUIRE_OS_SOCKET=1 but loopback UDP is unavailable");
        }
        eprintln!(
            "skipping OS-socket parity for `{}`: loopback UDP unavailable",
            schedule.name
        );
        return;
    }
    let reference = run_single(schedule);
    for &(rx, workers) in grid {
        for bulk in [1usize, 32] {
            let got = run_async_os(schedule, rx, workers, DispatchPolicy::Static, bulk);
            assert_eq!(
                got, reference,
                "schedule `{}` diverged from the single-threaded server over the \
                 OS-socket backend at rx_shards={rx} workers={workers} bulk={bulk}",
                schedule.name
            );
        }
    }
}

/// Asserts byte-identical outcomes between the single-threaded reference
/// and the event-driven front-end over the given wire backend, for every
/// `(rx_shards, workers, policy, bulk)` in the full grid ×
/// [`BULK_GRID`] — the kernel-bypass mirror of
/// [`assert_schedule_parity_bulk`]. Unlike the OS backend, the ring and
/// frame backends are in-process and always available, so there is no
/// skip path.
pub fn assert_schedule_parity_backend(schedule: &Schedule, kind: TransportKind) {
    let grid: Vec<(usize, usize)> = RX_GRID
        .iter()
        .flat_map(|&rx| WORKER_GRID.iter().map(move |&w| (rx, w)))
        .collect();
    assert_schedule_parity_backend_on(schedule, &grid, kind);
}

/// Like [`assert_schedule_parity_backend`], but over a caller-chosen
/// sub-grid of `(rx_shards, workers)` points.
pub fn assert_schedule_parity_backend_on(
    schedule: &Schedule,
    grid: &[(usize, usize)],
    kind: TransportKind,
) {
    let reference = run_single(schedule);
    for policy in policies() {
        for &(rx, workers) in grid {
            for bulk in BULK_GRID {
                let got = run_async_backend(schedule, rx, workers, policy, bulk, kind);
                assert_eq!(
                    got,
                    reference,
                    "schedule `{}` diverged from the single-threaded server over the \
                     {} backend at rx_shards={rx} workers={workers} policy={policy:?} \
                     bulk={bulk}",
                    schedule.name,
                    kind.name()
                );
            }
        }
    }
}
