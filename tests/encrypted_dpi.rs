//! Integration: encrypted-traffic analysis (§III-D) across the TLS shim,
//! the enclave key registry, the `TLSDecrypt` element and the IDS.

use endbox::scenario::Scenario;
use endbox::tls_shim::{TlsClientSession, TlsServer};
use endbox::use_cases::UseCase;
use rand::SeedableRng;
use std::net::Ipv4Addr;

const DPI_CONFIG: &str = "FromDevice(tun0) \
     -> tls :: TLSDecrypt \
     -> ids :: IDSMatcher(COMMUNITY 377) \
     -> ToDevice(tun0);\n\
     ids[1] -> Discard;";

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xd81)
}

fn dpi_scenario(seed: u64) -> Scenario {
    Scenario::enterprise(1, UseCase::Nop)
        .custom_client_click(DPI_CONFIG)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn forwarded_key_enables_plaintext_inspection() {
    let mut r = rng();
    let mut s = dpi_scenario(1);
    let server = TlsServer::new(Ipv4Addr::new(203, 0, 113, 10), 443, &mut r);
    let mut session = TlsClientSession::connect(Scenario::client_addr(0), 40_443, &server, &mut r);
    session.forward_key_to_endbox(&mut s.clients[0]).unwrap();

    // Benign encrypted request passes and is counted as decrypted.
    let req = session.encrypt_request(b"GET /public HTTP/1.1");
    let datagrams = s.clients[0].send_packet(req).unwrap();
    assert!(!datagrams.is_empty());
    assert_eq!(
        s.clients[0].click_handler("tls", "decrypted").as_deref(),
        Some("1")
    );

    // Malicious content hidden in TLS is caught (rule 11: drop on 443).
    let mut evil = b"POST /x ".to_vec();
    evil.extend_from_slice(&endbox_snort::community::triggering_payload(11));
    let pkt = session.encrypt_request(&evil);
    let datagrams = s.clients[0].send_packet(pkt).unwrap();
    assert!(datagrams.is_empty(), "decrypted malware must be dropped");
    assert_eq!(
        s.clients[0].click_handler("ids", "alerts").as_deref(),
        Some("1")
    );
}

#[test]
fn without_key_ciphertext_is_opaque() {
    let mut r = rng();
    let mut s = dpi_scenario(2);
    let server = TlsServer::new(Ipv4Addr::new(203, 0, 113, 11), 443, &mut r);
    let mut session = TlsClientSession::connect(Scenario::client_addr(0), 40_500, &server, &mut r);
    // Key NOT forwarded.
    let mut evil = b"POST /x ".to_vec();
    evil.extend_from_slice(&endbox_snort::community::triggering_payload(11));
    let pkt = session.encrypt_request(&evil);
    let datagrams = s.clients[0].send_packet(pkt).unwrap();
    assert!(
        !datagrams.is_empty(),
        "without the key the IDS sees only ciphertext"
    );
    assert_eq!(
        s.clients[0].click_handler("tls", "misses").as_deref(),
        Some("1")
    );
}

#[test]
fn wire_format_never_carries_plaintext() {
    let mut r = rng();
    let mut s = dpi_scenario(3);
    let server = TlsServer::new(Ipv4Addr::new(203, 0, 113, 12), 443, &mut r);
    let mut session = TlsClientSession::connect(Scenario::client_addr(0), 40_600, &server, &mut r);
    session.forward_key_to_endbox(&mut s.clients[0]).unwrap();

    let secret = b"super secret credit card 4111111111111111";
    let pkt = session.encrypt_request(secret);
    // On the wire (before the tunnel): ciphertext.
    assert!(!pkt.bytes().windows(10).any(|w| w == &secret[..10]));
    // Inside the tunnel: sealed again with the VPN keys; the datagrams
    // must not leak the TLS plaintext either (the enclave decrypts only
    // for inspection; the packet sent onwards is re-protected).
    let datagrams = s.clients[0].send_packet(pkt).unwrap();
    for d in &datagrams {
        assert!(!d.windows(10).any(|w| w == &secret[..10]));
    }
}

#[test]
fn multiple_sessions_use_distinct_keys() {
    let mut r = rng();
    let mut s = dpi_scenario(4);
    let server_a = TlsServer::new(Ipv4Addr::new(203, 0, 113, 13), 443, &mut r);
    let server_b = TlsServer::new(Ipv4Addr::new(203, 0, 113, 14), 443, &mut r);
    let mut sess_a = TlsClientSession::connect(Scenario::client_addr(0), 41_000, &server_a, &mut r);
    let mut sess_b = TlsClientSession::connect(Scenario::client_addr(0), 41_001, &server_b, &mut r);
    assert_ne!(sess_a.session_key(), sess_b.session_key());
    sess_a.forward_key_to_endbox(&mut s.clients[0]).unwrap();
    sess_b.forward_key_to_endbox(&mut s.clients[0]).unwrap();
    // Both sessions decrypt correctly in the enclave.
    for sess in [&mut sess_a, &mut sess_b] {
        let pkt = sess.encrypt_request(b"GET / HTTP/1.1");
        let datagrams = s.clients[0].send_packet(pkt).unwrap();
        assert!(!datagrams.is_empty());
    }
    assert_eq!(
        s.clients[0].click_handler("tls", "decrypted").as_deref(),
        Some("2")
    );
}
