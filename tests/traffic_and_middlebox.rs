//! Integration: end-to-end traffic through every middlebox function,
//! fragmentation of jumbo packets, client-to-client forwarding, and
//! failure injection on the wire.

use endbox::error::EndBoxError;
use endbox::scenario::Scenario;
use endbox::use_cases::UseCase;
use endbox_netsim::traffic::benign_payload;
use endbox_netsim::Packet;
use rand::SeedableRng;

#[test]
fn every_use_case_forwards_benign_traffic() {
    for uc in UseCase::all() {
        let mut s = Scenario::enterprise(1, uc).build().unwrap();
        let out = s.send_from_client(0, b"benign application data").unwrap();
        assert_eq!(out.app_payload(), b"benign application data", "{uc}");
    }
}

#[test]
fn payload_integrity_across_the_tunnel() {
    let mut s = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for len in [0usize, 1, 100, 1400, 4096] {
        let payload = benign_payload(len, &mut rng);
        let out = s.send_from_client(0, &payload).unwrap();
        assert_eq!(out.app_payload(), &payload[..], "len {len}");
    }
}

#[test]
fn jumbo_packets_fragment_and_reassemble() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let payload = benign_payload(30_000, &mut rng);
    let pkt = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        &payload,
    );
    let datagrams = s.clients[0].send_packet(pkt).unwrap();
    assert!(
        datagrams.len() >= 4,
        "30 KB spans multiple datagrams: {}",
        datagrams.len()
    );
    let mut delivered = None;
    for d in &datagrams {
        if let endbox::server::Delivery::Packet { packet, .. } =
            s.server.receive_datagram(0, d).unwrap()
        {
            delivered = Some(packet);
        }
    }
    assert_eq!(delivered.unwrap().app_payload(), &payload[..]);
}

#[test]
fn reordered_fragments_still_reassemble() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let payload = benign_payload(20_000, &mut rng);
    let pkt = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        &payload,
    );
    let mut datagrams = s.clients[0].send_packet(pkt).unwrap();
    datagrams.reverse();
    let mut delivered = None;
    for d in &datagrams {
        if let endbox::server::Delivery::Packet { packet, .. } =
            s.server.receive_datagram(0, d).unwrap()
        {
            delivered = Some(packet);
        }
    }
    assert_eq!(delivered.unwrap().app_payload(), &payload[..]);
}

#[test]
fn corrupted_datagram_is_rejected_not_delivered() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    let datagrams = s.clients[0]
        .send_packet(Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            0,
            b"will be corrupted",
        ))
        .unwrap();
    let mut corrupted = datagrams[0].clone();
    let n = corrupted.len();
    corrupted[n - 3] ^= 0xff; // flip ciphertext bits
    let err = s.server.receive_datagram(0, &corrupted).unwrap_err();
    assert!(matches!(err, EndBoxError::Vpn(_)), "{err:?}");
}

#[test]
fn idps_drops_at_source_and_counts() {
    let mut s = Scenario::enterprise(1, UseCase::Idps).build().unwrap();
    // Rule 0: drop rule, content EB-MAL-0000, tcp port 80.
    let evil = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        80,
        0,
        &endbox_snort::community::triggering_payload(0),
    );
    assert_eq!(
        s.send_packet_from_client(0, evil).unwrap_err(),
        EndBoxError::PacketDropped
    );
    let (_, dropped, _) = s.clients[0].enclave_app().packet_counters();
    assert_eq!(dropped, 1);
    // Nothing reached the server.
    let (delivered, _, _) = s.server.counters();
    assert_eq!(delivered, 0);
}

#[test]
fn client_to_client_roundtrip_and_flagging() {
    let mut s = Scenario::enterprise(3, UseCase::Idps)
        .c2c_flagging(true)
        .build()
        .unwrap();
    let msg = s
        .client_to_client(0, 2, b"direct message")
        .unwrap()
        .unwrap();
    assert_eq!(msg.app_payload(), b"direct message");
    // Receiver skipped Click thanks to the flag.
    let (_, _, bypassed) = s.clients[2].enclave_app().packet_counters();
    assert_eq!(bypassed, 1);
    // Flag survives the tunnel (integrity-protected, cannot be forged).
    assert_eq!(msg.tos(), endbox_netsim::packet::QOS_ENDBOX_PROCESSED);
}

#[test]
fn without_flagging_receiver_processes_again() {
    let mut s = Scenario::enterprise(2, UseCase::Idps)
        .c2c_flagging(false)
        .build()
        .unwrap();
    s.client_to_client(0, 1, b"processed twice")
        .unwrap()
        .unwrap();
    let (_, _, bypassed) = s.clients[1].enclave_app().packet_counters();
    assert_eq!(bypassed, 0);
}

#[test]
fn many_packets_sustain_replay_window() {
    let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
    for i in 0..500u32 {
        let payload = format!("packet number {i}");
        s.send_from_client(0, payload.as_bytes()).unwrap();
    }
    assert_eq!(s.clients[0].stats.sent, 500);
    let (delivered, _, rejected) = s.server.counters();
    assert_eq!(delivered, 500);
    assert_eq!(rejected, 0);
}

#[test]
fn isp_integrity_only_traffic_is_authenticated() {
    let mut s = Scenario::isp(1, UseCase::Nop).build().unwrap();
    // Packets flow...
    s.send_from_client(0, b"isp mode payload").unwrap();
    // ...but tampering is still caught (integrity protection).
    let datagrams = s.clients[0]
        .send_packet(Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            0,
            b"tamper with me",
        ))
        .unwrap();
    let mut tampered = datagrams[0].clone();
    let n = tampered.len();
    tampered[n - 40] ^= 1;
    assert!(s.server.receive_datagram(0, &tampered).is_err());
}
