//! Batch/single parity: pushing N packets as one `PacketBatch` must yield
//! byte-identical emitted packets and identical verdicts to N single
//! `Router::process` calls — across the quickstart (firewall), IDS and
//! IPFilter configurations, for arbitrary traffic (property-tested), and
//! regardless of whether the packets are pool-backed.

use endbox::use_cases::UseCase;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::packet::Verdict;
use endbox_netsim::{BufferPool, Packet, PacketBatch};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// The three configurations the parity guarantee is specified over:
/// the quickstart example's firewall, the IDPS chain, and a plain
/// IPFilter with both ports wired up.
fn parity_configs() -> Vec<(&'static str, String)> {
    vec![
        ("quickstart-firewall", UseCase::Firewall.click_config()),
        ("idps", UseCase::Idps.click_config()),
        (
            "ipfilter",
            "FromDevice(tun0) -> f :: IPFilter(deny dst port 23, deny src port 7, allow all) \
             -> ToDevice(tun0); f[1] -> Discard;"
                .to_string(),
        ),
    ]
}

/// Runs `packets` through `config` both ways and asserts byte/verdict
/// equality plus identical element state and cycle totals.
fn assert_parity(name: &str, config: &str, packets: Vec<Packet>) {
    let env_single = ElementEnv::default();
    let meter_single = env_single.meter.clone();
    let mut router_single = Router::from_config(config, env_single).unwrap();

    let env_batch = ElementEnv::default();
    let meter_batch = env_batch.meter.clone();
    let mut router_batch = Router::from_config(config, env_batch).unwrap();

    meter_single.take();
    let mut single_emitted: Vec<Vec<u8>> = Vec::new();
    let mut single_verdicts = Vec::new();
    let mut single_dropped = 0u64;
    for pkt in packets.iter().cloned() {
        let out = router_single.process(pkt);
        single_verdicts.push(if out.accepted {
            Verdict::Accept
        } else {
            Verdict::Drop
        });
        single_dropped += out.dropped;
        single_emitted.extend(out.emitted.iter().map(|p| p.bytes().to_vec()));
    }
    let single_cycles = meter_single.take();

    meter_batch.take();
    let out = router_batch.process_batch(PacketBatch::from(packets));
    let batch_cycles = meter_batch.take();

    let batch_emitted: Vec<Vec<u8>> = out.emitted.iter().map(|p| p.bytes().to_vec()).collect();
    assert_eq!(
        batch_emitted, single_emitted,
        "[{name}] emitted packet bytes must match"
    );
    assert_eq!(
        out.verdicts, single_verdicts,
        "[{name}] per-packet verdicts must match"
    );
    assert_eq!(
        out.dropped, single_dropped,
        "[{name}] unconnected-port drops must match"
    );
    assert_eq!(
        batch_cycles, single_cycles,
        "[{name}] total cycle charges must match"
    );

    // Handler-visible element state evolved identically.
    for element in router_single.element_names().to_vec() {
        for handler in [
            "count",
            "allowed",
            "denied",
            "alerts",
            "drops",
            "scanned_bytes",
        ] {
            assert_eq!(
                router_single.read_handler(&element, handler),
                router_batch.read_handler(&element, handler),
                "[{name}] handler {element}.{handler} must match"
            );
        }
    }
}

fn mixed_traffic(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let src = Ipv4Addr::new(10, 0, 0, 1 + (i % 5) as u8);
            let dst = Ipv4Addr::new(10, 0, 1, 1);
            match i % 4 {
                // Telnet traffic the IPFilter config denies.
                0 => Packet::tcp(src, dst, 40_000 + i as u16, 23, i as u32, b"telnet-ish"),
                // The synthetic IDS rule set's drop content on port 80.
                1 => Packet::tcp(src, dst, 40_000, 80, i as u32, b"xx EB-MAL-0000 xx"),
                2 => Packet::udp(src, dst, 7, 53, b"dns query"),
                _ => Packet::tcp(src, dst, 40_000, 443, i as u32, b"benign payload bytes"),
            }
        })
        .collect()
}

#[test]
fn batch_parity_on_mixed_traffic() {
    for (name, config) in parity_configs() {
        assert_parity(name, &config, mixed_traffic(24));
    }
}

#[test]
fn batch_parity_with_pooled_packets() {
    let pool = BufferPool::new();
    for (name, config) in parity_configs() {
        let packets: Vec<Packet> = (0..16)
            .map(|i| {
                Packet::tcp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 2),
                    Ipv4Addr::new(10, 0, 1, 1),
                    41_000,
                    if i % 2 == 0 { 80 } else { 23 },
                    i as u32,
                    b"pooled parity packet",
                )
            })
            .collect();
        assert_parity(name, &config, packets);
    }
    let stats = pool.stats();
    assert!(
        stats.reused > 0,
        "steady-state rounds must recycle buffers: {stats:?}"
    );
}

#[test]
fn pool_recycling_reaches_steady_state_through_the_router() {
    let pool = BufferPool::new();
    let mut router =
        Router::from_config(&UseCase::Firewall.click_config(), ElementEnv::default()).unwrap();
    for _round in 0..10 {
        let batch: PacketBatch = (0..8)
            .map(|i| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 3),
                    Ipv4Addr::new(10, 0, 1, 1),
                    5_000,
                    6_000 + i as u16,
                    b"recycled",
                )
            })
            .collect();
        let out = router.process_batch(batch);
        assert_eq!(out.accepted, 8);
        drop(out);
    }
    let stats = pool.stats();
    assert_eq!(stats.fresh_allocs, 8, "only the first round allocates");
    assert_eq!(stats.reused, 72, "remaining nine rounds reuse every buffer");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary traffic shapes: ports and payloads randomised, batch
    /// size 1..32, across all three parity configurations.
    #[test]
    fn batch_parity_holds_for_arbitrary_traffic(
        specs in prop::collection::vec(
            (any::<u16>(), any::<u16>(), prop::collection::vec(any::<u8>(), 0..200)),
            1..32,
        ),
        config_idx in 0usize..3,
    ) {
        let (name, config) = parity_configs().swap_remove(config_idx);
        let packets: Vec<Packet> = specs
            .iter()
            .map(|(sport, dport, payload)| {
                Packet::tcp(
                    Ipv4Addr::new(10, 0, 0, 9),
                    Ipv4Addr::new(10, 0, 1, 1),
                    *sport,
                    *dport,
                    0,
                    payload,
                )
            })
            .collect();
        assert_parity(name, &config, packets);
    }
}
