//! Batch/single parity: pushing N packets as one `PacketBatch` must yield
//! byte-identical emitted packets and identical verdicts to N single
//! `Router::process` calls — across the quickstart (firewall), IDS,
//! IPFilter and stateful-NF configurations, for arbitrary traffic
//! (property-tested), regardless of whether the packets are pool-backed,
//! and — since the order-preserving batched scheduler — for arbitrary
//! random fan-out/re-merge graphs mixing stateless and order-sensitive
//! stateful elements (`random_fanout_graphs_have_exact_parity` below).

use endbox::use_cases::UseCase;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::packet::Verdict;
use endbox_netsim::{BufferPool, Packet, PacketBatch};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// The configurations the parity guarantee is specified over: the
/// quickstart example's firewall, the IDPS chain, a plain IPFilter with
/// both ports wired up, and the stateful NF catalogue chain
/// (connection tracker → NAT → token bucket).
fn parity_configs() -> Vec<(&'static str, String)> {
    vec![
        ("quickstart-firewall", UseCase::Firewall.click_config()),
        ("idps", UseCase::Idps.click_config()),
        (
            "ipfilter",
            "FromDevice(tun0) -> f :: IPFilter(deny dst port 23, deny src port 7, allow all) \
             -> ToDevice(tun0); f[1] -> Discard;"
                .to_string(),
        ),
        (
            "nf-chain",
            "FromDevice(tun0) -> ct :: ConnTracker(MAX 12) \
             -> nat :: IPRewriter(SRC 198.51.100.1, PORTS 6000 6009) \
             -> tb :: TokenBucket(RATE 200000, BURST 24) -> ToDevice(tun0); \
             ct[1] -> Discard; nat[1] -> Discard; tb[1] -> Discard;"
                .to_string(),
        ),
    ]
}

/// Handlers compared between the single-packet and batched routers —
/// the union of every element's observable state.
const PARITY_HANDLERS: &[&str] = &[
    "count",
    "allowed",
    "denied",
    "alerts",
    "drops",
    "scanned_bytes",
    "bad",
    "flows",
    "rewritten",
    "reversed",
    "passthrough",
    "exhausted",
    "conformed",
    "exceeded",
    "tokens",
    "new_flows",
    "established",
    "rejected",
];

/// Runs `packets` through `config` both ways and asserts byte/verdict
/// equality plus identical element state and cycle totals.
fn assert_parity(name: &str, config: &str, packets: Vec<Packet>) {
    let env_single = ElementEnv::default();
    let meter_single = env_single.meter.clone();
    let mut router_single = Router::from_config(config, env_single).unwrap();

    let env_batch = ElementEnv::default();
    let meter_batch = env_batch.meter.clone();
    let mut router_batch = Router::from_config(config, env_batch).unwrap();

    meter_single.take();
    let mut single_emitted: Vec<Vec<u8>> = Vec::new();
    let mut single_verdicts = Vec::new();
    let mut single_dropped = 0u64;
    for pkt in packets.iter().cloned() {
        let out = router_single.process(pkt);
        single_verdicts.push(if out.accepted {
            Verdict::Accept
        } else {
            Verdict::Drop
        });
        single_dropped += out.dropped;
        single_emitted.extend(out.emitted.iter().map(|p| p.bytes().to_vec()));
    }
    let single_cycles = meter_single.take();

    meter_batch.take();
    let out = router_batch.process_batch(PacketBatch::from(packets));
    let batch_cycles = meter_batch.take();

    let batch_emitted: Vec<Vec<u8>> = out.emitted.iter().map(|p| p.bytes().to_vec()).collect();
    assert_eq!(
        batch_emitted, single_emitted,
        "[{name}] emitted packet bytes must match"
    );
    assert_eq!(
        out.verdicts, single_verdicts,
        "[{name}] per-packet verdicts must match"
    );
    assert_eq!(
        out.dropped, single_dropped,
        "[{name}] unconnected-port drops must match"
    );
    assert_eq!(
        batch_cycles, single_cycles,
        "[{name}] total cycle charges must match"
    );

    // Handler-visible element state evolved identically.
    for element in router_single.element_names().to_vec() {
        for handler in PARITY_HANDLERS {
            assert_eq!(
                router_single.read_handler(&element, handler),
                router_batch.read_handler(&element, handler),
                "[{name}] handler {element}.{handler} must match"
            );
        }
    }
}

fn mixed_traffic(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let src = Ipv4Addr::new(10, 0, 0, 1 + (i % 5) as u8);
            let dst = Ipv4Addr::new(10, 0, 1, 1);
            match i % 4 {
                // Telnet traffic the IPFilter config denies.
                0 => Packet::tcp(src, dst, 40_000 + i as u16, 23, i as u32, b"telnet-ish"),
                // The synthetic IDS rule set's drop content on port 80.
                1 => Packet::tcp(src, dst, 40_000, 80, i as u32, b"xx EB-MAL-0000 xx"),
                2 => Packet::udp(src, dst, 7, 53, b"dns query"),
                _ => Packet::tcp(src, dst, 40_000, 443, i as u32, b"benign payload bytes"),
            }
        })
        .collect()
}

#[test]
fn batch_parity_on_mixed_traffic() {
    for (name, config) in parity_configs() {
        assert_parity(name, &config, mixed_traffic(24));
    }
}

#[test]
fn batch_parity_with_pooled_packets() {
    let pool = BufferPool::new();
    for (name, config) in parity_configs() {
        let packets: Vec<Packet> = (0..16)
            .map(|i| {
                Packet::tcp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 2),
                    Ipv4Addr::new(10, 0, 1, 1),
                    41_000,
                    if i % 2 == 0 { 80 } else { 23 },
                    i as u32,
                    b"pooled parity packet",
                )
            })
            .collect();
        assert_parity(name, &config, packets);
    }
    let stats = pool.stats();
    assert!(
        stats.reused > 0,
        "steady-state rounds must recycle buffers: {stats:?}"
    );
}

#[test]
fn pool_recycling_reaches_steady_state_through_the_router() {
    let pool = BufferPool::new();
    let mut router =
        Router::from_config(&UseCase::Firewall.click_config(), ElementEnv::default()).unwrap();
    for _round in 0..10 {
        let batch: PacketBatch = (0..8)
            .map(|i| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 3),
                    Ipv4Addr::new(10, 0, 1, 1),
                    5_000,
                    6_000 + i as u16,
                    b"recycled",
                )
            })
            .collect();
        let out = router.process_batch(batch);
        assert_eq!(out.accepted, 8);
        drop(out);
    }
    let stats = pool.stats();
    assert_eq!(stats.fresh_allocs, 8, "only the first round allocates");
    assert_eq!(stats.reused, 72, "remaining nine rounds reuse every buffer");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary traffic shapes: ports and payloads randomised, batch
    /// size 1..32, across all three parity configurations.
    #[test]
    fn batch_parity_holds_for_arbitrary_traffic(
        specs in prop::collection::vec(
            (any::<u16>(), any::<u16>(), prop::collection::vec(any::<u8>(), 0..200)),
            1..32,
        ),
        config_idx in 0usize..4,
    ) {
        let (name, config) = parity_configs().swap_remove(config_idx);
        let packets: Vec<Packet> = specs
            .iter()
            .map(|(sport, dport, payload)| {
                Packet::tcp(
                    Ipv4Addr::new(10, 0, 0, 9),
                    Ipv4Addr::new(10, 0, 1, 1),
                    *sport,
                    *dport,
                    0,
                    payload,
                )
            })
            .collect();
        assert_parity(name, &config, packets);
    }
}

#[test]
fn fan_out_remerge_into_stateful_elements_has_exact_parity() {
    // The re-merge shape the order-preserving scheduler exists for: two
    // Tee branches of different depth re-merging into one
    // RoundRobinSwitch, whose ports feed order-sensitive NFs.
    let config = "rr :: RoundRobinSwitch(2); \
                  FromDevice(t) -> tee :: Tee(2); \
                  tee[0] -> c :: Counter -> rr; \
                  tee[1] -> rr; \
                  rr[0] -> ct :: ConnTracker(MAX 4) -> ToDevice(t); \
                  rr[1] -> tb :: TokenBucket(RATE 1000, BURST 5) -> ToDevice(t); \
                  ct[1] -> Discard; tb[1] -> Discard;";
    assert_parity("tee-remerge-rr", config, mixed_traffic(17));
}

/// Element classes the random graph generator draws from. Entries are
/// `(declaration, n_outputs, is_tee)`.
const GRAPH_CLASSES: &[(&str, usize, bool)] = &[
    ("Counter", 1, false),
    ("Tee(2)", 2, true),
    ("RoundRobinSwitch(2)", 2, false),
    ("TokenBucket(RATE 1000, BURST 3)", 2, false),
    ("ConnTracker(MAX 3)", 2, false),
    ("IPRewriter(SRC 198.51.100.1, PORTS 7000 7004)", 2, false),
];

/// Builds a random acyclic fan-out/re-merge configuration from a byte
/// spec. Every edge goes from an earlier-created element to a
/// later-created one, so the graph is a DAG by construction; `Tee`
/// nesting is capped at depth 3. Roughly one in four steps re-merges an
/// open output into an existing downstream element instead of growing a
/// new branch, and half the leftover outputs stay unconnected
/// (exercising the drop path).
fn random_fanout_config(spec: &[u8]) -> String {
    struct Node {
        decl: &'static str,
        tee_depth: usize,
    }
    let mut nodes = vec![Node {
        decl: "FromDevice(t)",
        tee_depth: 0,
    }];
    // Open output stubs: (element index, output port).
    let mut stubs: std::collections::VecDeque<(usize, usize)> =
        std::collections::VecDeque::from([(0usize, 0usize)]);
    let mut conns: Vec<(usize, usize, usize)> = Vec::new();

    for &b in spec {
        let Some((from, port)) = stubs.pop_front() else {
            break;
        };
        let merge_candidates = nodes.len() - from - 1;
        if b % 4 == 3 && merge_candidates > 0 {
            // Re-merge into a strictly later-created element.
            let target = from + 1 + (b as usize / 4) % merge_candidates;
            conns.push((from, port, target));
            continue;
        }
        let mut choice = (b as usize / 4) % GRAPH_CLASSES.len();
        if GRAPH_CLASSES[choice].2 && nodes[from].tee_depth >= 3 {
            choice = 0; // Tee depth cap reached: degrade to Counter.
        }
        let (decl, n_out, is_tee) = GRAPH_CLASSES[choice];
        let idx = nodes.len();
        nodes.push(Node {
            decl,
            tee_depth: nodes[from].tee_depth + usize::from(is_tee),
        });
        conns.push((from, port, idx));
        for p in 0..n_out {
            stubs.push_back((idx, p));
        }
    }
    // Close half the remaining stubs with exits, leave the rest
    // unconnected (dropped packets must still have parity).
    for (i, (from, port)) in stubs.into_iter().enumerate() {
        if i % 2 == 0 {
            let idx = nodes.len();
            nodes.push(Node {
                decl: "ToDevice(t)",
                tee_depth: 0,
            });
            conns.push((from, port, idx));
        }
    }

    let mut cfg = String::new();
    for (i, node) in nodes.iter().enumerate() {
        cfg.push_str(&format!("e{i} :: {};\n", node.decl));
    }
    for (from, port, to) in conns {
        cfg.push_str(&format!("e{from}[{port}] -> e{to};\n"));
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: random fan-out/re-merge graphs (Tee depth
    /// ≤ 3, stateless and order-sensitive stateful elements mixed, some
    /// outputs deliberately unconnected) have byte-identical emissions,
    /// verdicts, drops, element state and cycle totals between the
    /// batched and the single-packet path.
    #[test]
    fn random_fanout_graphs_have_exact_parity(
        graph_spec in prop::collection::vec(any::<u8>(), 0..24),
        traffic in prop::collection::vec((0u16..6, 0u16..4, 1u16..5), 1..24),
    ) {
        let config = random_fanout_config(&graph_spec);
        // Few distinct endpoints so the stateful elements see flow reuse,
        // table pressure and port-range exhaustion.
        let packets: Vec<Packet> = traffic
            .iter()
            .map(|&(s, d, len)| {
                Packet::udp(
                    Ipv4Addr::new(10, 0, 0, 10 + s as u8),
                    Ipv4Addr::new(10, 0, 1, 1),
                    30_000 + s,
                    50 + d,
                    &vec![b'r'; len as usize],
                )
            })
            .collect();
        assert_parity("random-fanout", &config, packets);
    }
}
