//! Integration: the tunnel survives a flaky wire (loss, duplication,
//! reordering) — remote-worker conditions (§III-A) rather than the clean
//! testbed LAN. Lost records vanish, duplicates are rejected by the
//! replay window, reordered fragments reassemble; the session never
//! wedges.

use endbox::scenario::Scenario;
use endbox::server::Delivery;
use endbox::use_cases::UseCase;
use endbox_netsim::impair::Impairment;
use endbox_netsim::traffic::benign_payload;
use endbox_netsim::Packet;
use rand::SeedableRng;

fn run_over(impairment: Impairment, n_packets: u32, payload_len: usize, seed: u64) -> (u32, u32) {
    let mut s = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let payload = benign_payload(payload_len, &mut rng);
    let mut delivered = 0u32;
    for i in 0..n_packets {
        let pkt = Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            i,
            &payload,
        );
        let datagrams = s.clients[0].send_packet(pkt).unwrap();
        let on_wire = impairment.apply(datagrams, seed ^ u64::from(i));
        for d in &on_wire {
            // Errors (replayed duplicates, garbled reassembly) are expected
            // under impairment; panics and protocol wedges are not.
            if let Ok(Delivery::Packet { .. }) = s.server.receive_datagram(0, d) {
                delivered += 1;
            }
        }
    }
    (n_packets, delivered)
}

#[test]
fn clean_wire_delivers_everything() {
    let (sent, delivered) = run_over(Impairment::none(), 100, 1000, 1);
    assert_eq!(delivered, sent);
}

#[test]
fn lossy_wire_degrades_gracefully() {
    let (sent, delivered) = run_over(
        Impairment {
            loss: 0.10,
            duplication: 0.0,
            reorder: 0.0,
        },
        200,
        1000,
        2,
    );
    // Single-fragment records: ~10% loss -> ~90% delivery, never more
    // than sent.
    assert!(delivered < sent);
    assert!(delivered > sent / 2, "{delivered}/{sent}");
}

#[test]
fn duplicated_datagrams_never_deliver_twice() {
    let (sent, delivered) = run_over(
        Impairment {
            loss: 0.0,
            duplication: 0.5,
            reorder: 0.0,
        },
        200,
        1000,
        3,
    );
    // Duplicates either fail fragment-level dedup or the replay window;
    // exactly one delivery per original packet.
    assert_eq!(delivered, sent);
}

#[test]
fn reordered_multifragment_records_reassemble() {
    // 20 KB payloads -> 3 fragments each; heavy reordering.
    let (sent, delivered) = run_over(
        Impairment {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.8,
        },
        50,
        20_000,
        4,
    );
    assert_eq!(delivered, sent, "reordering alone must not lose records");
}

#[test]
fn fully_flaky_wire_keeps_the_session_alive() {
    let (sent, delivered) = run_over(Impairment::flaky(), 300, 5_000, 5);
    assert!(delivered > 0);
    assert!(delivered <= sent);
    // And after all that abuse a clean send still works:
    let mut s = Scenario::enterprise(1, UseCase::Firewall)
        .seed(77)
        .build()
        .unwrap();
    s.send_from_client(0, b"session still healthy").unwrap();
}
