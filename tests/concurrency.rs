//! Integration: the client and server halves run on separate OS threads
//! connected by crossbeam channels (a stand-in for the UDP socket pair),
//! proving the whole stack is `Send` and behaves under asynchronous,
//! interleaved delivery from many clients at once.

use crossbeam::channel;
use endbox::scenario::Scenario;
use endbox::server::Delivery;
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;
use std::thread;

/// One datagram on the simulated wire.
struct Wire {
    peer: u64,
    bytes: Vec<u8>,
}

#[test]
fn threaded_clients_stream_through_channel_server() {
    const CLIENTS: usize = 4;
    const PACKETS_PER_CLIENT: u32 = 50;

    let mut scenario = Scenario::enterprise(CLIENTS, UseCase::Firewall)
        .build()
        .unwrap();
    let (tx, rx) = channel::bounded::<Wire>(256);

    // Move the clients out onto worker threads, keep the server here.
    let clients = std::mem::take(&mut scenario.clients);
    let mut workers = Vec::new();
    for (i, mut client) in clients.into_iter().enumerate() {
        let tx = tx.clone();
        workers.push(thread::spawn(move || {
            for seq in 0..PACKETS_PER_CLIENT {
                let payload = format!("client {i} packet {seq}");
                let pkt = Packet::tcp(
                    Scenario::client_addr(i),
                    Scenario::network_addr(),
                    40_000 + i as u16,
                    5001,
                    seq,
                    payload.as_bytes(),
                );
                for datagram in client.send_packet(pkt).unwrap() {
                    tx.send(Wire {
                        peer: i as u64,
                        bytes: datagram,
                    })
                    .unwrap();
                }
            }
            client
        }));
    }
    drop(tx);

    // The server consumes interleaved datagrams from all clients.
    let mut delivered_per_client = [0u32; CLIENTS];
    while let Ok(wire) = rx.recv() {
        match scenario
            .server
            .receive_datagram(wire.peer, &wire.bytes)
            .unwrap()
        {
            Delivery::Packet { packet, .. } => {
                let text = String::from_utf8(packet.app_payload().to_vec()).unwrap();
                let who: usize = text.split_whitespace().nth(1).unwrap().parse().unwrap();
                delivered_per_client[who] += 1;
            }
            Delivery::Pending => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    for (i, &n) in delivered_per_client.iter().enumerate() {
        assert_eq!(n, PACKETS_PER_CLIENT, "client {i}");
    }
    // Join the workers; their stats survived the move.
    for w in workers {
        let client = w.join().unwrap();
        assert_eq!(client.stats.sent, PACKETS_PER_CLIENT as u64);
    }
}

#[test]
fn bidirectional_threads_echo_through_server() {
    let mut scenario = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
    let session_1 = scenario.session_id(1);

    let (to_server, from_clients) = channel::unbounded::<Wire>();
    let (to_client_1, at_client_1) = channel::unbounded::<Vec<u8>>();

    let mut clients = std::mem::take(&mut scenario.clients);
    let mut client_1 = clients.pop().unwrap();
    let mut client_0 = clients.pop().unwrap();

    // Client 0: sends 20 messages addressed to client 1.
    let sender = thread::spawn(move || {
        for seq in 0..20u32 {
            let pkt = Packet::tcp(
                Scenario::client_addr(0),
                Scenario::client_addr(1),
                40_000,
                40_001,
                seq,
                format!("c2c message {seq}").as_bytes(),
            );
            for datagram in client_0.send_packet(pkt).unwrap() {
                to_server
                    .send(Wire {
                        peer: 0,
                        bytes: datagram,
                    })
                    .unwrap();
            }
        }
    });

    // Client 1: receives and counts.
    let receiver = thread::spawn(move || {
        let mut received = 0u32;
        while let Ok(datagram) = at_client_1.recv() {
            if client_1.receive_datagram(&datagram).unwrap().is_some() {
                received += 1;
            }
        }
        received
    });

    // Server thread body (runs inline): forward deliveries to client 1.
    while let Ok(wire) = from_clients.recv() {
        if let Delivery::Packet { packet, .. } = scenario
            .server
            .receive_datagram(wire.peer, &wire.bytes)
            .unwrap()
        {
            for d in scenario.server.send_to_client(session_1, &packet).unwrap() {
                to_client_1.send(d).unwrap();
            }
        }
    }
    drop(to_client_1);

    sender.join().unwrap();
    assert_eq!(receiver.join().unwrap(), 20);
}
