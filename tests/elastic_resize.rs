//! Structural elasticity: grow/shrink RX framing shards and worker
//! shards online, pinned by a resize-schedule parity grid.
//!
//! The named schedules interleave [`Step::Resize`] against the existing
//! adversarial classes — a grow lands mid-flood with datagrams already
//! buffered, a shrink retires the very shard holding an in-flight
//! partial record (the partial drains at the quiesce point and rehashes
//! to its new home, where the tail completes it), a resize races a
//! crafted `Disconnect`, and back-to-back grow+shrink pairs bracket
//! traffic. Every schedule replays over the full
//! `(rx, workers) ∈ {1,2,4} × {1,2,4,8}` starting grid ×
//! {Static, LoadAware, Adaptive} through both the call-driven and the
//! event-driven doorway, asserting byte-identical outcomes against the
//! single-threaded reference: capacity changes never change outcomes,
//! only where work happens.
//!
//! The deterministic tests pin the [`ResizeStats`] contract (a shrink
//! drains exactly the parked partials of the peers whose owner changed;
//! worker shrinks migrate every session off the retiring shards) and
//! the resize law itself (a sustained flood grows the pool, sustained
//! idleness shrinks it back, through hysteresis and cooldown). The
//! proptest interleaves random `Step::Resize` steps with the existing
//! schedule classes and reconciles the stats against the schedule that
//! drove them — no record lost or duplicated across any rehash.
//!
//! [`ResizeStats`]: endbox::server::ResizeStats

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::{Scenario, ShardedScenario};
use endbox::server::ResizeStats;
use endbox::use_cases::UseCase;
use endbox_netsim::net::VirtualWire;
use endbox_netsim::Packet;
use endbox_vpn::proto::{Opcode, Record};
use support::{assert_schedule_parity_elastic, simplify, split_raw, Out, PeerMap, Schedule, Step};

/// A grow fired while a four-client flood is mid-flight: datagrams from
/// every client are already buffered when the pool doubles, so the whole
/// burst rides through the *resized* server and re-merges into exact
/// input order regardless of which geometry framed which datagram.
#[test]
fn schedule_grow_mid_flood() {
    let schedule = Schedule::new("grow-mid-flood", 4, 0xe1a1)
        .step(Step::Batch {
            client: 0,
            n_packets: 6,
        })
        .step(Step::Batch {
            client: 1,
            n_packets: 5,
        })
        .step(Step::Single { client: 2 })
        .step(Step::Batch {
            client: 3,
            n_packets: 4,
        })
        .step(Step::Resize { rx: 4, workers: 8 })
        .step(Step::Batch {
            client: 0,
            n_packets: 3,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Flush)
        .step(Step::Batch {
            client: 2,
            n_packets: 4,
        })
        .step(Step::Single { client: 3 });
    assert_schedule_parity_elastic(&schedule);
}

/// A shrink retires the shard holding an in-flight partial record: the
/// head fragments park in a reassembler, the pool shrinks to one shard
/// (the retiring shard drains its partial to the survivor), the tail
/// arrives after the rehash and completes the record — then a replay of
/// the tail is rejected identically and a grow follows.
#[test]
fn schedule_shrink_straddles_partial() {
    let schedule = Schedule::new("shrink-straddles-partial", 3, 0xe1a2)
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 120,
            splits: vec![7, 33, 80],
            tag: 3,
            lo: 0,
            hi: 2,
        })
        .step(Step::Batch {
            client: 0,
            n_packets: 2,
        })
        .step(Step::Flush)
        .step(Step::Resize { rx: 1, workers: 1 })
        .step(Step::Single { client: 2 })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 120,
            splits: vec![7, 33, 80],
            tag: 3,
            lo: 2,
            hi: 4,
        })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Resize { rx: 4, workers: 4 })
        .step(Step::Single { client: 1 });
    assert_schedule_parity_elastic(&schedule);
}

/// A resize races a crafted `Disconnect`: the teardown is buffered but
/// not yet flushed when the pool resizes, so the Disconnect is framed by
/// the *new* geometry, a replay of it fails against the dead session
/// without tearing down the fresh reassembler, and the parked partial's
/// tail still completes (and fails its verdict) after a second resize.
#[test]
fn schedule_resize_races_disconnect() {
    let schedule = Schedule::new("resize-races-disconnect", 3, 0xe1a3)
        .step(Step::Batch {
            client: 0,
            n_packets: 3,
        })
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 96,
            splits: vec![7, 33],
            tag: 1,
            lo: 0,
            hi: 2,
        })
        .step(Step::Flush)
        .step(Step::Disconnect { client: 1 })
        .step(Step::Resize { rx: 2, workers: 2 })
        .step(Step::Flush)
        .step(Step::Replay)
        .step(Step::Single { client: 2 })
        .step(Step::Flush)
        .step(Step::SplitRecordPart {
            client: 1,
            payload_len: 96,
            splits: vec![7, 33],
            tag: 1,
            lo: 2,
            hi: 3,
        })
        .step(Step::Resize { rx: 1, workers: 4 })
        .step(Step::Single { client: 0 });
    assert_schedule_parity_elastic(&schedule);
}

/// Back-to-back grow+shrink pairs with no traffic between them, under
/// the adversarial colliding peer map (every peer homes on shard 0 at
/// every grid point) and a stalled shard 0 — two full rehashes in a row
/// must compose to a no-op on outcomes, twice.
#[test]
fn schedule_back_to_back_grow_shrink() {
    let schedule = Schedule::new("back-to-back-grow-shrink", 4, 0xe1a4)
        .peers(PeerMap::Stride(4))
        .stall(0, 120)
        .step(Step::Batch {
            client: 0,
            n_packets: 2,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Flush)
        .step(Step::Resize { rx: 8, workers: 8 })
        .step(Step::Resize { rx: 1, workers: 1 })
        .step(Step::Batch {
            client: 2,
            n_packets: 3,
        })
        .step(Step::Single { client: 3 })
        .step(Step::Flush)
        .step(Step::Resize { rx: 2, workers: 4 })
        .step(Step::Resize { rx: 4, workers: 2 })
        .step(Step::Replay)
        .step(Step::Single { client: 0 });
    assert_schedule_parity_elastic(&schedule);
}

/// Seals `n` single-packet records from `client` and ships them onto the
/// wire; returns the number of wire datagrams sent.
fn send_records(scenario: &mut ShardedScenario, client: usize, n: usize, round: usize) -> usize {
    let mut sent = 0;
    for i in 0..n {
        let payload = format!("elastic round {round} client {client} packet {i}");
        let packet = Packet::tcp(
            Scenario::client_addr(client),
            Scenario::network_addr(),
            41_000 + client as u16,
            5_001,
            (round * 1_000 + i) as u32,
            payload.as_bytes(),
        );
        let datagrams = scenario.clients[client].send_packet(packet).unwrap();
        sent += datagrams.len();
        scenario.send_wire_datagrams(client as u64, datagrams);
    }
    sent
}

/// Pumps the event loop until `expect` outcomes arrived.
fn pump_all(scenario: &mut ShardedScenario, expect: usize) -> Vec<Out> {
    let mut outs = Vec::new();
    let mut spins = 0;
    while outs.len() < expect {
        outs.extend(
            scenario
                .pump_async()
                .into_iter()
                .map(|(_, result)| simplify(result)),
        );
        spins += 1;
        assert!(
            spins < 100_000,
            "wire lost datagrams across a resize: {} of {expect}",
            outs.len()
        );
    }
    outs
}

/// The satellite `rehome_peer` fix: a re-home targeting a group index
/// that is no longer live (stale after a shrink) must panic loudly
/// instead of silently wrapping onto the wrong group — a wrapped re-home
/// would park the peer's socket on a group that does not feed the shard
/// owning its reassembly state.
#[test]
#[should_panic(expected = "is not live")]
fn rehome_peer_rejects_stale_group_index() {
    let wire = VirtualWire::new();
    let mut fe = endbox::server::AsyncFrontEnd::new(2);
    fe.register_peer(7, wire.bind(7).unwrap());
    // A caller holding an index from before a shrink: only groups 0..2
    // are live, so 5 must be rejected, not wrapped to 5 % 2 == 1.
    fe.rehome_peer(7, 5);
}

/// A shrink with a record head in flight, against a twin scenario that
/// never resizes: exactly the parked partial of the owner-changed peer
/// drains (counted in [`ResizeStats`]), reinstalls at its home under the
/// new modulus, and the tail completes the record to the **same**
/// outcome as the twin.
#[test]
fn shrink_drains_inflight_partial_and_preserves_outcome() {
    let build = || -> ShardedScenario {
        Scenario::enterprise(2, UseCase::Nop)
            .seed(0xe1c2)
            .rx_shards(2)
            .async_ingress(true)
            .build_sharded(2)
            .unwrap()
    };
    let mut resized = build();
    let mut control = build();

    // Peer 1 homes on shard 1 of 2; after the shrink to one shard its
    // home is shard 0, so the rehash moves it — partial and all.
    let record = Record {
        opcode: Opcode::Data,
        session_id: resized.session_id(1),
        packet_id: 0x7001,
        payload: vec![0xcd; 160],
    };
    let frags = split_raw(&record.to_bytes(), &[11, 60], 0xBEEF_0002);
    assert_eq!(frags.len(), 3);

    let head: Vec<Vec<u8>> = frags[..2].to_vec();
    resized.send_wire_datagrams(1, head.clone());
    control.send_wire_datagrams(1, head);
    let mut outs_resized = pump_all(&mut resized, 2);
    let mut outs_control = pump_all(&mut control, 2);

    let (moved, drained) = resized.resize_rx_shards(1);
    assert!(moved >= 1, "peer 1's owner changed, so it must move");
    assert_eq!(drained, 1, "the parked partial must drain with the rehash");
    let stats = resized.resize_stats();
    assert_eq!(stats.rx_shrinks, 1);
    assert_eq!(stats.rx_grows, 0);
    assert_eq!(stats.partials_drained, 1);
    assert_eq!(stats.peers_rehashed, moved as u64);

    // Tail completes the record at the rehashed home; the verdict must
    // be identical with and without the resize.
    resized.send_wire_datagrams(1, vec![frags[2].clone()]);
    control.send_wire_datagrams(1, vec![frags[2].clone()]);
    outs_resized.extend(pump_all(&mut resized, 1));
    outs_control.extend(pump_all(&mut control, 1));
    assert_eq!(outs_resized, outs_control);
    assert!(
        matches!(outs_resized[0], Out::Pending) && matches!(outs_resized[1], Out::Pending),
        "head fragments must park, not deliver: {outs_resized:?}"
    );
}

/// Worker elasticity bookkeeping: a shrink migrates every session off
/// the retiring shards (counted in [`ResizeStats::sessions_moved`]), a
/// grow spawns fresh workers that already carry the live dispatch
/// policy, and traffic flows identically before and after both.
#[test]
fn worker_resize_migrates_sessions_and_keeps_serving() {
    let mut scenario: ShardedScenario = Scenario::enterprise(4, UseCase::Nop)
        .seed(0xe1c3)
        .rx_shards(2)
        .async_ingress(true)
        .build_sharded(4)
        .unwrap();

    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 0);
    }
    pump_all(&mut scenario, sent);

    // 4 sessions homed across 4 worker shards; shrinking to 1 retires
    // three shards and every session on them must migrate.
    let moved = scenario.resize_workers(1);
    assert!(
        moved >= 3,
        "three of four worker homes retire: moved {moved}"
    );
    let stats = scenario.resize_stats();
    assert_eq!(stats.worker_shrinks, 1);
    assert_eq!(stats.worker_grows, 0);
    assert_eq!(stats.sessions_moved, moved as u64);

    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 1);
    }
    pump_all(&mut scenario, sent);

    // Grow back: fresh workers, no sessions need to move for a grow.
    let moved = scenario.resize_workers(8);
    assert_eq!(moved, 0, "a grow retires nothing: moved {moved}");
    assert_eq!(scenario.resize_stats().worker_grows, 1);

    let mut sent = 0;
    for client in 0..4 {
        sent += send_records(&mut scenario, client, 2, 2);
    }
    let outs = pump_all(&mut scenario, sent);
    assert_eq!(outs.len(), sent);
}

/// The resize law end to end ([`ScenarioBuilder::elastic`]): a sustained
/// flood pushes the demand EWMAs past the grow hysteresis and the pool
/// grows; sustained idleness decays them back and — after the cooldown —
/// the pool shrinks to one shard again. Workers track the RX count
/// through [`RESIZE_WORKERS_PER_SHARD`].
///
/// [`ScenarioBuilder::elastic`]: endbox::scenario::ScenarioBuilder::elastic
/// [`RESIZE_WORKERS_PER_SHARD`]: endbox::server::RESIZE_WORKERS_PER_SHARD
#[test]
fn elastic_law_grows_under_flood_and_shrinks_when_idle() {
    let mut scenario: ShardedScenario = Scenario::enterprise(4, UseCase::Nop)
        .seed(0xe1c4)
        .rx_shards(1)
        .elastic(true)
        .build_sharded(2)
        .unwrap();
    assert_eq!(scenario.server.rx_shard_count(), 1);

    // Flood until the grow fires (hysteresis needs a few consecutive
    // over-demand control rounds; each flood/pump cycle provides them).
    let mut round = 0;
    while scenario.resize_stats().rx_grows == 0 && round < 12 {
        let mut sent = 0;
        for client in 0..4 {
            sent += send_records(&mut scenario, client, 75, round);
        }
        let outs = pump_all(&mut scenario, sent);
        assert_eq!(outs.len(), sent, "no datagram may be lost across a grow");
        round += 1;
    }
    let grown = scenario.resize_stats();
    assert!(
        grown.rx_grows >= 1,
        "the flood never fired a grow: {grown:?}"
    );
    assert!(
        scenario.server.rx_shard_count() > 1,
        "a grow must actually add shards"
    );

    // Idle rounds decay the EWMAs; after the cooldown plus the shrink
    // hysteresis the pool falls back to one shard.
    for _ in 0..60 {
        scenario.pump_async();
    }
    let shrunk = scenario.resize_stats();
    assert!(
        shrunk.rx_shrinks >= 1,
        "sustained idleness never fired a shrink: {shrunk:?}"
    );
    assert_eq!(
        scenario.server.rx_shard_count(),
        1,
        "idle demand must shrink back to the floor"
    );
    assert!(
        shrunk.worker_grows >= 1 && shrunk.worker_shrinks >= 1,
        "workers must track the RX resizes: {shrunk:?}"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;
    use support::{eager_load_aware, run_async, run_sharded_elastic, run_single};

    /// Decodes index tuples into a schedule mixing every existing step
    /// class with [`Step::Resize`] (kind 8): grows and shrinks land at
    /// arbitrary positions between batches, splits, replays,
    /// disconnects and flush boundaries.
    fn to_schedule(
        raw: &[(usize, usize, usize)],
        n_clients: usize,
        collide: bool,
        seed: u64,
    ) -> Schedule {
        let mut schedule =
            Schedule::new("proptest-elastic", n_clients, 0xe1b0 + seed).peers(if collide {
                PeerMap::Stride(4)
            } else {
                PeerMap::Identity
            });
        schedule = schedule.stall((seed % 4) as usize, 120);
        for &(kind, client, n) in raw {
            let client = client % n_clients;
            schedule = schedule.step(match kind % 9 {
                0 => Step::Batch {
                    client,
                    n_packets: 1 + n % 6,
                },
                1 => Step::Single { client },
                2 => Step::Ping { client },
                3 => Step::Replay,
                4 => Step::SplitRecord {
                    client,
                    payload_len: 16 + n * 13,
                    splits: vec![1 + n, 7 + n * 3, 60],
                },
                5 => Step::Flush,
                6 => Step::Disconnect { client },
                _ => Step::Resize {
                    rx: 1 + n % 4,
                    workers: 1 + (n * 3) % 8,
                },
            });
        }
        schedule
    }

    /// How many [`Step::Resize`] steps a schedule carries — the upper
    /// bound on every grow/shrink counter pair in [`ResizeStats`].
    fn resize_steps(schedule: &Schedule) -> u64 {
        schedule
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Resize { .. }))
            .count() as u64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Random interleavings of `Step::Resize` with every existing
        /// schedule class stay byte-identical to the single-threaded
        /// reference through both doorways, and the [`ResizeStats`]
        /// reconcile with the schedule that drove them: grows plus
        /// shrinks never exceed the resize steps (equal-geometry
        /// resizes are no-ops), and a schedule without resizes leaves
        /// the stats at zero — no record lost or duplicated across any
        /// rehash.
        #[test]
        fn resize_interleavings_preserve_parity_and_reconcile(
            n_clients in 2usize..4,
            seed in 0u64..1_000,
            collide in proptest::any::<bool>(),
            raw in prop::collection::vec((0usize..9, 0usize..4, 0usize..8), 4..10),
        ) {
            let schedule = to_schedule(&raw, n_clients, collide, seed);
            let resizes = resize_steps(&schedule);
            let reference = run_single(&schedule);
            for policy in [eager_load_aware(), endbox_vpn::shard::DispatchPolicy::Static] {
                for &(rx, workers) in &[(1usize, 1usize), (2, 4), (4, 8)] {
                    let (outs, stats) = run_sharded_elastic(&schedule, rx, workers, policy);
                    prop_assert_eq!(
                        &outs, &reference,
                        "call-driven divergence at rx={} workers={} policy={:?}",
                        rx, workers, policy
                    );
                    prop_assert!(
                        stats.rx_grows + stats.rx_shrinks <= resizes,
                        "more RX resizes than steps: {:?} vs {} steps", stats, resizes
                    );
                    prop_assert!(
                        stats.worker_grows + stats.worker_shrinks <= resizes,
                        "more worker resizes than steps: {:?} vs {} steps", stats, resizes
                    );
                    if resizes == 0 {
                        prop_assert_eq!(stats, ResizeStats::default());
                    }
                    let outs = run_async(&schedule, rx, workers, policy);
                    prop_assert_eq!(
                        &outs, &reference,
                        "event-driven divergence at rx={} workers={} policy={:?}",
                        rx, workers, policy
                    );
                }
            }
        }
    }
}
