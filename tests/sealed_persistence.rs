//! Integration: §III-C step 7 — sealed enrollment state. "An enclave only
//! has to be attested once": after a restart, the client restores its
//! identity, certificate and config key from the sealed blob and
//! reconnects without any CA/IAS interaction.

use endbox::ca::CertificateAuthority;
use endbox::client::{EndBoxClient, EndBoxClientConfig};
use endbox::error::EndBoxError;
use endbox::server::{Delivery, EndBoxServer, EndBoxServerConfig};
use endbox_crypto::schnorr::SigningKey;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::time::SharedClock;
use endbox_sgx::attestation::{CpuIdentity, IasSimulator};
use endbox_vpn::handshake::HandshakeConfig;
use endbox_vpn::{CipherSuite, PROTOCOL_V1};
use rand::SeedableRng;

struct World {
    ias: IasSimulator,
    ca: CertificateAuthority,
    cpu: CpuIdentity,
    rng: rand::rngs::StdRng,
}

fn world(seed: u8) -> World {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5ea1 + seed as u64);
    let mut ias = IasSimulator::new(&mut rng);
    let cpu = CpuIdentity::from_seed([seed; 32]);
    ias.register_platform(cpu.attestation_public());
    let ca = CertificateAuthority::new(ias.public_key(), &mut rng);
    World { ias, ca, cpu, rng }
}

fn client(w: &World, subject: &str) -> EndBoxClient {
    let cfg = EndBoxClientConfig::new(subject, w.ca.public_key(), w.cpu.clone());
    EndBoxClient::new(cfg).unwrap()
}

fn server(w: &mut World) -> EndBoxServer {
    let key = SigningKey::generate(&mut w.rng);
    let cert =
        w.ca.issue_server_certificate("endbox-server", key.verifying_key(), 0, &mut w.rng);
    EndBoxServer::new(EndBoxServerConfig {
        handshake: HandshakeConfig {
            identity: key,
            certificate: cert,
            ca_public: w.ca.public_key(),
            min_version: PROTOCOL_V1,
        },
        suite: CipherSuite::Aes128CbcHmac,
        server_click: None,
        cost: CostModel::calibrated(),
        meter: CycleMeter::new(),
        clock: SharedClock::new(),
        rng_seed: 1,
    })
    .unwrap()
}

fn connect(client: &mut EndBoxClient, server: &mut EndBoxServer, peer: u64) {
    let hello = client.connect_start().unwrap();
    let mut response = None;
    for frag in &hello {
        if let Delivery::Established { response: r, .. } =
            server.receive_datagram(peer, frag).unwrap()
        {
            response = Some(r);
        }
    }
    for frag in &response.unwrap() {
        client.connect_complete(frag).unwrap();
    }
}

#[test]
fn restart_reconnects_without_reattestation() {
    let mut w = world(10);
    // First boot: full attestation.
    let mut first = client(&w, "laptop-1");
    w.ca.allow_measurement(first.enclave_app().measurement());
    let sealed = first
        .enroll("laptop-1", &mut w.ca, &w.ias, &mut w.rng)
        .unwrap();
    assert_eq!(w.ca.issued_count(), 1);

    // "Reboot": a brand-new client process on the same machine restores
    // from the sealed blob. No CA/IAS calls — issued_count stays put.
    let mut rebooted = client(&w, "laptop-1");
    rebooted.restore_enrollment(&sealed).unwrap();
    assert_eq!(w.ca.issued_count(), 1, "no re-attestation");

    // And it can establish a VPN session with the restored certificate.
    let mut srv = server(&mut w);
    connect(&mut rebooted, &mut srv, 0);
    assert!(rebooted.is_connected());
    let datagrams = rebooted
        .send_packet(endbox_netsim::Packet::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 1, 0, 1),
            1,
            2,
            b"after reboot",
        ))
        .unwrap();
    let mut delivered = false;
    for d in &datagrams {
        if let Delivery::Packet { .. } = srv.receive_datagram(0, d).unwrap() {
            delivered = true;
        }
    }
    assert!(delivered);
}

#[test]
fn sealed_blob_is_bound_to_the_cpu() {
    let mut w = world(11);
    let mut first = client(&w, "laptop-2");
    w.ca.allow_measurement(first.enclave_app().measurement());
    let sealed = first
        .enroll("laptop-2", &mut w.ca, &w.ias, &mut w.rng)
        .unwrap();

    // An attacker copies the blob to a different machine.
    let other_cpu = CpuIdentity::from_seed([0x99; 32]);
    let cfg = EndBoxClientConfig::new("laptop-2", w.ca.public_key(), other_cpu);
    let mut thief = EndBoxClient::new(cfg).unwrap();
    let err = thief.restore_enrollment(&sealed).unwrap_err();
    assert_eq!(
        err,
        EndBoxError::Enrollment("sealed state failed to unseal")
    );
}

#[test]
fn sealed_blob_is_bound_to_the_enclave_code() {
    let mut w = world(12);
    let mut first = client(&w, "laptop-3");
    w.ca.allow_measurement(first.enclave_app().measurement());
    let sealed = first
        .enroll("laptop-3", &mut w.ca, &w.ias, &mut w.rng)
        .unwrap();

    // Same CPU, but a client binary built with a different CA key — its
    // measurement differs, so the sealing key differs.
    let other_ca = CertificateAuthority::new(w.ias.public_key(), &mut w.rng);
    let cfg = EndBoxClientConfig::new("laptop-3", other_ca.public_key(), w.cpu.clone());
    let mut other_build = EndBoxClient::new(cfg).unwrap();
    assert!(other_build.restore_enrollment(&sealed).is_err());
}

#[test]
fn tampered_blob_rejected() {
    let mut w = world(13);
    let mut first = client(&w, "laptop-4");
    w.ca.allow_measurement(first.enclave_app().measurement());
    let sealed = first
        .enroll("laptop-4", &mut w.ca, &w.ias, &mut w.rng)
        .unwrap();
    for i in [0usize, 16, sealed.len() / 2, sealed.len() - 1] {
        let mut t = sealed.clone();
        t[i] ^= 0x01;
        let mut fresh = client(&w, "laptop-4");
        assert!(fresh.restore_enrollment(&t).is_err(), "tamper at {i}");
    }
    let mut fresh = client(&w, "laptop-4");
    assert!(fresh.restore_enrollment(&[]).is_err());
}
