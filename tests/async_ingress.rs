//! Parity and backpressure tests for the event-driven socket front-end
//! (`AsyncFrontEnd`: one poll group per RX shard, `peer_id mod K`).
//!
//! The named tests replay [`support::Schedule`]s — the same deterministic
//! interleaving classes the call-driven pipeline is pinned by in
//! `tests/rx_interleaving.rs` — through the **event-driven** ingress path
//! (`ScenarioBuilder::async_ingress`): datagrams ride the virtual wire
//! into per-peer server sockets, and a readiness poll loop drains them
//! into the pipelined dispatch. With the default (generous) budget the
//! drained batch is re-merged into exact wire order, so the outcomes must
//! be byte-identical to the single-threaded reference server over the
//! whole `(rx_shards, workers, policy)` grid. `Flush` boundaries become
//! *poll-round* boundaries here, so partial records straddle event-loop
//! iterations instead of `receive_datagrams` calls — the
//! readiness-interleaving analogue of the batch-boundary schedules.
//!
//! The backpressure tests tighten the per-shard budget and assert the
//! scheduling contract directly: a flooding peer defers to later rounds
//! while its shard-mates ride in every round, and per-peer outcome order
//! stays exactly the single-threaded order throughout.

#[path = "support/mod.rs"]
#[allow(dead_code)]
mod support;

use endbox::scenario::Scenario;
use endbox::server::Delivery;
use endbox::use_cases::UseCase;
use endbox_netsim::Packet;
use support::{
    assert_schedule_parity_async, assert_schedule_parity_async_on, simplify, Out, PeerMap,
    Schedule, Step,
};

/// A Disconnect pausing its (stalled) owning RX shard, a replayed
/// Disconnect that must fail, and a split record completing afterwards —
/// all arriving through sockets instead of calls.
#[test]
fn async_schedule_disconnect_races_slow_owning_shard() {
    let schedule = Schedule::new("async-disconnect-races-slow-owning-shard", 2, 0xac01)
        .stall(0, 400)
        .step(Step::Batch {
            client: 1,
            n_packets: 3,
        })
        .step(Step::Disconnect { client: 0 })
        .step(Step::Replay) // replayed Disconnect: session unknown -> must NOT tear down
        .step(Step::SplitRecord {
            client: 0,
            payload_len: 220,
            splits: vec![3, 40],
        })
        .step(Step::Single { client: 1 })
        .step(Step::Flush)
        .step(Step::Single { client: 1 });
    assert_schedule_parity_async(&schedule);
}

/// All peers collide on one poll group / RX shard via stride-4 peer ids:
/// the event loop drains every socket of the collided group and must
/// still reproduce the single-threaded sequencing, Disconnect pause
/// included.
#[test]
fn async_schedule_all_peers_collide_on_one_poll_group() {
    let schedule = Schedule::new("async-all-peers-collide", 3, 0xac02)
        .peers(PeerMap::Stride(4))
        .step(Step::Batch {
            client: 0,
            n_packets: 2,
        })
        .step(Step::Single { client: 1 })
        .step(Step::Replay)
        .step(Step::Disconnect { client: 2 })
        .step(Step::Replay)
        .step(Step::Single { client: 0 })
        .step(Step::Flush)
        .step(Step::Ping { client: 1 })
        .step(Step::Single { client: 1 });
    assert_schedule_parity_async(&schedule);
}

/// A split record whose head arrives in one poll round and whose tail
/// only becomes readable two event-loop rounds later, with other peers'
/// traffic (and a shard stall) in between: reassembly state must survive
/// across wakeups exactly as it survives across `receive_datagrams`
/// calls.
#[test]
fn async_schedule_split_record_straddles_poll_rounds() {
    let mut schedule = Schedule::new("async-split-straddles-poll-rounds", 2, 0xac03)
        .stall(0, 150)
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 300,
            splits: vec![5, 9, 120],
            tag: 1,
            lo: 0,
            hi: 2,
        })
        .step(Step::Flush); // poll-round boundary with the record half-read
    for _ in 0..10 {
        schedule = schedule.step(Step::Single { client: 1 });
    }
    schedule = schedule
        .step(Step::Flush) // a second wakeup without the tail
        .step(Step::SplitRecordPart {
            client: 0,
            payload_len: 300,
            splits: vec![5, 9, 120],
            tag: 1,
            lo: 2,
            hi: 4,
        })
        .step(Step::Single { client: 1 });
    assert_schedule_parity_async(&schedule);
}

/// Interleaved tiny datagrams (1-byte fragments through header and body)
/// across poll-round boundaries, with a stalled sibling shard.
#[test]
fn async_schedule_interleaved_tiny_datagrams() {
    let mut schedule = Schedule::new("async-interleaved-tiny-datagrams", 2, 0xac04).stall(1, 100);
    for i in 0..6 {
        schedule = schedule
            .step(Step::SplitRecord {
                client: i % 2,
                payload_len: 24,
                splits: (1..40).collect(),
            })
            .step(Step::Single {
                client: (i + 1) % 2,
            });
        if i % 3 == 2 {
            schedule = schedule.step(Step::Flush);
        }
    }
    assert_schedule_parity_async(&schedule);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn to_schedule(
        raw: &[(usize, usize, usize)],
        n_clients: usize,
        collide: bool,
        seed: u64,
    ) -> Schedule {
        let mut schedule = Schedule::new("async-proptest-schedule", n_clients, 0xac50 + seed)
            .peers(if collide {
                PeerMap::Stride(4)
            } else {
                PeerMap::Identity
            });
        schedule = schedule.stall((seed % 4) as usize, 120);
        for &(kind, client, n) in raw {
            let client = client % n_clients;
            schedule = schedule.step(match kind % 8 {
                0 | 1 => Step::Batch {
                    client,
                    n_packets: 1 + n % 6,
                },
                2 => Step::Single { client },
                3 => Step::Ping { client },
                4 => Step::Replay,
                5 => Step::SplitRecord {
                    client,
                    payload_len: 16 + n * 13,
                    splits: vec![1 + n, 7 + n * 3, 60],
                },
                6 => Step::Flush,
                _ => Step::Disconnect { client },
            });
        }
        schedule
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Generated readiness interleavings (batches, singles, pings,
        /// replays, disconnects, splits, poll-round boundaries, colliding
        /// or spread peer maps) through the event-driven front-end are
        /// byte-identical to the single-threaded server.
        #[test]
        fn generated_schedules_match_single_server_through_event_loop(
            n_clients in 2usize..4,
            seed in 0u64..1_000,
            collide in proptest::any::<bool>(),
            raw in prop::collection::vec((0usize..8, 0usize..4, 0usize..8), 3..9),
        ) {
            let schedule = to_schedule(&raw, n_clients, collide, seed);
            // A representative sub-grid keeps proptest case cost bounded;
            // the named tests above cover the full grid.
            assert_schedule_parity_async_on(
                &schedule,
                &[(1, 2), (2, 4), (4, 1), (4, 8)],
            );
        }
    }
}

/// Builds one single-packet wire datagram for `client` (small payload →
/// one datagram per record).
fn single_datagram(
    scenario: &mut endbox::scenario::ShardedScenario,
    client: usize,
    seq: u32,
) -> Vec<u8> {
    let pkt = Packet::tcp(
        Scenario::client_addr(client),
        Scenario::network_addr(),
        44_000 + client as u16,
        5_001,
        seq,
        format!("bp client {client} seq {seq}").as_bytes(),
    );
    let mut sealed = scenario.clients[client].send_packet(pkt).unwrap();
    assert_eq!(sealed.len(), 1, "small record must be one datagram");
    sealed.pop().unwrap()
}

/// Backpressure contract: with a tight per-shard budget, a flooding peer
/// cannot starve its shard-mates — the mates' traffic rides in the very
/// first round while the flood's tail defers to later rounds — and the
/// outcomes still match the call-driven server per peer, in per-peer
/// order.
#[test]
fn flooding_peer_defers_while_shard_mates_ride_every_round() {
    let build = |async_ingress: bool| {
        Scenario::enterprise(8, UseCase::Nop)
            .seed(0xac10)
            .rx_shards(4)
            .async_ingress(async_ingress)
            .build_sharded(2)
            .unwrap()
    };
    let mut sync = build(false);
    let mut async_ = build(true);

    // Peer 0 floods its socket; peers 4 (same RX shard: 4 mod 4 == 0) and
    // 1 (different shard) each send a trickle. Identical seeds produce
    // identical wire bytes on both scenarios.
    const FLOOD: usize = 12;
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    for seq in 0..FLOOD {
        sends.push((0, single_datagram(&mut async_, 0, seq as u32)));
    }
    sends.push((4, single_datagram(&mut async_, 4, 100)));
    sends.push((4, single_datagram(&mut async_, 4, 101)));
    sends.push((1, single_datagram(&mut async_, 1, 200)));
    for (client, d) in &sends {
        async_.send_wire_datagrams(*client as u64, vec![d.clone()]);
    }

    // Budget of 4 datagrams per shard per round, quota 2 per socket per
    // pass: shard 0 holds 14 queued datagrams, so draining takes rounds.
    async_.set_async_budget(2, 4);
    let first_round = async_.pump_async_round();
    let first_peers: Vec<u64> = first_round.iter().map(|(p, _)| *p).collect();
    assert!(
        first_peers.contains(&4),
        "shard-mate must ride the first round despite the flood: {first_peers:?}"
    );
    assert!(
        first_peers.contains(&1),
        "other shards are untouched by the flood: {first_peers:?}"
    );
    assert!(
        first_peers.iter().filter(|&&p| p == 0).count() < FLOOD,
        "the flood must not drain in one budgeted round"
    );
    let stats = async_.async_stats();
    assert!(
        stats.deferred_rounds >= 1,
        "budget exhaustion must be observable: {stats:?}"
    );
    assert!(async_.backlog() > 0, "flood tail still queued");

    // Drain the tail and compare against the call-driven server, per
    // peer and in per-peer order (cross-peer interleaving is allowed to
    // move across rounds; per-peer order is the contract).
    let mut async_outs: Vec<(u64, Out)> = first_round
        .into_iter()
        .map(|(p, r)| (p, simplify(r)))
        .collect();
    async_outs.extend(
        async_
            .pump_async()
            .into_iter()
            .map(|(p, r)| (p, simplify(r))),
    );
    assert_eq!(async_.backlog(), 0);

    let sync_outs: Vec<(u64, Out)> = sync
        .server
        .receive_datagrams(sends.iter().map(|(c, d)| (*c as u64, d.clone())).collect())
        .into_iter()
        .zip(sends.iter())
        .map(|(r, (c, _))| (*c as u64, simplify(r)))
        .collect();
    for peer in [0u64, 1, 4] {
        let got: Vec<&Out> = async_outs
            .iter()
            .filter(|(p, _)| *p == peer)
            .map(|(_, o)| o)
            .collect();
        let want: Vec<&Out> = sync_outs
            .iter()
            .filter(|(p, _)| *p == peer)
            .map(|(_, o)| o)
            .collect();
        assert_eq!(
            got, want,
            "peer {peer} diverged from the call-driven server"
        );
    }
    assert_eq!(async_outs.len(), sync_outs.len());
}

/// The front-end's counters reconcile with the RX shards': every datagram
/// the event loop drains is a datagram some RX shard framed from.
#[test]
fn async_stats_reconcile_with_rx_shard_stats() {
    let mut s = Scenario::enterprise(6, UseCase::Nop)
        .seed(0xac11)
        .rx_shards(2)
        .async_ingress(true)
        .build_sharded(2)
        .unwrap();
    let rx_before: u64 = s
        .server
        .rx_shard_stats()
        .iter()
        .map(|st| st.datagrams)
        .sum();
    for round in 0..3 {
        let payloads: Vec<Vec<Vec<u8>>> = (0..6)
            .map(|c| {
                (0..2)
                    .map(|i| format!("recon {round} {c} {i}").into_bytes())
                    .collect()
            })
            .collect();
        let delivered = s.send_batches_from_all(&payloads).unwrap();
        assert!(delivered.iter().all(|d| d.len() == 2));
    }
    let stats = s.async_stats();
    let rx_after: u64 = s
        .server
        .rx_shard_stats()
        .iter()
        .map(|st| st.datagrams)
        .sum();
    assert_eq!(
        stats.datagrams,
        rx_after - rx_before,
        "every drained datagram reaches exactly one RX shard"
    );
    assert!(stats.rounds >= 3, "one dispatch round per driver call");
    assert!(
        stats.wakeups >= stats.rounds * 2,
        "every round polls both groups: {stats:?}"
    );
    assert_eq!(stats.deferred_rounds, 0);
}

/// Singular `receive_datagram` calls (the handshake/control path) mix
/// freely with event-driven data-path ingress: the RX pool sees one
/// per-peer order regardless of which doorway a datagram used.
#[test]
fn control_path_calls_mix_with_event_driven_ingress() {
    let mut s = Scenario::enterprise(2, UseCase::Nop)
        .seed(0xac12)
        .rx_shards(2)
        .async_ingress(true)
        .build_sharded(2)
        .unwrap();
    // Data over the event loop…
    let d0 = single_datagram(&mut s, 0, 1);
    s.send_wire_datagrams(0, vec![d0]);
    let outs = s.pump_async();
    assert_eq!(outs.len(), 1);
    assert!(matches!(
        outs[0].1,
        Ok(Delivery::Packet { .. } | Delivery::PacketBatch { .. })
    ));
    // …then a control ping through the call-driven doorway, then data
    // again: per-peer framing order must hold across the mix.
    let ping = s.clients[0].build_ping().unwrap();
    for frag in &ping {
        s.server.receive_datagram(0, frag).unwrap();
    }
    let d1 = single_datagram(&mut s, 0, 2);
    s.send_wire_datagrams(0, vec![d1]);
    let outs = s.pump_async();
    assert_eq!(outs.len(), 1);
    assert!(outs[0].1.is_ok(), "replay window must not trip: {outs:?}");
}
