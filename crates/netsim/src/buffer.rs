//! Buffer recycling and packet batching: the allocation backbone of the
//! batched datapath.
//!
//! Every layer of the original datapath moved exactly one [`Packet`]
//! (an owned `Vec<u8>`) at a time and allocated a fresh backing store per
//! packet — the classic per-packet-overhead trap that batching NF runtimes
//! eliminate. This module provides the two building blocks the rest of the
//! stack (click router, VPN channel, EndBox client/server) is built on:
//!
//! * [`BufferPool`] — a shared free-list of `Vec<u8>` backing stores.
//!   Packets built through the `*_in` constructors draw their buffer from
//!   the pool and return it on drop, so a steady-state forwarding loop
//!   performs no heap allocation per packet. [`PoolStats`] exposes
//!   fresh-allocation vs reuse counters so benchmarks can *measure* the
//!   win instead of asserting it.
//! * [`PacketBatch`] — an ordered collection of packets moved through the
//!   stack as one unit: one router invocation, one enclave transition,
//!   one sealed VPN record for many tun-level packets.
//!
//! # Invariants
//!
//! * A batch preserves packet order across every layer boundary; batch
//!   processing is byte-identical to N single-packet calls
//!   (property-tested in `tests/batch_parity.rs`).
//! * A pooled packet's backing store returns to its pool on drop — in
//!   steady state a forwarding loop performs no heap allocation
//!   ([`PoolStats::reuse_fraction`] measures this on both the server
//!   shards and the client's in-enclave pool).
//! * Batch-granular pool traffic ([`BufferPool::take_many`] /
//!   [`BufferPool::give_many`] / [`recycle_packets`]) takes one lock
//!   acquisition per batch, counted by [`PoolStats::batched_ops`].

use crate::packet::Packet;
use std::sync::{Arc, Mutex};

/// Counters describing how effective buffer recycling has been.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out that had to be freshly allocated.
    pub fresh_allocs: u64,
    /// Buffers handed out from the free list (no allocation).
    pub reused: u64,
    /// Buffers returned to the free list.
    pub returned: u64,
    /// Buffers dropped because the free list was full.
    pub discarded: u64,
    /// Batch-granular operations ([`BufferPool::take_many`] /
    /// [`BufferPool::give_many`] calls), each of which acquired the pool
    /// mutex exactly once for its whole batch.
    pub batched_ops: u64,
}

impl PoolStats {
    /// Buffers handed out in total (fresh + reused).
    pub fn handed_out(&self) -> u64 {
        self.fresh_allocs + self.reused
    }

    /// Fraction of hand-outs served from the free list, in [0, 1] —
    /// the steady-state figure of merit for a recycling datapath.
    pub fn reuse_fraction(&self) -> f64 {
        if self.handed_out() == 0 {
            0.0
        } else {
            self.reused as f64 / self.handed_out() as f64
        }
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

/// Default bound on the free list; beyond this, returned buffers are
/// simply freed. Generous enough for deep batches, small enough that an
/// idle pool does not pin memory.
const DEFAULT_MAX_BUFFERS: usize = 4_096;

/// A shared, thread-safe pool of recycled packet backing stores.
///
/// Cloning is cheap; clones share the same free list. A pool handle
/// attached to a [`Packet`] makes the packet return its buffer here when
/// dropped (see [`Packet::from_vec_in`] and the pooled constructors).
///
/// Each take/give acquires the pool mutex once, so dropping a batch of N
/// pooled packets costs N uncontended lock round-trips — tens of
/// nanoseconds each, well below the per-packet costs the pool removes
/// (heap allocation) and the datapath amortises (ecalls, record
/// sealing). Batch-granular recycling under one lock acquisition is a
/// ROADMAP open item for heavily multi-threaded datapaths, where the
/// shared mutex would serialise otherwise-independent workers.
#[derive(Debug, Clone, Default)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
    max_buffers: usize,
}

impl BufferPool {
    /// Creates an empty pool with the default free-list bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_BUFFERS)
    }

    /// Creates an empty pool retaining at most `max_buffers` free buffers.
    pub fn with_capacity(max_buffers: usize) -> Self {
        BufferPool {
            inner: Arc::default(),
            max_buffers,
        }
    }

    /// Takes a cleared buffer with at least `min_capacity` bytes of
    /// capacity, reusing a recycled one when available.
    pub fn take(&self, min_capacity: usize) -> Vec<u8> {
        let mut inner = self.inner.lock().unwrap();
        match inner.free.pop() {
            Some(mut buf) => {
                inner.stats.reused += 1;
                buf.clear();
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity);
                }
                buf
            }
            None => {
                inner.stats.fresh_allocs += 1;
                Vec::with_capacity(min_capacity)
            }
        }
    }

    /// Returns a buffer to the free list (freed instead if the list is
    /// full or the buffer has no capacity worth keeping).
    pub fn give(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let max = if self.max_buffers == 0 {
            DEFAULT_MAX_BUFFERS
        } else {
            self.max_buffers
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.free.len() < max {
            buf.clear();
            inner.free.push(buf);
            inner.stats.returned += 1;
        } else {
            inner.stats.discarded += 1;
        }
    }

    /// Takes `n` cleared buffers of at least `min_capacity` bytes each,
    /// acquiring the pool mutex **once** for the whole batch (vs once per
    /// buffer with [`BufferPool::take`]) — the batch-granular recycling
    /// that keeps per-shard workers from serialising on the pool lock.
    pub fn take_many(&self, n: usize, min_capacity: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(n);
        let mut inner = self.inner.lock().unwrap();
        inner.stats.batched_ops += 1;
        for _ in 0..n {
            match inner.free.pop() {
                Some(mut buf) => {
                    inner.stats.reused += 1;
                    buf.clear();
                    if buf.capacity() < min_capacity {
                        buf.reserve(min_capacity);
                    }
                    out.push(buf);
                }
                None => {
                    inner.stats.fresh_allocs += 1;
                    out.push(Vec::with_capacity(min_capacity));
                }
            }
        }
        out
    }

    /// Returns a whole batch of buffers under **one** lock acquisition
    /// (the batch-granular counterpart of [`BufferPool::give`]).
    pub fn give_many<I: IntoIterator<Item = Vec<u8>>>(&self, bufs: I) {
        let max = if self.max_buffers == 0 {
            DEFAULT_MAX_BUFFERS
        } else {
            self.max_buffers
        };
        let mut inner = self.inner.lock().unwrap();
        inner.stats.batched_ops += 1;
        for mut buf in bufs {
            if buf.capacity() == 0 {
                continue;
            }
            if inner.free.len() < max {
                buf.clear();
                inner.free.push(buf);
                inner.stats.returned += 1;
            } else {
                inner.stats.discarded += 1;
            }
        }
    }

    /// True if `other` shares this pool's free list.
    pub fn same_pool(&self, other: &BufferPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Current recycling counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.inner.lock().unwrap().free.len()
    }
}

/// Recycles a collection of packets back to their pools with **one**
/// [`BufferPool::give_many`] call per distinct pool, instead of one lock
/// round-trip per packet via the `Drop` impl. Non-pooled packets are
/// simply freed.
pub fn recycle_packets<I: IntoIterator<Item = Packet>>(packets: I) {
    // Hot paths feed packets that all share one pool; group by pool
    // identity so mixed batches still recycle correctly.
    let mut groups: Vec<(BufferPool, Vec<Vec<u8>>)> = Vec::new();
    for pkt in packets {
        let (pool, buf) = pkt.into_parts();
        let Some(pool) = pool else { continue };
        match groups.iter_mut().find(|(p, _)| p.same_pool(&pool)) {
            Some((_, bufs)) => bufs.push(buf),
            None => groups.push((pool, vec![buf])),
        }
    }
    for (pool, bufs) in groups {
        pool.give_many(bufs);
    }
}

/// An ordered batch of packets moved through the datapath as one unit.
///
/// Semantically a batch is equivalent to pushing its packets one at a
/// time in order — the batched router/VPN/EndBox paths are required (and
/// property-tested) to produce byte-identical results — but it crosses
/// each layer boundary once instead of once per packet.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PacketBatch {
    packets: Vec<Packet>,
}

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` packets.
    pub fn with_capacity(n: usize) -> Self {
        PacketBatch {
            packets: Vec::with_capacity(n),
        }
    }

    /// Appends a packet, keeping arrival order.
    pub fn push(&mut self, pkt: Packet) {
        self.packets.push(pkt);
    }

    /// Removes and returns the last packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.packets.pop()
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total payload bytes across the batch.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(Packet::len).sum()
    }

    /// Iterates over the packets in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Iterates mutably over the packets in order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Packet> {
        self.packets.iter_mut()
    }

    /// Drains all packets in order, keeping the batch's allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Packet> {
        self.packets.drain(..)
    }

    /// Removes all packets (allocation retained for reuse).
    pub fn clear(&mut self) {
        self.packets.clear();
    }

    /// Consumes the batch, returning the underlying vector.
    pub fn into_vec(self) -> Vec<Packet> {
        self.packets
    }

    /// Borrows the packets as a slice.
    pub fn as_slice(&self) -> &[Packet] {
        &self.packets
    }
}

impl From<Vec<Packet>> for PacketBatch {
    fn from(packets: Vec<Packet>) -> Self {
        PacketBatch { packets }
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        PacketBatch {
            packets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Packet> for PacketBatch {
    fn extend<I: IntoIterator<Item = Packet>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a PacketBatch {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl std::ops::Index<usize> for PacketBatch {
    type Output = Packet;

    fn index(&self, i: usize) -> &Packet {
        &self.packets[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let pool = BufferPool::new();
        let a = pool.take(64);
        assert_eq!(pool.stats().fresh_allocs, 1);
        pool.give(a);
        let b = pool.take(32);
        assert_eq!(pool.stats().reused, 1);
        assert!(b.capacity() >= 32);
        assert_eq!(pool.stats().fresh_allocs, 1, "no second allocation");
    }

    #[test]
    fn pool_grows_small_buffers_on_demand() {
        let pool = BufferPool::new();
        pool.give(Vec::with_capacity(8));
        let buf = pool.take(1024);
        assert!(buf.capacity() >= 1024);
    }

    #[test]
    fn pool_respects_capacity_bound() {
        let pool = BufferPool::with_capacity(2);
        for _ in 0..4 {
            pool.give(Vec::with_capacity(16));
        }
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.stats().returned, 2);
        assert_eq!(pool.stats().discarded, 2);
    }

    #[test]
    fn dropping_pooled_packets_recycles() {
        let pool = BufferPool::new();
        {
            let _p = Packet::udp_in(&pool, addr(1), addr(2), 1, 2, b"payload");
            assert_eq!(pool.stats().fresh_allocs, 1);
        }
        assert_eq!(pool.stats().returned, 1);
        // The next pooled packet reuses the buffer.
        let _q = Packet::udp_in(&pool, addr(1), addr(2), 1, 2, b"other");
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().fresh_allocs, 1);
    }

    #[test]
    fn steady_state_batch_loop_stops_allocating() {
        let pool = BufferPool::new();
        let rounds = 16usize;
        let per_round = 8usize;
        for _ in 0..rounds {
            let mut batch = PacketBatch::with_capacity(per_round);
            for i in 0..per_round {
                batch.push(Packet::tcp_in(
                    &pool,
                    addr(1),
                    addr(2),
                    1000,
                    80,
                    i as u32,
                    b"data",
                ));
            }
            drop(batch);
        }
        let stats = pool.stats();
        assert_eq!(
            stats.fresh_allocs, per_round as u64,
            "first round allocates, rest reuse"
        );
        assert_eq!(stats.reused, ((rounds - 1) * per_round) as u64);
    }

    #[test]
    fn take_many_locks_once_and_reuses() {
        let pool = BufferPool::new();
        let bufs = pool.take_many(8, 64);
        assert_eq!(bufs.len(), 8);
        assert_eq!(pool.stats().fresh_allocs, 8);
        assert_eq!(pool.stats().batched_ops, 1);
        pool.give_many(bufs);
        assert_eq!(pool.stats().returned, 8);
        assert_eq!(pool.stats().batched_ops, 2);
        let again = pool.take_many(8, 32);
        assert_eq!(pool.stats().reused, 8, "second batch reuses all buffers");
        assert_eq!(pool.stats().fresh_allocs, 8, "no new allocations");
        assert!(again.iter().all(|b| b.capacity() >= 32));
    }

    #[test]
    fn give_many_respects_capacity_bound() {
        let pool = BufferPool::with_capacity(3);
        pool.give_many((0..5).map(|_| Vec::with_capacity(16)));
        assert_eq!(pool.free_buffers(), 3);
        assert_eq!(pool.stats().returned, 3);
        assert_eq!(pool.stats().discarded, 2);
        // Zero-capacity buffers are skipped entirely.
        pool.give_many(vec![Vec::new()]);
        assert_eq!(pool.free_buffers(), 3);
    }

    #[test]
    fn recycle_packets_groups_by_pool() {
        let pool_a = BufferPool::new();
        let pool_b = BufferPool::new();
        let mut packets = Vec::new();
        for i in 0..4 {
            packets.push(Packet::udp_in(&pool_a, addr(1), addr(2), 1, i, b"a"));
        }
        packets.push(Packet::udp_in(&pool_b, addr(1), addr(2), 1, 9, b"b"));
        packets.push(Packet::udp(addr(1), addr(2), 1, 10, b"plain"));
        recycle_packets(packets);
        assert_eq!(pool_a.stats().returned, 4);
        assert_eq!(pool_a.stats().batched_ops, 1, "one lock for pool A");
        assert_eq!(pool_b.stats().returned, 1);
        assert!(pool_a.same_pool(&pool_a.clone()));
        assert!(!pool_a.same_pool(&pool_b));
    }

    #[test]
    fn into_parts_detaches_without_returning() {
        let pool = BufferPool::new();
        let p = Packet::udp_in(&pool, addr(1), addr(2), 1, 2, b"payload");
        let (got_pool, buf) = p.into_parts();
        assert!(got_pool.is_some());
        assert_eq!(
            pool.stats().returned,
            0,
            "Drop must not run after into_parts"
        );
        assert!(!buf.is_empty());
        pool.give(buf);
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn batch_preserves_order() {
        let mut batch = PacketBatch::new();
        for port in [5u16, 9, 2] {
            batch.push(Packet::udp(addr(1), addr(2), 1, port, b"x"));
        }
        let ports: Vec<Option<u16>> = batch.iter().map(|p| p.dst_port()).collect();
        assert_eq!(ports, vec![Some(5), Some(9), Some(2)]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.total_bytes(), 3 * (20 + 8 + 1));
        let drained: Vec<Packet> = batch.drain().collect();
        assert_eq!(drained.len(), 3);
        assert!(batch.is_empty());
    }
}
