//! Deterministic network and queueing simulator for the EndBox reproduction.
//!
//! The EndBox paper evaluates on a 7-machine testbed (five SGX-capable
//! 4-core Xeon v5 "class A" machines, two 4-core Xeon v2 "class B"
//! machines, 10 Gbps links, MTU 9000). This crate substitutes that testbed
//! with a simulator:
//!
//! * [`packet`] — real IPv4/TCP/UDP/ICMP packets with checksums; this is the
//!   packet type that flows through the real Click router and VPN code.
//! * [`buffer`] — the batched zero-copy datapath substrate:
//!   [`buffer::BufferPool`] recycles packet backing stores and
//!   [`buffer::PacketBatch`] moves many packets through each layer
//!   boundary (router, enclave, VPN record) as one unit.
//! * [`net`] — a vendored non-blocking socket/reactor layer behind a
//!   pluggable [`net::Transport`] trait: the deterministic in-process
//!   [`net::VirtualWire`] (global arrival stamping) and a real loopback
//!   [`net::OsWire`] UDP backend, both with `sendmmsg`/`recvmmsg`-shaped
//!   bulk I/O ([`net::UdpEndpoint::send_many`] /
//!   [`net::UdpEndpoint::recv_many`]) and a level-triggered
//!   [`net::PollGroup`] — the substrate of the event-driven server
//!   front-end.
//! * [`time`] — virtual nanosecond clock ([`time::SimTime`]).
//! * [`cost`] — the calibrated cycle-cost model ([`cost::CostModel`]) and
//!   the [`cost::CycleMeter`] that functional components charge as they
//!   process packets.
//! * [`resource`] — machines (multi-core, earliest-free-core scheduling)
//!   and links (rate + propagation delay).
//! * [`pipeline`] — replays per-packet cycle charges through the machines
//!   and links, producing throughput, latency and CPU-utilisation figures.
//! * [`traffic`] — iperf-style bulk generators, ping trains.
//! * [`http`] — the page-load and HTTPS GET latency models (Fig. 6,
//!   Table I).
//! * [`impair`] — deterministic loss/duplication/reordering for
//!   robustness tests over flaky (home-office) paths.
//! * [`stats`] — summary statistics and CDF helpers.
//!
//! Everything is deterministic: all randomness comes from caller-seeded
//! RNGs, so every experiment is reproducible bit-for-bit.

pub mod buffer;
pub mod cost;
pub mod http;
pub mod impair;
pub mod net;
pub mod packet;
pub mod pipeline;
pub mod resource;
pub mod stats;
pub mod time;
pub mod traffic;

pub use buffer::{recycle_packets, BufferPool, PacketBatch, PoolStats};
pub use cost::{CostModel, CycleMeter};
pub use packet::Packet;
pub use time::SimTime;
