//! IPv4 packets with TCP/UDP/ICMP payloads — the packet type that flows
//! through the real Click router and VPN implementations.
//!
//! Headers are serialised to real wire format with real Internet checksums,
//! so Click elements (e.g. `CheckIPHeader`, `IPFilter`) operate on byte
//! layouts identical to the ones the paper's Click elements saw.
//!
//! # Pool-aware buffers
//!
//! A [`Packet`] owns its bytes, but the backing store is *pool-aware*: the
//! `*_in` constructors ([`Packet::udp_in`], [`Packet::tcp_in`],
//! [`Packet::from_vec_in`], ...) draw the buffer from a
//! [`crate::buffer::BufferPool`] and return it there when the packet is
//! dropped, so a steady-state forwarding loop recycles buffers instead of
//! allocating per packet. Cloning a pooled packet also draws from the
//! pool. Pool attachment never changes observable behaviour: equality,
//! hashing of bytes, headers and checksums are identical for pooled and
//! plain packets, and the parity tests in `tests/batch_parity.rs` hold the
//! batched pooled datapath to byte-identical outputs.

use crate::buffer::BufferPool;
use crate::time::SimTime;
use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;

/// The QoS/TOS value EndBox clients set on packets already processed by
/// Click, so a receiving EndBox client can skip re-processing (§IV-A).
pub const QOS_ENDBOX_PROCESSED: u8 = 0xeb;

/// Length of the (option-less) IPv4 header we generate.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of the TCP header we generate (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;
/// Length of the ICMP echo header.
pub const ICMP_HEADER_LEN: usize = 8;

/// Errors raised while parsing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the header requires.
    Truncated,
    /// IP version field is not 4 or IHL is unsupported.
    BadVersion,
    /// Header checksum mismatch.
    BadChecksum,
    /// The total-length field disagrees with the buffer size.
    BadLength,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            PacketError::Truncated => "packet truncated",
            PacketError::BadVersion => "unsupported IP version or header length",
            PacketError::BadChecksum => "bad header checksum",
            PacketError::BadLength => "total length mismatch",
        };
        f.write_str(msg)
    }
}

impl Error for PacketError {}

/// IP protocol numbers used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProtocol {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => f.write_str("icmp"),
            IpProtocol::Tcp => f.write_str("tcp"),
            IpProtocol::Udp => f.write_str("udp"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// Parsed view of an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type-of-service / DSCP byte.
    pub tos: u8,
    /// Total packet length including the header.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Carried protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

/// RFC 1071 Internet checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Ipv4Header {
    /// Serialises the header (with correct checksum) into 20 bytes.
    pub fn to_bytes(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut h = [0u8; IPV4_HEADER_LEN];
        h[0] = 0x45; // version 4, IHL 5
        h[1] = self.tos;
        h[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        h[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // flags+fragment offset: DF set, offset 0
        h[6] = 0x40;
        h[8] = self.ttl;
        h[9] = self.protocol.to_u8();
        h[12..16].copy_from_slice(&self.src.octets());
        h[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        h
    }

    /// Parses and validates a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the buffer is too short, the version is
    /// not IPv4, the checksum is wrong, or the length field is inconsistent.
    pub fn parse(bytes: &[u8]) -> Result<Ipv4Header, PacketError> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        if bytes[0] != 0x45 {
            return Err(PacketError::BadVersion);
        }
        if internet_checksum(&bytes[..IPV4_HEADER_LEN]) != 0 {
            return Err(PacketError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN || total_len as usize > bytes.len() {
            return Err(PacketError::BadLength);
        }
        Ok(Ipv4Header {
            tos: bytes[1],
            total_len,
            ident: u16::from_be_bytes([bytes[4], bytes[5]]),
            ttl: bytes[8],
            protocol: IpProtocol::from_u8(bytes[9]),
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
        })
    }
}

/// Click-style packet annotations carried alongside the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketMeta {
    /// Paint annotation (Click's `Paint`/`CheckPaint` elements).
    pub paint: Option<u8>,
    /// Verdict set by the middlebox pipeline.
    pub verdict: Verdict,
    /// When the packet entered the current processing context.
    pub ingress_time: SimTime,
    /// Position of this packet within the batch currently traversing the
    /// router (set by the batched datapath so emissions and drops can be
    /// attributed to their originating input packet; `None` outside batch
    /// processing). An annotation only — never serialised to the wire.
    pub batch_slot: Option<u32>,
}

/// Outcome of middlebox processing for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Not yet decided.
    #[default]
    Pending,
    /// Packet may be forwarded.
    Accept,
    /// Packet must be dropped.
    Drop,
}

/// An IPv4 packet: owned bytes plus simulation annotations.
///
/// The backing store may be attached to a [`BufferPool`] (see the module
/// docs); pool attachment is invisible to equality and hashing.
pub struct Packet {
    data: Vec<u8>,
    /// Pool the backing store returns to on drop (`None` = plain heap).
    pool: Option<BufferPool>,
    /// Annotations (paint, verdict, timestamps).
    pub meta: PacketMeta,
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        let data = match &self.pool {
            Some(pool) => {
                let mut buf = pool.take(self.data.len());
                buf.extend_from_slice(&self.data);
                buf
            }
            None => self.data.clone(),
        };
        Packet {
            data,
            pool: self.pool.clone(),
            meta: self.meta,
        }
    }
}

impl Drop for Packet {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let buf = std::mem::take(&mut self.data);
            if buf.capacity() > 0 {
                pool.give(buf);
            }
        }
    }
}

impl Packet {
    /// Dismantles the packet into its pool handle (if any) and backing
    /// store *without* returning the buffer to the pool, so callers can
    /// recycle many buffers under one lock via [`BufferPool::give_many`]
    /// (see [`crate::buffer::recycle_packets`]).
    pub fn into_parts(mut self) -> (Option<BufferPool>, Vec<u8>) {
        let pool = self.pool.take();
        let data = std::mem::take(&mut self.data);
        // `pool` is now None, so Drop has nothing left to give back.
        (pool, data)
    }
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data && self.meta == other.meta
    }
}

impl Eq for Packet {}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("data", &self.data)
            .field("meta", &self.meta)
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

/// Takes a build buffer from `pool` or the heap.
fn alloc_buffer(pool: Option<&BufferPool>, capacity: usize) -> Vec<u8> {
    match pool {
        Some(pool) => pool.take(capacity),
        None => Vec::with_capacity(capacity),
    }
}

impl Packet {
    /// Wraps raw bytes, validating the IPv4 header.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the header is malformed.
    pub fn from_bytes(data: Vec<u8>) -> Result<Packet, PacketError> {
        Ipv4Header::parse(&data)?;
        Ok(Packet {
            data,
            pool: None,
            meta: PacketMeta::default(),
        })
    }

    /// Like [`Packet::from_bytes`], but adopts the vector into `pool`'s
    /// recycling (zero-copy: the buffer itself becomes pool-managed and
    /// returns to the free list when the packet drops).
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the header is malformed.
    pub fn from_vec_in(pool: &BufferPool, data: Vec<u8>) -> Result<Packet, PacketError> {
        Ipv4Header::parse(&data)?;
        Ok(Packet {
            data,
            pool: Some(pool.clone()),
            meta: PacketMeta::default(),
        })
    }

    /// Like [`Packet::from_bytes`], but copies `bytes` into a recycled
    /// buffer drawn from `pool`.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the header is malformed.
    pub fn from_bytes_in(pool: &BufferPool, bytes: &[u8]) -> Result<Packet, PacketError> {
        Ipv4Header::parse(bytes)?;
        let mut data = pool.take(bytes.len());
        data.extend_from_slice(bytes);
        Ok(Packet {
            data,
            pool: Some(pool.clone()),
            meta: PacketMeta::default(),
        })
    }

    /// Builds a UDP packet.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16, payload: &[u8]) -> Packet {
        Self::udp_impl(None, src, dst, sport, dport, payload)
    }

    /// Builds a UDP packet in a buffer recycled through `pool`.
    pub fn udp_in(
        pool: &BufferPool,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        payload: &[u8],
    ) -> Packet {
        Self::udp_impl(Some(pool), src, dst, sport, dport, payload)
    }

    fn udp_impl(
        pool: Option<&BufferPool>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        payload: &[u8],
    ) -> Packet {
        let udp_len = UDP_HEADER_LEN + payload.len();
        let header = Ipv4Header {
            tos: 0,
            total_len: (IPV4_HEADER_LEN + udp_len) as u16,
            ident: 0,
            ttl: 64,
            protocol: IpProtocol::Udp,
            src,
            dst,
        };
        let mut data = alloc_buffer(pool, header.total_len as usize);
        data.extend_from_slice(&header.to_bytes());
        data.extend_from_slice(&sport.to_be_bytes());
        data.extend_from_slice(&dport.to_be_bytes());
        data.extend_from_slice(&(udp_len as u16).to_be_bytes());
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(payload);
        let csum = l4_checksum(&header, &data[IPV4_HEADER_LEN..]);
        data[IPV4_HEADER_LEN + 6..IPV4_HEADER_LEN + 8].copy_from_slice(&csum.to_be_bytes());
        Packet {
            data,
            pool: pool.cloned(),
            meta: PacketMeta::default(),
        }
    }

    /// Builds a TCP packet (header flags: PSH|ACK, fixed window).
    pub fn tcp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        seq: u32,
        payload: &[u8],
    ) -> Packet {
        Self::tcp_impl(None, src, dst, sport, dport, seq, payload)
    }

    /// Builds a TCP packet in a buffer recycled through `pool`.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_in(
        pool: &BufferPool,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        seq: u32,
        payload: &[u8],
    ) -> Packet {
        Self::tcp_impl(Some(pool), src, dst, sport, dport, seq, payload)
    }

    #[allow(clippy::too_many_arguments)]
    fn tcp_impl(
        pool: Option<&BufferPool>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        seq: u32,
        payload: &[u8],
    ) -> Packet {
        let tcp_len = TCP_HEADER_LEN + payload.len();
        let header = Ipv4Header {
            tos: 0,
            total_len: (IPV4_HEADER_LEN + tcp_len) as u16,
            ident: 0,
            ttl: 64,
            protocol: IpProtocol::Tcp,
            src,
            dst,
        };
        let mut data = alloc_buffer(pool, header.total_len as usize);
        data.extend_from_slice(&header.to_bytes());
        data.extend_from_slice(&sport.to_be_bytes());
        data.extend_from_slice(&dport.to_be_bytes());
        data.extend_from_slice(&seq.to_be_bytes());
        data.extend_from_slice(&0u32.to_be_bytes()); // ack
        data.extend_from_slice(&[0x50, 0x18]); // offset 5, PSH|ACK
        data.extend_from_slice(&0xffffu16.to_be_bytes()); // window
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&[0, 0]); // urgent
        data.extend_from_slice(payload);
        let csum = l4_checksum(&header, &data[IPV4_HEADER_LEN..]);
        data[IPV4_HEADER_LEN + 16..IPV4_HEADER_LEN + 18].copy_from_slice(&csum.to_be_bytes());
        Packet {
            data,
            pool: pool.cloned(),
            meta: PacketMeta::default(),
        }
    }

    /// Builds an ICMP echo request.
    pub fn icmp_echo_request(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload: &[u8],
    ) -> Packet {
        Self::icmp_echo(src, dst, 8, ident, seq, payload)
    }

    /// Builds an ICMP echo reply.
    pub fn icmp_echo_reply(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload: &[u8],
    ) -> Packet {
        Self::icmp_echo(src, dst, 0, ident, seq, payload)
    }

    fn icmp_echo(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        icmp_type: u8,
        ident: u16,
        seq: u16,
        payload: &[u8],
    ) -> Packet {
        let icmp_len = ICMP_HEADER_LEN + payload.len();
        let header = Ipv4Header {
            tos: 0,
            total_len: (IPV4_HEADER_LEN + icmp_len) as u16,
            ident: 0,
            ttl: 64,
            protocol: IpProtocol::Icmp,
            src,
            dst,
        };
        let mut data = Vec::with_capacity(header.total_len as usize);
        data.extend_from_slice(&header.to_bytes());
        data.push(icmp_type);
        data.push(0); // code
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&ident.to_be_bytes());
        data.extend_from_slice(&seq.to_be_bytes());
        data.extend_from_slice(payload);
        let csum = internet_checksum(&data[IPV4_HEADER_LEN..]);
        data[IPV4_HEADER_LEN + 2..IPV4_HEADER_LEN + 4].copy_from_slice(&csum.to_be_bytes());
        Packet {
            data,
            pool: None,
            meta: PacketMeta::default(),
        }
    }

    /// The pool this packet's buffer recycles through, if any.
    pub fn buffer_pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// Parsed IPv4 header.
    ///
    /// # Panics
    ///
    /// Panics if the packet bytes have been corrupted since construction;
    /// construction always validates.
    pub fn header(&self) -> Ipv4Header {
        Ipv4Header::parse(&self.data).expect("packet invariant: valid IPv4 header")
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the packet has no bytes (never the case for valid packets).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the packet, returning its bytes. The buffer leaves pool
    /// management (the caller owns it outright).
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.data)
    }

    /// The TOS/QoS byte.
    pub fn tos(&self) -> u8 {
        self.data[1]
    }

    /// Rewrites the TOS/QoS byte, fixing the header checksum.
    pub fn set_tos(&mut self, tos: u8) {
        self.data[1] = tos;
        self.data[10] = 0;
        self.data[11] = 0;
        let csum = internet_checksum(&self.data[..IPV4_HEADER_LEN]);
        self.data[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Bytes after the IP header (the L4 segment).
    pub fn ip_payload(&self) -> &[u8] {
        &self.data[IPV4_HEADER_LEN..]
    }

    /// Application payload (after the L4 header), if the protocol is known.
    pub fn app_payload(&self) -> &[u8] {
        let l4 = self.ip_payload();
        let skip = match self.header().protocol {
            IpProtocol::Tcp => TCP_HEADER_LEN,
            IpProtocol::Udp => UDP_HEADER_LEN,
            IpProtocol::Icmp => ICMP_HEADER_LEN,
            IpProtocol::Other(_) => 0,
        };
        if l4.len() >= skip {
            &l4[skip..]
        } else {
            &[]
        }
    }

    /// Rewrites the source address (NAT-style), fixing the IP header
    /// checksum and the L4 checksum (which covers the pseudo-header).
    pub fn set_src(&mut self, addr: Ipv4Addr) {
        self.data[12..16].copy_from_slice(&addr.octets());
        self.fix_checksums_after_addr_change();
    }

    /// Rewrites the destination address, fixing both checksums.
    pub fn set_dst(&mut self, addr: Ipv4Addr) {
        self.data[16..20].copy_from_slice(&addr.octets());
        self.fix_checksums_after_addr_change();
    }

    /// Rewrites the TCP/UDP source port (NAPT-style), fixing the L4
    /// checksum. No-op for other protocols.
    pub fn set_src_port(&mut self, port: u16) {
        self.set_l4_port(0, port);
    }

    /// Rewrites the TCP/UDP destination port, fixing the L4 checksum.
    /// No-op for other protocols.
    pub fn set_dst_port(&mut self, port: u16) {
        self.set_l4_port(2, port);
    }

    fn set_l4_port(&mut self, field_off: usize, port: u16) {
        let header = self.header();
        let csum_off = match header.protocol {
            IpProtocol::Tcp => IPV4_HEADER_LEN + 16,
            IpProtocol::Udp => IPV4_HEADER_LEN + 6,
            _ => return,
        };
        let off = IPV4_HEADER_LEN + field_off;
        if self.data.len() < off + 2 || self.data.len() < csum_off + 2 {
            return;
        }
        self.data[off..off + 2].copy_from_slice(&port.to_be_bytes());
        self.data[csum_off] = 0;
        self.data[csum_off + 1] = 0;
        let csum = l4_checksum(&header, &self.data[IPV4_HEADER_LEN..]);
        self.data[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());
    }

    fn fix_checksums_after_addr_change(&mut self) {
        // IP header checksum.
        self.data[10] = 0;
        self.data[11] = 0;
        let csum = internet_checksum(&self.data[..IPV4_HEADER_LEN]);
        self.data[10..12].copy_from_slice(&csum.to_be_bytes());
        // L4 checksum covers the pseudo-header for TCP/UDP.
        let header = self.header();
        let csum_off = match header.protocol {
            IpProtocol::Tcp => Some(IPV4_HEADER_LEN + 16),
            IpProtocol::Udp => Some(IPV4_HEADER_LEN + 6),
            _ => None,
        };
        if let Some(off) = csum_off {
            if self.data.len() >= off + 2 {
                self.data[off] = 0;
                self.data[off + 1] = 0;
                let csum = l4_checksum(&header, &self.data[IPV4_HEADER_LEN..]);
                self.data[off..off + 2].copy_from_slice(&csum.to_be_bytes());
            }
        }
    }

    /// Replaces the application payload in place with an equal-length
    /// buffer (used by the in-enclave TLS decryption element, which swaps
    /// ciphertext for plaintext without changing packet sizes). Fixes the
    /// L4 checksum.
    ///
    /// # Panics
    ///
    /// Panics if `new_payload` has a different length than the current
    /// application payload.
    pub fn replace_app_payload(&mut self, new_payload: &[u8]) {
        let header = self.header();
        let skip = match header.protocol {
            IpProtocol::Tcp => TCP_HEADER_LEN,
            IpProtocol::Udp => UDP_HEADER_LEN,
            IpProtocol::Icmp => ICMP_HEADER_LEN,
            IpProtocol::Other(_) => 0,
        };
        let start = IPV4_HEADER_LEN + skip;
        assert_eq!(
            self.data.len() - start,
            new_payload.len(),
            "replacement payload must have equal length"
        );
        self.data[start..].copy_from_slice(new_payload);
        // Recompute the L4 checksum over the rewritten segment.
        let csum_off = match header.protocol {
            IpProtocol::Tcp => Some(IPV4_HEADER_LEN + 16),
            IpProtocol::Udp => Some(IPV4_HEADER_LEN + 6),
            IpProtocol::Icmp => Some(IPV4_HEADER_LEN + 2),
            IpProtocol::Other(_) => None,
        };
        if let Some(off) = csum_off {
            self.data[off] = 0;
            self.data[off + 1] = 0;
            let csum = match header.protocol {
                IpProtocol::Icmp => internet_checksum(&self.data[IPV4_HEADER_LEN..]),
                _ => l4_checksum(&header, &self.data[IPV4_HEADER_LEN..]),
            };
            self.data[off..off + 2].copy_from_slice(&csum.to_be_bytes());
        }
    }

    /// Source port for TCP/UDP packets.
    pub fn src_port(&self) -> Option<u16> {
        match self.header().protocol {
            IpProtocol::Tcp | IpProtocol::Udp => {
                let p = self.ip_payload();
                (p.len() >= 2).then(|| u16::from_be_bytes([p[0], p[1]]))
            }
            _ => None,
        }
    }

    /// Destination port for TCP/UDP packets.
    pub fn dst_port(&self) -> Option<u16> {
        match self.header().protocol {
            IpProtocol::Tcp | IpProtocol::Udp => {
                let p = self.ip_payload();
                (p.len() >= 4).then(|| u16::from_be_bytes([p[2], p[3]]))
            }
            _ => None,
        }
    }
}

/// TCP/UDP checksum with the IPv4 pseudo-header.
fn l4_checksum(header: &Ipv4Header, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&header.src.octets());
    pseudo.extend_from_slice(&header.dst.octets());
    pseudo.push(0);
    pseudo.push(header.protocol.to_u8());
    pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(segment);
    let c = internet_checksum(&pseudo);
    if c == 0 {
        0xffff
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn udp_roundtrip() {
        let p = Packet::udp(addr(1), addr(2), 1234, 53, b"query");
        let h = p.header();
        assert_eq!(h.protocol, IpProtocol::Udp);
        assert_eq!(h.src, addr(1));
        assert_eq!(h.dst, addr(2));
        assert_eq!(p.src_port(), Some(1234));
        assert_eq!(p.dst_port(), Some(53));
        assert_eq!(p.app_payload(), b"query");
        assert_eq!(p.len(), 20 + 8 + 5);
        // Re-parse from raw bytes.
        let p2 = Packet::from_bytes(p.bytes().to_vec()).unwrap();
        assert_eq!(p2.header(), h);
    }

    #[test]
    fn tcp_builder() {
        let p = Packet::tcp(addr(3), addr(4), 40000, 443, 7, b"hello tls");
        assert_eq!(p.header().protocol, IpProtocol::Tcp);
        assert_eq!(p.dst_port(), Some(443));
        assert_eq!(p.app_payload(), b"hello tls");
    }

    #[test]
    fn icmp_builder() {
        let p = Packet::icmp_echo_request(addr(1), addr(9), 77, 3, &[0xab; 8]);
        assert_eq!(p.header().protocol, IpProtocol::Icmp);
        assert_eq!(p.src_port(), None);
        assert_eq!(p.app_payload(), &[0xab; 8]);
        // ICMP checksum must validate.
        assert_eq!(internet_checksum(p.ip_payload()), 0);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let p = Packet::udp(addr(1), addr(2), 1, 2, b"x");
        let mut raw = p.into_bytes();
        raw[12] ^= 0xff; // corrupt src address
        assert_eq!(Packet::from_bytes(raw), Err(PacketError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::from_bytes(vec![0x45, 0, 0]),
            Err(PacketError::Truncated)
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = Packet::udp(addr(1), addr(2), 1, 2, b"x").into_bytes();
        raw[0] = 0x46; // IHL 6 unsupported
        assert_eq!(Packet::from_bytes(raw), Err(PacketError::BadVersion));
    }

    #[test]
    fn set_tos_keeps_header_valid() {
        let mut p = Packet::udp(addr(1), addr(2), 5, 6, b"data");
        p.set_tos(QOS_ENDBOX_PROCESSED);
        assert_eq!(p.tos(), 0xeb);
        // Header still parses (checksum fixed up).
        assert_eq!(Packet::from_bytes(p.bytes().to_vec()).unwrap().tos(), 0xeb);
    }

    #[test]
    fn address_rewrite_keeps_packet_valid() {
        let mut p = Packet::tcp(addr(1), addr(2), 40000, 80, 7, b"nat me");
        p.set_src(Ipv4Addr::new(192, 0, 2, 1));
        p.set_dst(Ipv4Addr::new(198, 51, 100, 2));
        let reparsed = Packet::from_bytes(p.bytes().to_vec()).unwrap();
        assert_eq!(reparsed.header().src, Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(reparsed.header().dst, Ipv4Addr::new(198, 51, 100, 2));
        assert_eq!(reparsed.app_payload(), b"nat me");
    }

    #[test]
    fn replace_app_payload_same_length() {
        let mut p = Packet::udp(addr(1), addr(2), 10, 20, b"ciphertext!!");
        p.replace_app_payload(b"plaintext!!!");
        assert_eq!(p.app_payload(), b"plaintext!!!");
        // Header still valid after the rewrite.
        assert!(Packet::from_bytes(p.bytes().to_vec()).is_ok());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn replace_app_payload_rejects_length_change() {
        let mut p = Packet::udp(addr(1), addr(2), 10, 20, b"abc");
        p.replace_app_payload(b"abcd");
    }

    #[test]
    fn checksum_known_value() {
        // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn udp_packets_always_valid(
            sport in any::<u16>(),
            dport in any::<u16>(),
            payload in prop::collection::vec(any::<u8>(), 0..1200),
        ) {
            let p = Packet::udp(addr(1), addr(2), sport, dport, &payload);
            prop_assert!(Packet::from_bytes(p.bytes().to_vec()).is_ok());
            prop_assert_eq!(p.app_payload(), &payload[..]);
        }

        #[test]
        fn tos_rewrite_preserves_validity(tos in any::<u8>()) {
            let mut p = Packet::udp(addr(1), addr(2), 1, 2, b"payload");
            p.set_tos(tos);
            prop_assert!(Packet::from_bytes(p.bytes().to_vec()).is_ok());
        }

        #[test]
        fn odd_length_checksum_consistent(payload in prop::collection::vec(any::<u8>(), 0..64)) {
            // Checksum of data with its own checksum appended folds to zero.
            let c = internet_checksum(&payload);
            let mut with = payload.clone();
            // Only meaningful for even-length data (checksum is 16-bit aligned).
            if with.len() % 2 == 0 {
                with.extend_from_slice(&c.to_be_bytes());
                prop_assert_eq!(internet_checksum(&with), 0);
            }
        }
    }
}
