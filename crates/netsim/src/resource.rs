//! Simulated machines and links.
//!
//! A [`Machine`] schedules jobs (cycle counts) onto its cores using
//! earliest-free-core dispatch; a [`Link`] serialises transmissions at its
//! configured rate plus propagation delay. Both track busy time so
//! experiments can report CPU utilisation (Fig. 10).

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static description of a machine class.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name ("class A", "class B").
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Core frequency in Hz.
    pub freq_hz: u64,
    /// Hyper-threading yield: effective throughput multiplier when all
    /// logical threads are busy (1.0 = HT off, paper machines run HT on).
    pub ht_factor: f64,
}

impl MachineSpec {
    /// Class A: SGX-capable 4-core Xeon v5 (§V-B).
    pub fn class_a() -> Self {
        MachineSpec {
            name: "class A (Xeon v5, SGX)",
            cores: 4,
            freq_hz: 3_500_000_000,
            ht_factor: 1.3,
        }
    }

    /// Class B: non-SGX 4-core Xeon v2 (§V-B).
    pub fn class_b() -> Self {
        MachineSpec {
            name: "class B (Xeon v2)",
            cores: 4,
            freq_hz: 3_300_000_000,
            ht_factor: 1.3,
        }
    }

    /// Number of execution slots the simulator models: hyper-threading
    /// yields `ceil(cores * ht_factor)` full-speed slots (an underloaded
    /// machine runs single threads at full core speed; the aggregate
    /// capacity matches the HT-enabled throughput).
    pub fn slots(&self) -> usize {
        (self.cores as f64 * self.ht_factor).ceil() as usize
    }

    /// Aggregate cycle capacity per second with HT.
    pub fn capacity_cycles_per_sec(&self) -> f64 {
        self.slots() as f64 * self.freq_hz as f64
    }
}

/// A multi-core machine executing jobs measured in cycles.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    /// Next-free instants, one per logical execution slot.
    slots: BinaryHeap<Reverse<SimTime>>,
    busy: SimDuration,
    /// Multiplier applied to job durations (process-contention model).
    contention: f64,
}

impl Machine {
    /// Creates a machine with `spec.slots()` full-speed execution slots.
    pub fn new(spec: MachineSpec) -> Self {
        let n_slots = spec.slots();
        let slots = (0..n_slots).map(|_| Reverse(SimTime::ZERO)).collect();
        Machine {
            spec,
            slots,
            busy: SimDuration::ZERO,
            contention: 1.0,
        }
    }

    /// The machine's spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Sets a contention multiplier ≥ 1.0 modelling scheduler overhead when
    /// many single-threaded processes (one OpenVPN instance per client,
    /// §V-E) oversubscribe the cores.
    pub fn set_contention(&mut self, factor: f64) {
        assert!(factor >= 1.0);
        self.contention = factor;
    }

    /// Duration a job of `cycles` takes on one slot (full core speed).
    fn job_duration(&self, cycles: u64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 * self.contention / self.spec.freq_hz as f64)
    }

    /// Schedules a job that becomes ready at `ready`; returns completion.
    pub fn run_job(&mut self, ready: SimTime, cycles: u64) -> SimTime {
        let Reverse(free) = self.slots.pop().expect("machine has slots");
        let start = ready.max(free);
        let d = self.job_duration(cycles);
        let end = start + d;
        self.busy += d;
        self.slots.push(Reverse(end));
        end
    }

    /// Schedules a job pinned to run serially after all previously pinned
    /// jobs of the same flow (single-threaded process model): the caller
    /// supplies and updates the flow's own `serial_free` watermark.
    pub fn run_job_serial(
        &mut self,
        ready: SimTime,
        cycles: u64,
        serial_free: &mut SimTime,
    ) -> SimTime {
        let start = ready.max(*serial_free);
        let d = self.job_duration(cycles);
        let end = start + d;
        self.busy += d;
        *serial_free = end;
        end
    }

    /// Schedules a job belonging to a single-threaded flow *and* competing
    /// for the machine's execution slots: it starts no earlier than the
    /// flow's previous job finished, and no earlier than a slot frees up.
    pub fn run_job_flow(&mut self, ready: SimTime, cycles: u64, flow: &mut SimTime) -> SimTime {
        let Reverse(free) = self.slots.pop().expect("machine has slots");
        let start = ready.max(free).max(*flow);
        let d = self.job_duration(cycles);
        let end = start + d;
        self.busy += d;
        self.slots.push(Reverse(end));
        *flow = end;
        end
    }

    /// Total busy time across slots.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilisation in [0, 1] over `elapsed` (can exceed 1 if oversubscribed;
    /// clamped).
    pub fn utilisation(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        let slots = self.spec.slots() as f64;
        (self.busy.as_secs_f64() / (elapsed.as_secs_f64() * slots)).min(1.0)
    }
}

/// A point-to-point link with a serialised transmit queue.
#[derive(Debug, Clone)]
pub struct Link {
    rate_bps: u64,
    delay: SimDuration,
    free_at: SimTime,
    busy: SimDuration,
}

impl Link {
    /// Creates a link with `rate_bps` capacity and `delay` propagation.
    pub fn new(rate_bps: u64, delay: SimDuration) -> Self {
        Link {
            rate_bps,
            delay,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
        }
    }

    /// The paper's testbed link: 10 Gbps, 30 µs one-way.
    pub fn ten_gbps() -> Self {
        Link::new(10_000_000_000, SimDuration::from_micros(30))
    }

    /// Transmits `bytes` starting no earlier than `ready`; returns arrival
    /// time at the far end.
    pub fn transmit(&mut self, ready: SimTime, bytes: usize) -> SimTime {
        let start = ready.max(self.free_at);
        let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps as f64);
        self.free_at = start + tx;
        self.busy += tx;
        self.free_at + self.delay
    }

    /// One-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Link rate in bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_parallelism() {
        let mut m = Machine::new(MachineSpec::class_a());
        let n = MachineSpec::class_a().slots();
        assert_eq!(n, 6, "4 cores x 1.3 HT -> 6 slots");
        // All slots run equal jobs in parallel.
        let ends: Vec<SimTime> = (0..n)
            .map(|_| m.run_job(SimTime::ZERO, 1_000_000))
            .collect();
        assert!(ends.iter().all(|&e| e == ends[0]));
        // One more job queues behind them.
        let extra = m.run_job(SimTime::ZERO, 1_000_000);
        assert!(extra > ends[0]);
    }

    #[test]
    fn serial_jobs_do_not_overlap() {
        let mut m = Machine::new(MachineSpec::class_a());
        let mut flow = SimTime::ZERO;
        let e1 = m.run_job_serial(SimTime::ZERO, 1_000, &mut flow);
        let e2 = m.run_job_serial(SimTime::ZERO, 1_000, &mut flow);
        assert!(e2 > e1);
        assert_eq!(e2.as_nanos(), 2 * e1.as_nanos());
    }

    #[test]
    fn contention_slows_jobs() {
        let mut fast = Machine::new(MachineSpec::class_b());
        let mut slow = Machine::new(MachineSpec::class_b());
        slow.set_contention(2.0);
        let ef = fast.run_job(SimTime::ZERO, 1_000_000);
        let es = slow.run_job(SimTime::ZERO, 1_000_000);
        assert_eq!(es.as_nanos(), 2 * ef.as_nanos());
    }

    #[test]
    fn link_serialises() {
        let mut l = Link::new(8_000_000, SimDuration::from_millis(1)); // 1 B/us
        let a1 = l.transmit(SimTime::ZERO, 1_000); // tx 1ms
        assert_eq!(a1.as_nanos(), 2_000_000); // 1ms tx + 1ms delay
        let a2 = l.transmit(SimTime::ZERO, 1_000); // queued behind first
        assert_eq!(a2.as_nanos(), 3_000_000);
    }

    #[test]
    fn utilisation_bounds() {
        let mut m = Machine::new(MachineSpec::class_a());
        m.run_job(SimTime::ZERO, 3_500_000); // ~1.54ms on one slot (HT)
        let u = m.utilisation(SimDuration::from_millis(2));
        assert!(u > 0.0 && u < 1.0, "{u}");
    }
}
