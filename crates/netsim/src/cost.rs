//! The calibrated cycle-cost model and the [`CycleMeter`] that functional
//! components charge while processing packets.
//!
//! # Calibration
//!
//! Absolute performance in the paper comes from its hardware testbed; this
//! reproduction charges *cycles* for each operation and replays them
//! through simulated machines. The constants below were fitted to the
//! paper's own measurements (Fig. 8) using a three-term model per tunnel
//! packet of payload `s` fragmented into `n = ceil(s / MTU_PAYLOAD)` wire
//! datagrams:
//!
//! ```text
//! cycles(s) = per_write + n * per_fragment + s * per_byte
//! ```
//!
//! Fitting vanilla OpenVPN's published 256 B / 1 500 B / 64 KB throughputs
//! (152 / 813 / 3 168 Mbps on 3.5 GHz class-A machines) yields
//! `per_write ≈ 4 000`, `per_fragment ≈ 42 000`, `per_byte ≈ 3.6`; the
//! 42 000-cycle (12 µs) per-datagram cost matches OpenVPN's well-known
//! ~100 kpps single-core ceiling. The EndBox deltas (partitioning ≈ 6 800
//! cycles + 1 cycle/B; SGX hardware ≈ 23 600 cycles + 0.2 cycles/B per
//! packet) were fitted the same way from the paper's EndBox-SIM and
//! EndBox-SGX curves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cycle counter. Functional components (`endbox-vpn`,
/// `endbox-click`, `endbox-sgx`) charge cycles here as they process
/// packets; the timing layer drains it per packet.
///
/// Cloning is cheap and clones share the same counter.
#[derive(Debug, Clone, Default)]
pub struct CycleMeter(Arc<AtomicU64>);

impl CycleMeter {
    /// Creates a meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the meter.
    pub fn add(&self, cycles: u64) {
        self.0.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Current value.
    pub fn read(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Returns the current value and resets to zero.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Per-operation cycle costs. See the module docs for calibration
/// provenance. All `*_per_byte` values are in cycles/byte; the rest are
/// cycles per event.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // --- OpenVPN user-space data path -------------------------------------
    /// Per tun read/write: syscall + OpenVPN bookkeeping.
    pub vpn_per_write: u64,
    /// Per UDP datagram on the wire: encapsulation + sendto/recvfrom on
    /// the *client* (tun-device side).
    pub vpn_per_fragment: u64,
    /// Per UDP datagram on the *server*: socket recv + virtual-interface
    /// write; cheaper than the client path (no tun read + smaller
    /// per-packet bookkeeping; fitted to the 6.5 Gbps server plateau of
    /// Fig. 10a).
    pub vpn_server_per_fragment: u64,
    /// AES-128-CBC encryption/decryption, software with AES-NI class CPU.
    pub cbc_per_byte: f64,
    /// HMAC-SHA256 authentication.
    pub hmac_per_byte: f64,
    /// Fixed crypto cost per packet (IV generation, padding, MAC setup).
    /// AES key-schedule expansion is **not** part of this fixed cost:
    /// the data channel expands each direction's schedule once at
    /// session establishment and caches it (`vpn::channel::DataChannel`).
    /// Earlier revisions re-ran the expansion inside every seal/open,
    /// which would belong here; after the caching fix the per-record
    /// fixed work is exactly what this constant charges.
    pub crypto_per_packet: u64,
    /// memcpy within user space.
    pub memcpy_per_byte: f64,

    // --- SGX (charged by `endbox-sgx` according to its mode) --------------
    /// One enclave transition pair (ecall in + out) in hardware mode,
    /// including TLB/cache pollution.
    pub ecall_hw: u64,
    /// One enclave transition in SDK simulation mode (a guarded call).
    pub ecall_sim: u64,
    /// Extra cost per byte touched inside the EPC (memory encryption
    /// engine) in hardware mode.
    pub epc_per_byte: f64,
    /// Partitioning overhead per packet: copy in/out of enclave memory and
    /// pointer sanitisation (both modes).
    pub partition_per_packet: u64,
    /// Per-byte copy across the enclave boundary.
    pub partition_per_byte: f64,
    /// Reading SGX trusted time (ocall to the platform service).
    pub trusted_time_read: u64,
    /// EPC paging: cost per 4 KB page evicted/loaded beyond the 128 MB EPC.
    pub epc_page_fault: u64,

    // --- Socket front-end (the `net` reactor layer) -----------------------
    /// One non-blocking `recvfrom` on a ready socket: syscall entry/exit
    /// plus socket-buffer bookkeeping (the copy is `socket_per_byte`).
    pub socket_recv_fixed: u64,
    /// One `sendto` on an unblocked socket.
    pub socket_send_fixed: u64,
    /// Per-byte copy across the socket buffer (either direction).
    pub socket_per_byte: f64,
    /// One event-loop wakeup: `epoll_wait` returning, the thread being
    /// rescheduled, and the readiness dispatch — paid once per *wakeup*,
    /// not per datagram, which is exactly the amortisation an
    /// event-driven front-end buys (see
    /// [`crate::pipeline::AsyncFrontEndModel`]). A call-driven front-end
    /// pays it per datagram (one blocking receive per wire datagram).
    pub event_loop_wakeup: u64,
    /// Per-*call* cost of crossing the kernel boundary for socket I/O:
    /// syscall entry/exit (trap, register save/restore, spectre
    /// mitigations) plus waking the blocked receiver's scheduler path.
    /// A per-datagram transport pays this once per datagram; the bulk
    /// `sendmmsg`/`recvmmsg` shape pays it once per *batch* of up to
    /// `n` datagrams, which is the whole saving modelled by
    /// [`crate::pipeline::SyscallBatchModel`]. Kept separate from
    /// `socket_recv_fixed`/`socket_send_fixed` (per-datagram buffer
    /// bookkeeping, paid either way) so one measured charge replays
    /// honestly under every bulk size.
    pub syscall_per_call: u64,
    /// One ring doorbell: telling the kernel a batch of submission
    /// descriptors is ready (`io_uring_enter`-shaped, with the
    /// completion side polled from shared memory). Replaces
    /// `syscall_per_call` on the ring backend — paid once per submitted
    /// *batch*, and cheaper than a full bulk syscall because no data
    /// moves across the boundary at the doorbell itself.
    pub doorbell_per_batch: u64,
    /// Per-frame descriptor bookkeeping on a ring transport: filling an
    /// SQE / harvesting a CQE (ring backend) or consuming an RX
    /// descriptor and replenishing the fill ring (XDP backend).
    /// Replaces `socket_recv_fixed`/`socket_send_fixed` on those
    /// backends — the per-datagram socket-buffer machinery is gone.
    pub descriptor_per_frame: u64,
    /// The in-kernel receive-path share of [`vpn_server_per_fragment`]:
    /// driver RX, skb allocation, IP/UDP demux and socket-queue insert.
    /// Socket transports pay it inline on the lane that drains the
    /// socket; a ring or zero-copy frame backend delivers straight into
    /// user-visible descriptor rings and sheds exactly this share (the
    /// user-space framing remainder is paid by every backend). Must stay
    /// below [`vpn_server_per_fragment`].
    ///
    /// [`vpn_server_per_fragment`]: CostModel::vpn_server_per_fragment
    pub kernel_rx_per_fragment: u64,

    // --- Click ------------------------------------------------------------
    /// Handing a packet from OpenVPN/kernel to a server-side Click process
    /// and back (socket + queue), fixed part.
    pub click_fetch_per_packet: u64,
    /// Per-byte part of the same.
    pub click_fetch_per_byte: f64,
    /// Base cost of traversing one Click element.
    pub click_element_base: u64,
    /// Per-packet IPC between the OpenVPN process and an attached Click
    /// process (two process crossings + wakeups) in the OpenVPN+Click
    /// baseline.
    pub click_ipc_per_packet: u64,
    /// Per-packet device read/write when a Click instance owns its own
    /// devices (the vanilla-Click deployment): poll + raw socket I/O per
    /// FromDevice/ToDevice traversal.
    pub device_io_per_packet: u64,

    // --- Element-specific -------------------------------------------------
    /// `RoundRobinSwitch`-style flow dispatch per packet.
    pub lb_per_packet: u64,
    /// `IPFilter` rule evaluation, per rule per packet.
    pub fw_per_rule: u64,
    /// Aho–Corasick scan, per byte, outside an enclave.
    pub ids_scan_per_byte: f64,
    /// Fixed IDS cost per packet (header predicate checks).
    pub ids_per_packet: u64,
    /// Multiplier for cache-unfriendly in-enclave processing (EPC memory
    /// encryption hits pattern-matching hardest; §V-E discusses how
    /// computation-intensive functions behave).
    pub epc_amplification: f64,
    /// Rate-limiter bookkeeping per packet (`TrustedSplitter`).
    pub splitter_per_packet: u64,
    /// `gettimeofday`-style syscall (untrusted time).
    pub syscall_time_read: u64,

    /// Schnorr/RSA-class signature verification (config files, handshake
    /// certificates) inside the enclave.
    pub sig_verify: u64,

    // --- Configuration hot-swap (Table II) ---------------------------------
    /// Parsing + graph replacement base cost.
    pub hotswap_base: u64,
    /// Per-element instantiation during hot-swap.
    pub element_instantiate: u64,
    /// File-descriptor setup for `FromDevice`/`ToDevice` — paid by vanilla
    /// Click on every hot-swap, avoided by EndBox "because OpenVPN took
    /// care of this task earlier" (§V-F).
    pub device_setup: u64,

    // --- Machine / link parameters ----------------------------------------
    /// Wire MTU payload available to the tunnel after overheads (links are
    /// configured with MTU 9000 in the paper).
    pub mtu_payload: usize,
}

impl CostModel {
    /// The calibrated model described in the module docs.
    pub fn calibrated() -> Self {
        CostModel {
            vpn_per_write: 4_000,
            vpn_per_fragment: 42_000,
            vpn_server_per_fragment: 24_000,
            cbc_per_byte: 2.4,
            hmac_per_byte: 1.2,
            crypto_per_packet: 1_500,
            memcpy_per_byte: 0.4,

            ecall_hw: 23_600,
            ecall_sim: 900,
            epc_per_byte: 0.22,
            partition_per_packet: 5_900,
            partition_per_byte: 1.0,
            trusted_time_read: 40_000,
            epc_page_fault: 40_000,

            socket_recv_fixed: 3_800,
            socket_send_fixed: 3_500,
            socket_per_byte: 0.3,
            event_loop_wakeup: 18_000,
            syscall_per_call: 21_000,
            doorbell_per_batch: 7_000,
            descriptor_per_frame: 600,
            kernel_rx_per_fragment: 14_000,

            click_fetch_per_packet: 900,
            click_fetch_per_byte: 3.0,
            click_element_base: 60,
            click_ipc_per_packet: 16_000,
            device_io_per_packet: 950,

            lb_per_packet: 1_050,
            fw_per_rule: 25,
            ids_scan_per_byte: 2.0,
            ids_per_packet: 700,
            epc_amplification: 5.5,
            splitter_per_packet: 1_800,
            syscall_time_read: 950,

            sig_verify: 230_000,

            hotswap_base: 2_300_000,
            element_instantiate: 100_000,
            device_setup: 5_500_000,

            mtu_payload: 8_960,
        }
    }

    /// Cycles to AES-CBC + HMAC protect (or unprotect) `bytes` of payload.
    pub fn crypto_cycles(&self, bytes: usize) -> u64 {
        self.crypto_per_packet + ((self.cbc_per_byte + self.hmac_per_byte) * bytes as f64) as u64
    }

    /// Cycles for integrity-only protection (ISP mode, §IV-A).
    pub fn integrity_only_cycles(&self, bytes: usize) -> u64 {
        self.crypto_per_packet / 2 + (self.hmac_per_byte * bytes as f64) as u64
    }

    /// Number of wire fragments for a tunnel payload of `bytes`.
    pub fn fragments(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.mtu_payload).max(1)
    }

    /// Cycles for a `RoundRobinSwitch` dispatch; `amplified` when running
    /// inside a hardware-mode enclave (EPC pressure).
    pub fn lb_cycles(&self, amplified: bool) -> u64 {
        if amplified {
            (self.lb_per_packet as f64 * self.epc_amplification) as u64
        } else {
            self.lb_per_packet
        }
    }

    /// Cycles for an IDS scan over `bytes` of payload.
    pub fn ids_cycles(&self, bytes: usize, amplified: bool) -> u64 {
        let base = self.ids_per_packet as f64 + self.ids_scan_per_byte * bytes as f64;
        if amplified {
            (base * self.epc_amplification) as u64
        } else {
            base as u64
        }
    }

    /// Cycles for evaluating `n_rules` firewall rules on one packet.
    pub fn fw_cycles(&self, n_rules: usize) -> u64 {
        self.fw_per_rule * n_rules as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_drains() {
        let m = CycleMeter::new();
        m.add(100);
        let m2 = m.clone();
        m2.add(50);
        assert_eq!(m.read(), 150);
        assert_eq!(m.take(), 150);
        assert_eq!(m2.read(), 0);
    }

    #[test]
    fn fragments_match_mtu() {
        let c = CostModel::calibrated();
        assert_eq!(c.fragments(0), 1);
        assert_eq!(c.fragments(256), 1);
        assert_eq!(c.fragments(8_960), 1);
        assert_eq!(c.fragments(8_961), 2);
        assert_eq!(c.fragments(65_536), 8);
    }

    #[test]
    fn crypto_cost_scales_linearly() {
        let c = CostModel::calibrated();
        let small = c.crypto_cycles(100);
        let large = c.crypto_cycles(1_100);
        assert_eq!(large - small, 3_600); // 3.6 cycles/B * 1000 B
        assert!(c.integrity_only_cycles(1_000) < c.crypto_cycles(1_000));
    }

    /// The per-backend transport constants only make sense in a strict
    /// order: a doorbell is cheaper than the bulk syscall it replaces,
    /// descriptor bookkeeping is cheaper than the socket-buffer fixed
    /// cost it replaces, and the kernel-resident receive share is a
    /// proper part of the calibrated per-fragment server cost.
    #[test]
    fn transport_backend_constants_are_ordered() {
        let c = CostModel::calibrated();
        assert!(c.doorbell_per_batch < c.syscall_per_call);
        assert!(c.descriptor_per_frame < c.socket_recv_fixed);
        assert!(c.descriptor_per_frame < c.socket_send_fixed);
        assert!(c.kernel_rx_per_fragment < c.vpn_server_per_fragment);
    }

    /// Sanity-check the calibration against the paper's vanilla OpenVPN
    /// single-flow numbers (Fig. 8): throughput = s*8 / (cycles/freq).
    #[test]
    fn calibration_reproduces_vanilla_openvpn_shape() {
        let c = CostModel::calibrated();
        let freq = 3.5e9;
        let tput = |s: usize| {
            let n = c.fragments(s) as u64;
            let cycles = c.vpn_per_write
                + n * c.vpn_per_fragment
                + c.crypto_cycles(s)
                + (c.memcpy_per_byte * s as f64) as u64;
            (s as f64 * 8.0) / (cycles as f64 / freq) / 1e6 // Mbps
        };
        let t256 = tput(256);
        let t1500 = tput(1500);
        let t64k = tput(65536);
        // Paper: 152 / 813 / 3168 Mbps. Allow 15% tolerance.
        assert!((t256 - 152.0).abs() / 152.0 < 0.15, "256B: {t256}");
        assert!((t1500 - 813.0).abs() / 813.0 < 0.15, "1500B: {t1500}");
        assert!((t64k - 3168.0).abs() / 3168.0 < 0.15, "64KB: {t64k}");
    }
}
