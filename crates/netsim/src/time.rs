//! Virtual time for the simulator: nanosecond-resolution instants and
//! durations, independent of wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `secs` seconds after start.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant `ms` milliseconds after start.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `us` microseconds after start.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9) as u64)
    }

    /// The time it takes to execute `cycles` CPU cycles at `freq_hz`.
    pub fn from_cycles(cycles: u64, freq_hz: u64) -> Self {
        // ns = cycles / freq * 1e9, computed in f64: exact enough for a
        // simulator (sub-nanosecond error at realistic magnitudes).
        SimDuration((cycles as f64 * 1e9 / freq_hz as f64).round() as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// New clock at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is in the future.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// A clock shared between simulation components (e.g. the experiment
/// harness, SGX trusted time, and Click rate limiters). Clones observe the
/// same time. Monotonic: `advance_to` never moves backwards.
#[derive(Debug, Clone, Default)]
pub struct SharedClock(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl SharedClock {
    /// Creates a shared clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        SimTime(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Advances to `t` if it is in the future.
    pub fn advance_to(&self, t: SimTime) {
        self.0.fetch_max(t.0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Advances by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.0.fetch_add(d.0, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_clock_is_shared_and_monotonic() {
        let c = SharedClock::new();
        let c2 = c.clone();
        c.advance(SimDuration::from_millis(3));
        assert_eq!(c2.now(), SimTime::from_millis(3));
        c2.advance_to(SimTime::from_millis(1)); // past: no-op
        assert_eq!(c.now(), SimTime::from_millis(3));
        c2.advance_to(SimTime::from_millis(7));
        assert_eq!(c.now(), SimTime::from_millis(7));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_nanos(), 5_250_000);
        assert_eq!((t - SimTime::from_millis(5)).as_micros_f64(), 250.0);
    }

    #[test]
    fn cycles_to_duration() {
        // 3.5 GHz: 35 000 cycles = 10 us.
        let d = SimDuration::from_cycles(35_000, 3_500_000_000);
        assert_eq!(d.as_nanos(), 10_000);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_millis(1));
        c.advance_to(SimTime::from_micros(10)); // in the past: no-op
        assert_eq!(c.now(), SimTime::from_millis(1));
        c.advance_to(SimTime::from_millis(2));
        assert_eq!(c.now(), SimTime::from_millis(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
