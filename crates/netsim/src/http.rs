//! HTTP(S) workload models for the latency experiments.
//!
//! * [`PageCatalogue`] — a synthetic substitute for the Alexa top-1 000
//!   page list used in Fig. 6 (the 2017 list is unavailable; a heavy-tailed
//!   size distribution fitted to published page-weight statistics preserves
//!   the CDF shape the figure depends on).
//! * [`PageLoadModel`] — converts a page description plus a connection RTT
//!   into a load time.

use crate::time::SimDuration;
use rand::Rng;

/// One synthetic web page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Page {
    /// Total transfer size in bytes (document + subresources).
    pub total_bytes: u64,
    /// Number of subresource requests.
    pub n_resources: u32,
}

/// A catalogue of synthetic pages standing in for the Alexa top list.
#[derive(Debug, Clone)]
pub struct PageCatalogue {
    pages: Vec<Page>,
}

impl PageCatalogue {
    /// Generates `n` pages. Sizes follow a log-normal distribution with
    /// median ≈ 1.6 MB (HTTP Archive page-weight statistics for 2017-era
    /// pages); subresource counts correlate with size around a mean of ~75.
    pub fn synthetic(n: usize, rng: &mut impl Rng) -> Self {
        let pages = (0..n)
            .map(|_| {
                // Box-Muller from two uniforms: ln(size) ~ N(ln 1.6MB, 0.8^2)
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let total_bytes = (1.6e6 * (0.8 * z).exp()).clamp(2e4, 3e7) as u64;
                let n_resources = ((total_bytes as f64 / 1.6e6) * 75.0).clamp(3.0, 400.0) as u32;
                Page {
                    total_bytes,
                    n_resources,
                }
            })
            .collect();
        PageCatalogue { pages }
    }

    /// The pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Connection-level model turning pages into load times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoadModel {
    /// Round-trip time to the content server.
    pub rtt: SimDuration,
    /// Downstream bandwidth in bits/s.
    pub bandwidth_bps: u64,
    /// Concurrent connections the browser opens.
    pub parallel_connections: u32,
    /// Server + client processing overhead per request.
    pub per_request_overhead: SimDuration,
}

impl PageLoadModel {
    /// A typical broadband client: 50 Mbps, 6 connections.
    pub fn broadband(rtt: SimDuration) -> Self {
        PageLoadModel {
            rtt,
            bandwidth_bps: 50_000_000,
            parallel_connections: 6,
            per_request_overhead: SimDuration::from_millis(5),
        }
    }

    /// Page load time: DNS (1 RTT) + TCP (1 RTT) + TLS (2 RTT) + request
    /// rounds batched over the parallel connections + transfer time.
    pub fn load_time(&self, page: &Page) -> SimDuration {
        let handshakes = SimDuration::from_nanos(4 * self.rtt.as_nanos());
        let rounds = page.n_resources.div_ceil(self.parallel_connections).max(1) as u64;
        let request_rounds = SimDuration::from_nanos(
            rounds * (self.rtt.as_nanos() + self.per_request_overhead.as_nanos()),
        );
        let transfer =
            SimDuration::from_secs_f64(page.total_bytes as f64 * 8.0 / self.bandwidth_bps as f64);
        handshakes + request_rounds + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6)
    }

    #[test]
    fn catalogue_sizes_are_heavy_tailed() {
        let cat = PageCatalogue::synthetic(1000, &mut rng());
        assert_eq!(cat.len(), 1000);
        let mut sizes: Vec<u64> = cat.pages().iter().map(|p| p.total_bytes).collect();
        sizes.sort_unstable();
        let median = sizes[500];
        let p95 = sizes[950];
        // Median around 1.6MB; tail several times the median.
        assert!((0.8e6..3.0e6).contains(&(median as f64)), "median {median}");
        assert!(
            p95 as f64 > 2.5 * median as f64,
            "p95 {p95} median {median}"
        );
    }

    #[test]
    fn load_time_increases_with_rtt() {
        let cat = PageCatalogue::synthetic(10, &mut rng());
        let fast = PageLoadModel::broadband(SimDuration::from_millis(10));
        let slow = PageLoadModel::broadband(SimDuration::from_millis(100));
        for p in cat.pages() {
            assert!(slow.load_time(p) > fast.load_time(p));
        }
    }

    #[test]
    fn load_time_increases_with_size() {
        let model = PageLoadModel::broadband(SimDuration::from_millis(20));
        let small = Page {
            total_bytes: 100_000,
            n_resources: 10,
        };
        let large = Page {
            total_bytes: 10_000_000,
            n_resources: 10,
        };
        assert!(model.load_time(&large) > model.load_time(&small));
    }

    #[test]
    fn deterministic_catalogue() {
        let a = PageCatalogue::synthetic(50, &mut rng());
        let b = PageCatalogue::synthetic(50, &mut rng());
        assert_eq!(a.pages(), b.pages());
    }
}
