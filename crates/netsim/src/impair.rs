//! Deterministic link impairments: loss, duplication and reordering.
//!
//! The paper's testbed uses clean 10 Gbps LAN links, but a client-side
//! deployment also serves remote workers "connect\[ing\] remotely (e.g.
//! employees in home office)" (§III-A) over lossy paths. This module
//! impairs a sequence of datagrams deterministically (seeded) so the
//! robustness tests can assert the stack survives real-world wire
//! behaviour.

use rand::Rng;
use rand::SeedableRng;

/// Impairment configuration (per-datagram probabilities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairment {
    /// Probability a datagram is dropped.
    pub loss: f64,
    /// Probability a datagram is duplicated.
    pub duplication: f64,
    /// Probability a datagram is swapped with its successor.
    pub reorder: f64,
}

impl Impairment {
    /// A clean link.
    pub fn none() -> Self {
        Impairment {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
        }
    }

    /// A typical flaky home-office path.
    pub fn flaky() -> Self {
        Impairment {
            loss: 0.05,
            duplication: 0.02,
            reorder: 0.10,
        }
    }

    /// Applies the impairment to `datagrams`, returning the delivered
    /// sequence. Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn apply(&self, datagrams: Vec<Vec<u8>>, seed: u64) -> Vec<Vec<u8>> {
        for p in [self.loss, self.duplication, self.reorder] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(datagrams.len());
        for d in datagrams {
            if rng.gen_bool(self.loss) {
                continue; // dropped
            }
            if rng.gen_bool(self.duplication) {
                out.push(d.clone());
            }
            out.push(d);
            if out.len() >= 2 && rng.gen_bool(self.reorder) {
                let n = out.len();
                out.swap(n - 1, n - 2);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datagrams(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 8]).collect()
    }

    #[test]
    fn clean_link_is_identity() {
        let input = datagrams(50);
        assert_eq!(Impairment::none().apply(input.clone(), 1), input);
    }

    #[test]
    fn loss_removes_duplication_adds() {
        let input = datagrams(1000);
        let lossy = Impairment {
            loss: 0.5,
            duplication: 0.0,
            reorder: 0.0,
        };
        let survived = lossy.apply(input.clone(), 2).len();
        assert!((300..700).contains(&survived), "{survived}");

        let duppy = Impairment {
            loss: 0.0,
            duplication: 0.5,
            reorder: 0.0,
        };
        let delivered = duppy.apply(input, 3).len();
        assert!((1300..1700).contains(&delivered), "{delivered}");
    }

    #[test]
    fn reorder_preserves_multiset() {
        let input = datagrams(200);
        let reordered = Impairment {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.5,
        }
        .apply(input.clone(), 4);
        assert_ne!(reordered, input, "some swaps must happen");
        let mut a = reordered.clone();
        let mut b = input;
        a.sort();
        b.sort();
        assert_eq!(a, b, "no datagram lost or invented");
    }

    #[test]
    fn deterministic_per_seed() {
        let input = datagrams(100);
        let imp = Impairment::flaky();
        assert_eq!(imp.apply(input.clone(), 7), imp.apply(input.clone(), 7));
        assert_ne!(imp.apply(input.clone(), 7), imp.apply(input, 8));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        Impairment {
            loss: 1.5,
            duplication: 0.0,
            reorder: 0.0,
        }
        .apply(vec![], 0);
    }
}
