//! A vendored non-blocking socket/reactor layer: pluggable wire
//! transports behind one endpoint handle, with syscall-shaped bulk I/O
//! and a readiness-based poll API.
//!
//! The sharded EndBox server of [`pipeline`](crate::pipeline) fame is
//! driven by synchronous `receive_datagrams` calls; serving *thousands*
//! of VPN peers without a thread per connection needs an event-driven
//! front-end instead (Slick and LightBox make the same move in front of
//! their protected datapaths). The build environment is offline and the
//! whole reproduction must stay deterministic, so this module vendors the
//! minimal `mio`-shaped subset the front-end needs, split along a
//! transport boundary:
//!
//! * [`Transport`] — the pluggable wire: anything that can bind a port
//!   and hand out a [`UdpEndpoint`]. Two backends implement it:
//!   [`VirtualWire`] (the deterministic in-process default) and
//!   [`OsWire`] (real non-blocking `std::net::UdpSocket`s on the
//!   loopback device).
//! * [`WireEndpoint`] — the per-socket operations a backend provides:
//!   single-datagram `send_to`/`try_recv` plus the **bulk**
//!   `send_many`/`recv_many` pair shaped like `sendmmsg`/`recvmmsg` (one
//!   call moves a whole batch; partial sends leave the unsent tail in the
//!   caller's vector).
//! * [`VirtualWire`] — the in-process wire: a registry of bound ports.
//!   Every datagram sent through it is stamped with a **globally
//!   monotonic sequence number** (the analogue of kernel receive
//!   timestamping), so a reader draining several sockets can reconstruct
//!   the exact wire arrival order.
//! * [`OsWire`] — the OS-socket backend: each bound port is a real
//!   non-blocking UDP socket on `127.0.0.1`, with a 16-byte wire header
//!   carrying the same globally monotonic stamp (assigned at send time
//!   from a wire-shared counter) and the sender's port. Because the
//!   stamp rides the wire, the re-merge-by-`seq` ordering contract is
//!   **identical** to the virtual backend's, which is what lets the
//!   parity tests assert byte-identical application-level results across
//!   backends. Receive buffers come from a [`BufferPool`], so ingress
//!   performs no per-datagram allocation in steady state.
//! * [`UdpEndpoint`] — the bound, cloneable, non-blocking handle over
//!   either backend: [`UdpEndpoint::send_to`] enqueues at the
//!   destination port, [`UdpEndpoint::try_recv`] never blocks (returns
//!   `None` instead of `EWOULDBLOCK`). Endpoints bound with
//!   [`VirtualWire::bind_metered`] (or [`Transport::bind_metered`] on
//!   any backend) charge the calibrated socket costs
//!   ([`CostModel::socket_send_fixed`], [`CostModel::socket_recv_fixed`],
//!   [`CostModel::socket_per_byte`]) to a [`CycleMeter`], so socket I/O
//!   shows up in measured [`PacketCharge`](crate::pipeline::PacketCharge)s
//!   like every other layer. Bulk calls charge the **same per-datagram
//!   costs** as N single calls — the per-*call* syscall saving is priced
//!   by the timing layer ([`crate::pipeline::SyscallBatchModel`] /
//!   [`CostModel::syscall_per_call`]), not metered here, so one measured
//!   charge replays honestly under every bulk size.
//! * [`PollGroup`] — a level-triggered readiness poller over registered
//!   endpoints. [`PollGroup::poll`] scans in registration order (no OS,
//!   no timing races: readiness is deterministic given the send order)
//!   and counts wakeups; the *cost* of a wakeup is modelled by the timing
//!   layer ([`crate::pipeline::AsyncFrontEndModel`]), not charged here,
//!   so the same functional run can be replayed under both the
//!   call-driven and the event-driven cost model. Registration and
//!   deregistration are O(1) amortised (token-indexed slots with
//!   order-preserving compaction), so a churning peer population never
//!   turns the reactor into a linear scan.
//!
//! # Determinism
//!
//! On the virtual backend everything is driven by the caller: there are
//! no background threads, readiness is a pure function of what has been
//! sent and not yet received, and poll scans follow registration order.
//! Two runs that perform the same sends observe byte-identical datagrams,
//! sequence numbers and poll results — which is what lets
//! `tests/async_ingress.rs` and `tests/bulk_ingress.rs` replay the
//! `tests/support/` schedule grid through the event-driven front-end and
//! assert byte-identical parity with the single-threaded reference
//! server. The OS backend adds the kernel to the loop but keeps the
//! ordering contract: stamps are assigned in send order and carried in
//! the wire header, UDP on loopback neither drops nor reorders under the
//! test loads, and the front-end's re-merge sort restores stamp order
//! regardless of per-socket drain order.

use crate::buffer::{BufferPool, PoolStats};
use crate::cost::{CostModel, CycleMeter};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Errors of the socket layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The port is already bound.
    AddrInUse(u64),
    /// No endpoint is bound at the destination port.
    Unreachable(u64),
    /// An OS-level socket error (OS backend only).
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::AddrInUse(p) => write!(f, "port {p} already bound"),
            NetError::Unreachable(p) => write!(f, "no endpoint bound at port {p}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One received datagram, with its source port and the wire-global
/// arrival sequence number (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Port of the sending endpoint.
    pub src: u64,
    /// Globally monotonic arrival stamp: sorting datagrams drained from
    /// *different* sockets by `seq` reconstructs wire order.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The per-socket operations a wire backend provides — the seam between
/// the reactor layer and the transport that actually moves bytes.
///
/// The bulk pair is shaped like `sendmmsg`/`recvmmsg`: one call moves a
/// whole batch, and the contract is **exactly** equivalent to the
/// corresponding sequence of single-datagram calls (same datagrams, same
/// order, same stamps), so every parity proof over the single-datagram
/// path transfers to the bulk path unchanged.
pub trait WireEndpoint: Send + Sync + std::fmt::Debug {
    /// The port this endpoint is bound to.
    fn port(&self) -> u64;

    /// Sends one datagram to the endpoint bound at `dst`, stamped with
    /// the wire-global sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`;
    /// [`NetError::Io`] on OS-socket failures.
    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError>;

    /// Bulk send (`sendmmsg` shape): ships the payloads to `dst` in
    /// order, removing each sent payload from the front of `payloads`.
    /// Returns the number sent. A **partial send** (the OS socket
    /// would block mid-batch) leaves the unsent tail in `payloads` for
    /// the caller to retry — nothing is silently dropped.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst` (no
    /// payloads consumed); [`NetError::Io`] on hard OS-socket failures.
    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError>;

    /// Receives one datagram without blocking: `None` is the
    /// `EWOULDBLOCK` analogue.
    fn try_recv(&self) -> Option<Datagram>;

    /// Bulk receive (`recvmmsg` shape): appends up to `max` waiting
    /// datagrams to `out` in queue order and returns how many were
    /// taken. A short count means the socket is dry.
    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize;

    /// Whether a datagram is waiting (level-triggered readiness).
    fn readable(&self) -> bool;

    /// Queue depth: datagrams received by the wire but not yet drained.
    /// The OS backend cannot see kernel queue depth and reports `1` when
    /// readable, `0` otherwise.
    fn pending(&self) -> usize;
}

/// A pluggable wire: anything that can bind ports and hand out
/// [`UdpEndpoint`]s. [`VirtualWire`] is the deterministic default;
/// [`OsWire`] binds real loopback UDP sockets behind the same API.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Binds `port`, returning its endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound on this
    /// wire; [`NetError::Io`] if the backend cannot create a socket.
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError>;

    /// Binds `port` with socket-cost metering: sends and receives on the
    /// returned endpoint charge [`CostModel`] socket costs to `meter`.
    ///
    /// # Errors
    ///
    /// See [`Transport::bind`].
    fn bind_metered(
        &self,
        port: u64,
        meter: CycleMeter,
        cost: &CostModel,
    ) -> Result<UdpEndpoint, NetError> {
        let ep = self.bind(port)?;
        Ok(ep.metered(meter, cost))
    }

    /// Short backend name for logs and bench labels.
    fn backend(&self) -> &'static str;
}

/// Receive queue of one bound port.
#[derive(Debug, Default)]
struct PortQueue {
    queue: VecDeque<Datagram>,
}

#[derive(Debug, Default)]
struct WireState {
    ports: HashMap<u64, Arc<Mutex<PortQueue>>>,
    next_seq: u64,
}

/// The in-process wire: a registry of bound ports with global arrival
/// stamping. Cloning is cheap and clones share the wire.
#[derive(Debug, Clone, Default)]
pub struct VirtualWire {
    state: Arc<Mutex<WireState>>,
}

impl VirtualWire {
    /// A fresh, empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `port`, returning its endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let mut state = self.state.lock().expect("wire lock");
        if state.ports.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        let queue = Arc::new(Mutex::new(PortQueue::default()));
        state.ports.insert(port, queue.clone());
        Ok(UdpEndpoint {
            inner: Arc::new(VirtualEndpoint {
                wire: self.clone(),
                port,
                queue,
            }),
            metering: None,
        })
    }

    /// Binds `port` with socket-cost metering: sends and receives on the
    /// returned endpoint charge [`CostModel`] socket costs to `meter`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind_metered(
        &self,
        port: u64,
        meter: CycleMeter,
        cost: &CostModel,
    ) -> Result<UdpEndpoint, NetError> {
        Ok(self.bind(port)?.metered(meter, cost))
    }
}

impl Transport for VirtualWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        VirtualWire::bind(self, port)
    }

    fn backend(&self) -> &'static str {
        "virtual"
    }
}

/// The virtual-wire implementation of [`WireEndpoint`].
#[derive(Clone)]
struct VirtualEndpoint {
    wire: VirtualWire,
    port: u64,
    queue: Arc<Mutex<PortQueue>>,
}

impl std::fmt::Debug for VirtualEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualEndpoint")
            .field("port", &self.port)
            .field("pending", &self.pending())
            .finish()
    }
}

impl VirtualEndpoint {
    /// Locks the wire and the destination port queue — in that order.
    /// Stamping and enqueueing under ONE wire-lock acquisition is the
    /// bulk path's whole point, and also what keeps the per-port
    /// FIFO-by-`seq` invariant: releasing the wire lock between stamp
    /// and enqueue would let a concurrent sender win the port-queue lock
    /// with a later stamp. (`try_recv` takes only the port lock, so
    /// receivers never deadlock against senders.)
    fn lock_dst(
        &self,
        dst: u64,
    ) -> Result<(std::sync::MutexGuard<'_, WireState>, Arc<Mutex<PortQueue>>), NetError> {
        let state = self.wire.state.lock().expect("wire lock");
        let queue = state
            .ports
            .get(&dst)
            .ok_or(NetError::Unreachable(dst))?
            .clone();
        Ok((state, queue))
    }
}

impl WireEndpoint for VirtualEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        let (mut state, queue) = self.lock_dst(dst)?;
        let seq = state.next_seq;
        state.next_seq += 1;
        queue.lock().expect("port lock").queue.push_back(Datagram {
            src: self.port,
            seq,
            payload,
        });
        Ok(())
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        // The virtual wire never blocks: a bulk send is all-or-nothing —
        // success consumes everything, Unreachable consumes nothing (the
        // lookup happens before the drain, so a failed send leaves the
        // caller's batch intact for error reporting or retry).
        let (mut state, queue) = self.lock_dst(dst)?;
        let mut port = queue.lock().expect("port lock");
        let n = payloads.len();
        for payload in payloads.drain(..) {
            let seq = state.next_seq;
            state.next_seq += 1;
            port.queue.push_back(Datagram {
                src: self.port,
                seq,
                payload,
            });
        }
        Ok(n)
    }

    fn try_recv(&self) -> Option<Datagram> {
        self.queue.lock().expect("port lock").queue.pop_front()
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut q = self.queue.lock().expect("port lock");
        let take = max.min(q.queue.len());
        out.extend(q.queue.drain(..take));
        take
    }

    fn readable(&self) -> bool {
        !self.queue.lock().expect("port lock").queue.is_empty()
    }

    fn pending(&self) -> usize {
        self.queue.lock().expect("port lock").queue.len()
    }
}

/// Wire-header length of the OS backend: `[seq: u64 BE][src port: u64
/// BE]` prepended to every datagram so the stamp and source survive the
/// kernel round-trip.
pub const OS_WIRE_HEADER_LEN: usize = 16;

/// Largest datagram the OS backend receives (wire header + the biggest
/// fragment the VPN layer emits, with headroom).
const OS_MAX_DATAGRAM: usize = 16 * 1024;

#[derive(Debug, Default)]
struct OsRegistry {
    /// Wire port → the socket's loopback address.
    by_port: HashMap<u64, std::net::SocketAddr>,
}

/// The OS-socket backend: every bound wire port is a real non-blocking
/// `std::net::UdpSocket` on `127.0.0.1`, mapped through a wire-shared
/// port registry. Stamps are assigned at send time from a wire-shared
/// counter and carried in a [`OS_WIRE_HEADER_LEN`]-byte header, so the
/// re-merge-by-`seq` ordering contract matches [`VirtualWire`] exactly.
///
/// Receive buffers are drawn from the wire's [`BufferPool`] and handed
/// to the caller as the datagram payload (header stripped in place) —
/// zero additional user-space copies, no per-datagram allocation once
/// the pool is warm. Callers return finished payloads via
/// [`OsWire::pool`] to keep the loop allocation-free;
/// [`OsWire::pool_stats`] reconciles what was handed out against what
/// came back.
///
/// Cloning is cheap and clones share the wire (registry, stamp counter
/// and pool).
#[derive(Debug, Clone, Default)]
pub struct OsWire {
    registry: Arc<Mutex<OsRegistry>>,
    next_seq: Arc<AtomicU64>,
    pool: BufferPool,
}

impl OsWire {
    /// A fresh wire with an empty port registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this environment can bind loopback UDP sockets at all —
    /// lets tests skip gracefully in network-less sandboxes.
    pub fn available() -> bool {
        std::net::UdpSocket::bind(("127.0.0.1", 0)).is_ok()
    }

    /// The receive-buffer pool (return drained payloads here to keep the
    /// ingress loop allocation-free).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Recycling counters of the receive/egress buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Transport for OsWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let mut reg = self.registry.lock().expect("registry lock");
        if reg.by_port.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        let socket =
            std::net::UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| NetError::Io(e.to_string()))?;
        socket
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let addr = socket
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        reg.by_port.insert(port, addr);
        Ok(UdpEndpoint {
            inner: Arc::new(OsEndpoint {
                socket,
                port,
                wire: self.clone(),
            }),
            metering: None,
        })
    }

    fn backend(&self) -> &'static str {
        "os-socket"
    }
}

/// The OS-socket implementation of [`WireEndpoint`].
struct OsEndpoint {
    socket: std::net::UdpSocket,
    port: u64,
    wire: OsWire,
}

impl std::fmt::Debug for OsEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsEndpoint")
            .field("port", &self.port)
            .field("addr", &self.socket.local_addr().ok())
            .finish()
    }
}

impl OsEndpoint {
    fn lookup(&self, dst: u64) -> Result<std::net::SocketAddr, NetError> {
        self.wire
            .registry
            .lock()
            .expect("registry lock")
            .by_port
            .get(&dst)
            .copied()
            .ok_or(NetError::Unreachable(dst))
    }

    /// Frames `payload` into a pooled buffer, stamps it and ships it.
    /// `Ok(false)` means the socket would block (payload untouched in
    /// the frame buffer is discarded back to the pool; caller retries).
    fn send_framed(&self, addr: std::net::SocketAddr, payload: &[u8]) -> Result<bool, NetError> {
        let mut frame = self.wire.pool.take(OS_WIRE_HEADER_LEN + payload.len());
        let seq = self.wire.next_seq.fetch_add(1, Ordering::Relaxed);
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&self.port.to_be_bytes());
        frame.extend_from_slice(payload);
        let result = self.socket.send_to(&frame, addr);
        self.wire.pool.give(frame);
        match result {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(false),
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }
}

impl WireEndpoint for OsEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        let addr = self.lookup(dst)?;
        // UDP sends on loopback practically never block; spin a few
        // times before surfacing the condition as an error.
        for _ in 0..64 {
            if self.send_framed(addr, &payload)? {
                return Ok(());
            }
            std::thread::yield_now();
        }
        Err(NetError::Io("send would block".into()))
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let addr = self.lookup(dst)?;
        let mut sent = 0;
        while sent < payloads.len() {
            if !self.send_framed(addr, &payloads[sent])? {
                break; // partial send: tail stays with the caller
            }
            sent += 1;
        }
        payloads.drain(..sent);
        Ok(sent)
    }

    fn try_recv(&self) -> Option<Datagram> {
        let mut out = Vec::with_capacity(1);
        self.recv_many(1, &mut out);
        out.pop()
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut taken = 0;
        while taken < max {
            let mut buf = self.wire.pool.take(OS_MAX_DATAGRAM);
            buf.resize(OS_MAX_DATAGRAM, 0);
            match self.socket.recv_from(&mut buf) {
                Ok((n, _)) if n >= OS_WIRE_HEADER_LEN => {
                    buf.truncate(n);
                    let seq = u64::from_be_bytes(buf[0..8].try_into().expect("8 bytes"));
                    let src = u64::from_be_bytes(buf[8..16].try_into().expect("8 bytes"));
                    // Strip the header in place: the pooled buffer itself
                    // becomes the payload (no second copy, no fresh
                    // allocation).
                    buf.drain(..OS_WIRE_HEADER_LEN);
                    out.push(Datagram {
                        src,
                        seq,
                        payload: buf,
                    });
                    taken += 1;
                }
                Ok(_) => {
                    // Runt frame (not ours): drop it, recycle the buffer.
                    self.wire.pool.give(buf);
                }
                Err(_) => {
                    // WouldBlock or transient error: the socket is dry.
                    self.wire.pool.give(buf);
                    break;
                }
            }
        }
        taken
    }

    fn readable(&self) -> bool {
        let mut probe = [0u8; 1];
        self.socket.peek_from(&mut probe).is_ok()
    }

    fn pending(&self) -> usize {
        usize::from(self.readable())
    }
}

/// A bound, non-blocking endpoint over a pluggable [`Transport`]
/// backend. Cloning is cheap; clones share the receive queue (like
/// `dup`ed file descriptors).
#[derive(Clone)]
pub struct UdpEndpoint {
    inner: Arc<dyn WireEndpoint>,
    metering: Option<Arc<(CycleMeter, CostModel)>>,
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("port", &self.inner.port())
            .field("pending", &self.inner.pending())
            .finish()
    }
}

impl UdpEndpoint {
    /// Attaches socket-cost metering to this handle (shared queue, new
    /// handle).
    fn metered(mut self, meter: CycleMeter, cost: &CostModel) -> UdpEndpoint {
        self.metering = Some(Arc::new((meter, cost.clone())));
        self
    }

    /// The port this endpoint is bound to.
    pub fn port(&self) -> u64 {
        self.inner.port()
    }

    fn charge_send(&self, n: usize, bytes: usize) {
        if let Some(m) = &self.metering {
            m.0.add(m.1.socket_send_fixed * n as u64 + (m.1.socket_per_byte * bytes as f64) as u64);
        }
    }

    fn charge_recv(&self, n: usize, bytes: usize) {
        if let Some(m) = &self.metering {
            m.0.add(m.1.socket_recv_fixed * n as u64 + (m.1.socket_per_byte * bytes as f64) as u64);
        }
    }

    /// Sends one datagram to the endpoint bound at `dst`. The datagram is
    /// stamped with the wire-global arrival sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`;
    /// [`NetError::Io`] on OS-socket failures.
    pub fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        self.charge_send(1, payload.len());
        self.inner.send_to(dst, payload)
    }

    /// Bulk send (`sendmmsg` shape): ships the payloads to `dst` in
    /// order with **one** backend call, draining the sent prefix from
    /// `payloads`. Returns the number sent; a partial send (OS socket
    /// backpressure) leaves the unsent tail in `payloads` for retry.
    ///
    /// Metering charges the same per-datagram socket costs as N single
    /// sends — the per-call syscall saving is the timing layer's to
    /// price ([`crate::pipeline::SyscallBatchModel`]).
    ///
    /// # Errors
    ///
    /// See [`WireEndpoint::send_many`].
    pub fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let before_bytes: usize = payloads.iter().map(Vec::len).sum();
        let before_len = payloads.len();
        let result = self.inner.send_many(dst, payloads);
        if let Ok(sent) = &result {
            let after_bytes: usize = payloads.iter().map(Vec::len).sum();
            debug_assert_eq!(before_len - payloads.len(), *sent);
            self.charge_send(*sent, before_bytes - after_bytes);
        }
        result
    }

    /// Receives one datagram without blocking: `None` is the
    /// `EWOULDBLOCK` analogue.
    pub fn try_recv(&self) -> Option<Datagram> {
        let d = self.inner.try_recv()?;
        self.charge_recv(1, d.payload.len());
        Some(d)
    }

    /// Bulk receive (`recvmmsg` shape): appends up to `max` waiting
    /// datagrams to `out` in queue order with **one** backend call.
    /// Returns how many were taken; a short count means the socket is
    /// dry. Datagram payloads move by ownership (virtual backend) or
    /// arrive in pool-recycled buffers (OS backend) — no copies either
    /// way.
    pub fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let start = out.len();
        let n = self.inner.recv_many(max, out);
        let bytes: usize = out[start..].iter().map(|d| d.payload.len()).sum();
        self.charge_recv(n, bytes);
        n
    }

    /// Whether a datagram is waiting (level-triggered readiness).
    pub fn readable(&self) -> bool {
        self.inner.readable()
    }

    /// Queue depth: datagrams received by the wire but not yet drained
    /// (the OS backend reports at most 1 — kernel queue depth is not
    /// observable).
    pub fn pending(&self) -> usize {
        self.inner.pending()
    }
}

/// Caller-chosen identifier for a registered endpoint, echoed back in
/// [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// One readiness event: the endpoint registered under `token` has at
/// least one datagram waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Token supplied at registration.
    pub token: Token,
}

/// A level-triggered readiness poller over registered endpoints — the
/// `epoll`/`mio::Poll` analogue of the socket layer.
///
/// [`PollGroup::poll`] scans registered endpoints **in registration
/// order** and reports every readable one, so readiness is deterministic
/// given the send history. The poller counts wakeups
/// ([`PollGroup::wakeups`]): the event-driven front-end's amortisation —
/// how many datagrams each wakeup drains — is the measured input to the
/// timing-layer event-loop charge
/// ([`crate::pipeline::AsyncFrontEndModel`]).
///
/// Registration and deregistration are **O(1) amortised**: slots are
/// appended in registration order and indexed by token, deregistration
/// tombstones the slot, and the slot list compacts (order-preserving)
/// once tombstones outnumber live entries — a churning peer population
/// costs constant work per register/deregister instead of a linear scan.
#[derive(Debug, Default)]
pub struct PollGroup {
    /// Registration-ordered slots; `None` marks a deregistered entry
    /// awaiting compaction.
    entries: Vec<Option<(Token, UdpEndpoint)>>,
    /// Token → slot indices into `entries` (one token may cover several
    /// registrations).
    index: HashMap<Token, Vec<usize>>,
    live: usize,
    wakeups: u64,
}

impl PollGroup {
    /// An empty poll group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `endpoint` under `token` (readable interest — the only
    /// interest these endpoints have: sends never block for long).
    pub fn register(&mut self, endpoint: &UdpEndpoint, token: Token) {
        let slot = self.entries.len();
        self.entries.push(Some((token, endpoint.clone())));
        self.index.entry(token).or_default().push(slot);
        self.live += 1;
    }

    /// Deregisters every endpoint registered under `token` (O(1)
    /// amortised: tombstone + occasional order-preserving compaction).
    pub fn deregister(&mut self, token: Token) {
        let Some(slots) = self.index.remove(&token) else {
            return;
        };
        for slot in slots {
            if self.entries[slot].take().is_some() {
                self.live -= 1;
            }
        }
        // Compact once tombstones dominate, preserving registration
        // order; amortised O(1) per deregistration.
        if self.entries.len() > 16 && self.live * 2 < self.entries.len() {
            self.entries.retain(Option::is_some);
            self.index.clear();
            for (slot, entry) in self.entries.iter().enumerate() {
                let (token, _) = entry.as_ref().expect("compacted");
                self.index.entry(*token).or_default().push(slot);
            }
        }
    }

    /// Registered endpoint count.
    pub fn registered(&self) -> usize {
        self.live
    }

    /// Scans the registered endpoints and appends one [`Event`] per
    /// readable endpoint (level-triggered; registration order). Returns
    /// the number of events found. Counts one wakeup.
    pub fn poll(&mut self, events: &mut Vec<Event>) -> usize {
        self.wakeups += 1;
        let before = events.len();
        for (token, ep) in self.entries.iter().flatten() {
            if ep.readable() {
                events.push(Event { token: *token });
            }
        }
        events.len() - before
    }

    /// Times [`PollGroup::poll`] was called.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_send_recv_roundtrip() {
        let wire = VirtualWire::new();
        let a = wire.bind(1).unwrap();
        let b = wire.bind(2).unwrap();
        assert_eq!(wire.bind(1).err(), Some(NetError::AddrInUse(1)));
        a.send_to(2, b"hello".to_vec()).unwrap();
        assert!(b.readable());
        let d = b.try_recv().unwrap();
        assert_eq!(d.src, 1);
        assert_eq!(d.payload, b"hello");
        assert!(!b.readable());
        assert_eq!(b.try_recv(), None);
        assert_eq!(a.send_to(99, vec![]), Err(NetError::Unreachable(99)));
    }

    #[test]
    fn sequence_numbers_reconstruct_wire_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(10).unwrap();
        let r1 = wire.bind(11).unwrap();
        let r2 = wire.bind(12).unwrap();
        tx.send_to(11, vec![1]).unwrap();
        tx.send_to(12, vec![2]).unwrap();
        tx.send_to(11, vec![3]).unwrap();
        let mut drained = [
            r2.try_recv().unwrap(),
            r1.try_recv().unwrap(),
            r1.try_recv().unwrap(),
        ];
        drained.sort_by_key(|d| d.seq);
        let payloads: Vec<u8> = drained.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![1, 2, 3], "seq sort == wire send order");
    }

    #[test]
    fn bulk_send_many_matches_single_sends() {
        // Two wires, same traffic: one bulk call vs N singles must
        // produce identical queues (stamps, order, payloads).
        let bulk_wire = VirtualWire::new();
        let single_wire = VirtualWire::new();
        let (btx, brx) = (bulk_wire.bind(1).unwrap(), bulk_wire.bind(2).unwrap());
        let (stx, srx) = (single_wire.bind(1).unwrap(), single_wire.bind(2).unwrap());
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3]).collect();
        let mut batch = payloads.clone();
        assert_eq!(btx.send_many(2, &mut batch).unwrap(), 5);
        assert!(batch.is_empty(), "virtual bulk send consumes everything");
        for p in payloads {
            stx.send_to(2, p).unwrap();
        }
        let mut bulk_got = Vec::new();
        assert_eq!(brx.recv_many(16, &mut bulk_got), 5);
        let mut single_got = Vec::new();
        while let Some(d) = srx.try_recv() {
            single_got.push(d);
        }
        assert_eq!(bulk_got, single_got, "bulk path == single path");
    }

    #[test]
    fn send_many_to_unbound_port_consumes_nothing() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let mut batch = vec![vec![1u8], vec![2u8]];
        assert_eq!(tx.send_many(9, &mut batch), Err(NetError::Unreachable(9)));
        assert_eq!(batch.len(), 2, "failed bulk send keeps the payloads");
    }

    #[test]
    fn recv_many_respects_max_and_preserves_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let rx = wire.bind(2).unwrap();
        for i in 0..7u8 {
            tx.send_to(2, vec![i]).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(3, &mut out), 3);
        assert_eq!(rx.recv_many(100, &mut out), 4, "short count == dry");
        assert_eq!(rx.recv_many(1, &mut out), 0);
        let seen: Vec<u8> = out.iter().map(|d| d.payload[0]).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn poll_reports_readable_endpoints_in_registration_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let a = wire.bind(2).unwrap();
        let b = wire.bind(3).unwrap();
        let mut poll = PollGroup::new();
        poll.register(&a, Token(0));
        poll.register(&b, Token(1));
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 0);
        tx.send_to(3, vec![9]).unwrap();
        tx.send_to(2, vec![8]).unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        assert_eq!(
            events[0].token,
            Token(0),
            "registration order, not send order"
        );
        assert_eq!(events[1].token, Token(1));
        // Level-triggered: still readable until drained.
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        a.try_recv().unwrap();
        b.try_recv().unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 0);
        assert_eq!(poll.wakeups(), 4);
    }

    #[test]
    fn poll_group_churn_is_fast_and_order_preserving() {
        // The O(1) register/deregister regression test: 10k sockets of
        // churn must complete promptly (the old linear `retain` made
        // this quadratic) and keep registration order for survivors.
        const N: usize = 10_000;
        let wire = VirtualWire::new();
        let tx = wire.bind(u64::MAX).unwrap();
        let endpoints: Vec<UdpEndpoint> = (0..N as u64).map(|p| wire.bind(p).unwrap()).collect();
        let mut poll = PollGroup::new();
        let started = std::time::Instant::now();
        for (i, ep) in endpoints.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        assert_eq!(poll.registered(), N);
        // Deregister every even token, register a second wave, then
        // deregister the odd ones — interleaved churn.
        for i in (0..N).step_by(2) {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), N / 2);
        for i in (1..N).step_by(2) {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), 0);
        for (i, ep) in endpoints.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        assert_eq!(poll.registered(), N);
        let elapsed = started.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "10k-socket churn took {elapsed:?} — register/deregister has regressed \
             from O(1) amortised"
        );
        // Survivor order: make three endpoints readable, expect events
        // in registration order.
        tx.send_to(7, vec![1]).unwrap();
        tx.send_to(3, vec![1]).unwrap();
        tx.send_to(9_999, vec![1]).unwrap();
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 3);
        let tokens: Vec<usize> = events.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![3, 7, 9_999], "registration order preserved");
    }

    #[test]
    fn deregister_survives_compaction_and_reregistration() {
        let wire = VirtualWire::new();
        let eps: Vec<UdpEndpoint> = (0..64u64).map(|p| wire.bind(p).unwrap()).collect();
        let mut poll = PollGroup::new();
        for (i, ep) in eps.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        // Trigger compaction (tombstones dominate).
        for i in 0..48 {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), 16);
        // Deregister *after* compaction must still resolve slots.
        poll.deregister(Token(50));
        assert_eq!(poll.registered(), 15);
        poll.deregister(Token(50)); // idempotent
        assert_eq!(poll.registered(), 15);
        let tx = wire.bind(u64::MAX).unwrap();
        tx.send_to(63, vec![1]).unwrap();
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 1);
        assert_eq!(events[0].token, Token(63));
    }

    #[test]
    fn metered_endpoints_charge_socket_costs() {
        let wire = VirtualWire::new();
        let cost = CostModel::calibrated();
        let meter = CycleMeter::new();
        let tx = wire.bind(1).unwrap();
        let rx = wire.bind_metered(2, meter.clone(), &cost).unwrap();
        tx.send_to(2, vec![0u8; 100]).unwrap();
        assert_eq!(meter.read(), 0, "unmetered sender, undrained receiver");
        rx.try_recv().unwrap();
        let expected = cost.socket_recv_fixed + (cost.socket_per_byte * 100.0) as u64;
        assert_eq!(meter.take(), expected);
    }

    #[test]
    fn bulk_metering_matches_single_metering() {
        // One measured charge must replay identically under every bulk
        // size: bulk calls charge exactly N× the single-datagram cost.
        let cost = CostModel::calibrated();
        let wire = VirtualWire::new();
        let meter_bulk = CycleMeter::new();
        let meter_single = CycleMeter::new();
        let tx = wire.bind(1).unwrap();
        let rx_bulk = wire.bind_metered(2, meter_bulk.clone(), &cost).unwrap();
        let rx_single = wire.bind_metered(3, meter_single.clone(), &cost).unwrap();
        for i in 0..6u8 {
            tx.send_to(2, vec![i; 50]).unwrap();
            tx.send_to(3, vec![i; 50]).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx_bulk.recv_many(6, &mut out), 6);
        while rx_single.try_recv().is_some() {}
        assert_eq!(meter_bulk.take(), meter_single.take());

        let meter_tx = CycleMeter::new();
        let tx_metered = wire.bind_metered(10, meter_tx.clone(), &cost).unwrap();
        let mut batch: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 25]).collect();
        tx_metered.send_many(2, &mut batch).unwrap();
        let expected = cost.socket_send_fixed * 4 + (cost.socket_per_byte * 100.0) as u64;
        assert_eq!(meter_tx.take(), expected);
    }

    #[test]
    fn os_wire_roundtrips_with_stamps_when_available() {
        if !OsWire::available() {
            eprintln!("skipping: loopback sockets unavailable in this environment");
            return;
        }
        let wire = OsWire::new();
        let a = Transport::bind(&wire, 1).unwrap();
        let b = Transport::bind(&wire, 2).unwrap();
        assert_eq!(
            Transport::bind(&wire, 1).err(),
            Some(NetError::AddrInUse(1))
        );
        assert_eq!(wire.backend(), "os-socket");
        a.send_to(2, b"over the kernel".to_vec()).unwrap();
        a.send_to(2, b"second".to_vec()).unwrap();
        // Loopback delivery is synchronous in practice but give the
        // kernel a moment to be safe.
        let mut got = Vec::new();
        for _ in 0..1_000 {
            b.recv_many(16, &mut got);
            if got.len() >= 2 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].src, 1);
        assert_eq!(got[0].payload, b"over the kernel");
        assert!(got[0].seq < got[1].seq, "stamps carry send order");
        assert_eq!(a.send_to(9, vec![1]), Err(NetError::Unreachable(9)));
        // Return payloads: the pool reconciles (every buffer handed out
        // for ingress came back or is accounted for).
        let held = got.len() as u64;
        for d in got {
            wire.pool().give(d.payload);
        }
        let stats = wire.pool_stats();
        assert_eq!(
            stats.handed_out(),
            stats.returned + stats.discarded,
            "pool reconciles after payload return: {stats:?} (held {held})"
        );
    }
}
