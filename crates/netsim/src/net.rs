//! A vendored non-blocking socket/reactor layer: virtual UDP endpoints
//! backed by an in-process wire, plus a readiness-based poll API.
//!
//! The sharded EndBox server of [`pipeline`](crate::pipeline) fame is
//! driven by synchronous `receive_datagrams` calls; serving *thousands*
//! of VPN peers without a thread per connection needs an event-driven
//! front-end instead (Slick and LightBox make the same move in front of
//! their protected datapaths). The build environment is offline and the
//! whole reproduction must stay deterministic, so this module vendors the
//! minimal `mio`-shaped subset the front-end needs instead of binding OS
//! sockets:
//!
//! * [`VirtualWire`] — the in-process wire: a registry of bound ports.
//!   Every datagram sent through it is stamped with a **globally
//!   monotonic sequence number** (the analogue of kernel receive
//!   timestamping), so a reader draining several sockets can reconstruct
//!   the exact wire arrival order.
//! * [`UdpEndpoint`] — a bound, cloneable, non-blocking endpoint:
//!   [`UdpEndpoint::send_to`] enqueues at the destination port,
//!   [`UdpEndpoint::try_recv`] never blocks (returns `None` instead of
//!   `EWOULDBLOCK`). Endpoints bound with [`VirtualWire::bind_metered`]
//!   charge the calibrated socket costs ([`CostModel::socket_send_fixed`],
//!   [`CostModel::socket_recv_fixed`], [`CostModel::socket_per_byte`]) to
//!   a [`CycleMeter`], so socket I/O shows up in measured
//!   [`PacketCharge`](crate::pipeline::PacketCharge)s like every other
//!   layer.
//! * [`PollGroup`] — a level-triggered readiness poller over registered
//!   endpoints. [`PollGroup::poll`] scans in registration order (no OS,
//!   no timing races: readiness is deterministic given the send order)
//!   and counts wakeups; the *cost* of a wakeup is modelled by the timing
//!   layer ([`crate::pipeline::AsyncFrontEndModel`]), not charged here,
//!   so the same functional run can be replayed under both the
//!   call-driven and the event-driven cost model.
//!
//! # Determinism
//!
//! Everything is driven by the caller: there are no background threads,
//! readiness is a pure function of what has been sent and not yet
//! received, and poll scans follow registration order. Two runs that
//! perform the same sends observe byte-identical datagrams, sequence
//! numbers and poll results — which is what lets
//! `tests/async_ingress.rs` replay the `tests/support/` schedule grid
//! through the event-driven front-end and assert byte-identical parity
//! with the single-threaded reference server.

use crate::cost::{CostModel, CycleMeter};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Errors of the virtual socket layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The port is already bound.
    AddrInUse(u64),
    /// No endpoint is bound at the destination port.
    Unreachable(u64),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::AddrInUse(p) => write!(f, "port {p} already bound"),
            NetError::Unreachable(p) => write!(f, "no endpoint bound at port {p}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One received datagram, with its source port and the wire-global
/// arrival sequence number (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Port of the sending endpoint.
    pub src: u64,
    /// Globally monotonic arrival stamp: sorting datagrams drained from
    /// *different* sockets by `seq` reconstructs wire order.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Receive queue of one bound port.
#[derive(Debug, Default)]
struct PortQueue {
    queue: VecDeque<Datagram>,
}

#[derive(Debug, Default)]
struct WireState {
    ports: HashMap<u64, Arc<Mutex<PortQueue>>>,
    next_seq: u64,
}

/// The in-process wire: a registry of bound ports with global arrival
/// stamping. Cloning is cheap and clones share the wire.
#[derive(Debug, Clone, Default)]
pub struct VirtualWire {
    state: Arc<Mutex<WireState>>,
}

impl VirtualWire {
    /// A fresh, empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `port`, returning its endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        self.bind_inner(port, None)
    }

    /// Binds `port` with socket-cost metering: sends and receives on the
    /// returned endpoint charge [`CostModel`] socket costs to `meter`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind_metered(
        &self,
        port: u64,
        meter: CycleMeter,
        cost: &CostModel,
    ) -> Result<UdpEndpoint, NetError> {
        self.bind_inner(port, Some((meter, cost.clone())))
    }

    fn bind_inner(
        &self,
        port: u64,
        metering: Option<(CycleMeter, CostModel)>,
    ) -> Result<UdpEndpoint, NetError> {
        let mut state = self.state.lock().expect("wire lock");
        if state.ports.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        let queue = Arc::new(Mutex::new(PortQueue::default()));
        state.ports.insert(port, queue.clone());
        Ok(UdpEndpoint {
            wire: self.clone(),
            port,
            queue,
            metering: metering.map(|(m, c)| Arc::new((m, c))),
        })
    }
}

/// A bound, non-blocking virtual UDP endpoint. Cloning is cheap; clones
/// share the receive queue (like `dup`ed file descriptors).
#[derive(Clone)]
pub struct UdpEndpoint {
    wire: VirtualWire,
    port: u64,
    queue: Arc<Mutex<PortQueue>>,
    metering: Option<Arc<(CycleMeter, CostModel)>>,
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("port", &self.port)
            .field("pending", &self.pending())
            .finish()
    }
}

impl UdpEndpoint {
    /// The port this endpoint is bound to.
    pub fn port(&self) -> u64 {
        self.port
    }

    /// Sends one datagram to the endpoint bound at `dst`. The datagram is
    /// stamped with the wire-global arrival sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`.
    pub fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        if let Some(m) = &self.metering {
            m.0.add(m.1.socket_send_fixed + (m.1.socket_per_byte * payload.len() as f64) as u64);
        }
        // Stamp AND enqueue under the wire lock: releasing it between the
        // two would let a concurrent sender win the port-queue lock with a
        // later stamp, breaking the per-port FIFO-by-`seq` invariant the
        // event-driven front-end's ordering proof rests on. (Lock order is
        // wire → port; `try_recv` takes only the port lock, so receivers
        // never deadlock against senders.)
        let mut state = self.wire.state.lock().expect("wire lock");
        let queue = state
            .ports
            .get(&dst)
            .ok_or(NetError::Unreachable(dst))?
            .clone();
        let seq = state.next_seq;
        state.next_seq += 1;
        queue.lock().expect("port lock").queue.push_back(Datagram {
            src: self.port,
            seq,
            payload,
        });
        Ok(())
    }

    /// Receives one datagram without blocking: `None` is the
    /// `EWOULDBLOCK` analogue.
    pub fn try_recv(&self) -> Option<Datagram> {
        let d = self.queue.lock().expect("port lock").queue.pop_front()?;
        if let Some(m) = &self.metering {
            m.0.add(m.1.socket_recv_fixed + (m.1.socket_per_byte * d.payload.len() as f64) as u64);
        }
        Some(d)
    }

    /// Whether a datagram is waiting (level-triggered readiness).
    pub fn readable(&self) -> bool {
        !self.queue.lock().expect("port lock").queue.is_empty()
    }

    /// Queue depth: datagrams received by the wire but not yet drained.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("port lock").queue.len()
    }
}

/// Caller-chosen identifier for a registered endpoint, echoed back in
/// [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// One readiness event: the endpoint registered under `token` has at
/// least one datagram waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Token supplied at registration.
    pub token: Token,
}

/// A level-triggered readiness poller over registered endpoints — the
/// `epoll`/`mio::Poll` analogue of the virtual socket layer.
///
/// [`PollGroup::poll`] scans registered endpoints **in registration
/// order** and reports every readable one, so readiness is deterministic
/// given the send history. The poller counts wakeups
/// ([`PollGroup::wakeups`]): the event-driven front-end's amortisation —
/// how many datagrams each wakeup drains — is the measured input to the
/// timing-layer event-loop charge
/// ([`crate::pipeline::AsyncFrontEndModel`]).
#[derive(Debug, Default)]
pub struct PollGroup {
    entries: Vec<(Token, UdpEndpoint)>,
    wakeups: u64,
}

impl PollGroup {
    /// An empty poll group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `endpoint` under `token` (readable interest — the only
    /// interest virtual endpoints have: sends never block).
    pub fn register(&mut self, endpoint: &UdpEndpoint, token: Token) {
        self.entries.push((token, endpoint.clone()));
    }

    /// Deregisters every endpoint registered under `token`.
    pub fn deregister(&mut self, token: Token) {
        self.entries.retain(|(t, _)| *t != token);
    }

    /// Registered endpoint count.
    pub fn registered(&self) -> usize {
        self.entries.len()
    }

    /// Scans the registered endpoints and appends one [`Event`] per
    /// readable endpoint (level-triggered; registration order). Returns
    /// the number of events found. Counts one wakeup.
    pub fn poll(&mut self, events: &mut Vec<Event>) -> usize {
        self.wakeups += 1;
        let before = events.len();
        for (token, ep) in &self.entries {
            if ep.readable() {
                events.push(Event { token: *token });
            }
        }
        events.len() - before
    }

    /// Times [`PollGroup::poll`] was called.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_send_recv_roundtrip() {
        let wire = VirtualWire::new();
        let a = wire.bind(1).unwrap();
        let b = wire.bind(2).unwrap();
        assert_eq!(wire.bind(1).err(), Some(NetError::AddrInUse(1)));
        a.send_to(2, b"hello".to_vec()).unwrap();
        assert!(b.readable());
        let d = b.try_recv().unwrap();
        assert_eq!(d.src, 1);
        assert_eq!(d.payload, b"hello");
        assert!(!b.readable());
        assert_eq!(b.try_recv(), None);
        assert_eq!(a.send_to(99, vec![]), Err(NetError::Unreachable(99)));
    }

    #[test]
    fn sequence_numbers_reconstruct_wire_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(10).unwrap();
        let r1 = wire.bind(11).unwrap();
        let r2 = wire.bind(12).unwrap();
        tx.send_to(11, vec![1]).unwrap();
        tx.send_to(12, vec![2]).unwrap();
        tx.send_to(11, vec![3]).unwrap();
        let mut drained = [
            r2.try_recv().unwrap(),
            r1.try_recv().unwrap(),
            r1.try_recv().unwrap(),
        ];
        drained.sort_by_key(|d| d.seq);
        let payloads: Vec<u8> = drained.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![1, 2, 3], "seq sort == wire send order");
    }

    #[test]
    fn poll_reports_readable_endpoints_in_registration_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let a = wire.bind(2).unwrap();
        let b = wire.bind(3).unwrap();
        let mut poll = PollGroup::new();
        poll.register(&a, Token(0));
        poll.register(&b, Token(1));
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 0);
        tx.send_to(3, vec![9]).unwrap();
        tx.send_to(2, vec![8]).unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        assert_eq!(
            events[0].token,
            Token(0),
            "registration order, not send order"
        );
        assert_eq!(events[1].token, Token(1));
        // Level-triggered: still readable until drained.
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        a.try_recv().unwrap();
        b.try_recv().unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 0);
        assert_eq!(poll.wakeups(), 4);
    }

    #[test]
    fn metered_endpoints_charge_socket_costs() {
        let wire = VirtualWire::new();
        let cost = CostModel::calibrated();
        let meter = CycleMeter::new();
        let tx = wire.bind(1).unwrap();
        let rx = wire.bind_metered(2, meter.clone(), &cost).unwrap();
        tx.send_to(2, vec![0u8; 100]).unwrap();
        assert_eq!(meter.read(), 0, "unmetered sender, undrained receiver");
        rx.try_recv().unwrap();
        let expected = cost.socket_recv_fixed + (cost.socket_per_byte * 100.0) as u64;
        assert_eq!(meter.take(), expected);
    }
}
