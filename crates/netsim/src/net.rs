//! A vendored non-blocking socket/reactor layer: pluggable wire
//! transports behind one endpoint handle, with syscall-shaped bulk I/O
//! and a readiness-based poll API.
//!
//! The sharded EndBox server of [`pipeline`](crate::pipeline) fame is
//! driven by synchronous `receive_datagrams` calls; serving *thousands*
//! of VPN peers without a thread per connection needs an event-driven
//! front-end instead (Slick and LightBox make the same move in front of
//! their protected datapaths). The build environment is offline and the
//! whole reproduction must stay deterministic, so this module vendors the
//! minimal `mio`-shaped subset the front-end needs, split along a
//! transport boundary:
//!
//! * [`Transport`] — the pluggable wire: anything that can bind a port
//!   and hand out a [`UdpEndpoint`]. Four backends implement it:
//!   [`VirtualWire`] (the deterministic in-process default), [`OsWire`]
//!   (real non-blocking `std::net::UdpSocket`s on the loopback device),
//!   [`RingWire`] (io_uring-style submission/completion rings) and
//!   [`XdpWire`] (an AF_XDP/DPDK-shaped zero-copy frame backend);
//!   [`TransportKind`] selects between them and [`ShortSendWire`]
//!   decorates any of them with partial-send fault injection.
//! * [`WireEndpoint`] — the per-socket operations a backend provides:
//!   single-datagram `send_to`/`try_recv` plus the **bulk**
//!   `send_many`/`recv_many` pair shaped like `sendmmsg`/`recvmmsg` (one
//!   call moves a whole batch; partial sends leave the unsent tail in the
//!   caller's vector).
//! * [`VirtualWire`] — the in-process wire: a registry of bound ports.
//!   Every datagram sent through it is stamped with a **globally
//!   monotonic sequence number** (the analogue of kernel receive
//!   timestamping), so a reader draining several sockets can reconstruct
//!   the exact wire arrival order.
//! * [`OsWire`] — the OS-socket backend: each bound port is a real
//!   non-blocking UDP socket on `127.0.0.1`, with a 16-byte wire header
//!   carrying the same globally monotonic stamp (assigned at send time
//!   from a wire-shared counter) and the sender's port. Because the
//!   stamp rides the wire, the re-merge-by-`seq` ordering contract is
//!   **identical** to the virtual backend's, which is what lets the
//!   parity tests assert byte-identical application-level results across
//!   backends. Receive buffers come from a [`BufferPool`], so ingress
//!   performs no per-datagram allocation in steady state.
//! * [`RingWire`] — the io_uring-style backend: per-endpoint
//!   submission/completion descriptor rings over a wire-shared
//!   pre-registered [`BufferPool`]. A bulk send fills SQEs and rings
//!   **one doorbell per submitted batch** (counted in [`RingStats`];
//!   priced by [`CostModel::doorbell_per_batch`] instead of a full
//!   syscall per call); completions are harvested from shared memory by
//!   the ordinary `recv_many` drain, so [`PollGroup`]-driven front-ends
//!   ride it unchanged. Stamping is the virtual wire's — the parity
//!   contract transfers as-is.
//! * [`XdpWire`] — the zero-copy frame backend: a UMEM-style frame
//!   arena ([`XdpWire::umem`]) with fill/completion accounting
//!   ([`XdpStats`]). Frames are handed to the datapath **by
//!   descriptor** — the received payload is the sender's buffer, no
//!   copy (pinned by a pointer-identity test), which is why its metering
//!   profile has a zero per-byte charge.
//! * [`WireCostProfile`] — what one send/receive charges on a metered
//!   endpoint, per backend: the socket shape pays
//!   [`CostModel::socket_recv_fixed`]-class fixed costs plus the
//!   socket-buffer copy; the ring shape swaps the fixed part for
//!   [`CostModel::descriptor_per_frame`]; the XDP shape additionally
//!   drops the copy.
//! * [`UdpEndpoint`] — the bound, cloneable, non-blocking handle over
//!   either backend: [`UdpEndpoint::send_to`] enqueues at the
//!   destination port, [`UdpEndpoint::try_recv`] never blocks (returns
//!   `None` instead of `EWOULDBLOCK`). Endpoints bound with
//!   [`VirtualWire::bind_metered`] (or [`Transport::bind_metered`] on
//!   any backend) charge the calibrated socket costs
//!   ([`CostModel::socket_send_fixed`], [`CostModel::socket_recv_fixed`],
//!   [`CostModel::socket_per_byte`]) to a [`CycleMeter`], so socket I/O
//!   shows up in measured [`PacketCharge`](crate::pipeline::PacketCharge)s
//!   like every other layer. Bulk calls charge the **same per-datagram
//!   costs** as N single calls — the per-*call* syscall saving is priced
//!   by the timing layer ([`crate::pipeline::SyscallBatchModel`] /
//!   [`CostModel::syscall_per_call`]), not metered here, so one measured
//!   charge replays honestly under every bulk size.
//! * [`PollGroup`] — a level-triggered readiness poller over registered
//!   endpoints. [`PollGroup::poll`] scans in registration order (no OS,
//!   no timing races: readiness is deterministic given the send order)
//!   and counts wakeups; the *cost* of a wakeup is modelled by the timing
//!   layer ([`crate::pipeline::AsyncFrontEndModel`]), not charged here,
//!   so the same functional run can be replayed under both the
//!   call-driven and the event-driven cost model. Registration and
//!   deregistration are O(1) amortised (token-indexed slots with
//!   order-preserving compaction), so a churning peer population never
//!   turns the reactor into a linear scan.
//!
//! # Determinism
//!
//! On the virtual backend everything is driven by the caller: there are
//! no background threads, readiness is a pure function of what has been
//! sent and not yet received, and poll scans follow registration order.
//! Two runs that perform the same sends observe byte-identical datagrams,
//! sequence numbers and poll results — which is what lets
//! `tests/async_ingress.rs` and `tests/bulk_ingress.rs` replay the
//! `tests/support/` schedule grid through the event-driven front-end and
//! assert byte-identical parity with the single-threaded reference
//! server. The OS backend adds the kernel to the loop but keeps the
//! ordering contract: stamps are assigned in send order and carried in
//! the wire header, UDP on loopback neither drops nor reorders under the
//! test loads, and the front-end's re-merge sort restores stamp order
//! regardless of per-socket drain order.

use crate::buffer::{BufferPool, PoolStats};
use crate::cost::{CostModel, CycleMeter};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Errors of the socket layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The port is already bound.
    AddrInUse(u64),
    /// No endpoint is bound at the destination port.
    Unreachable(u64),
    /// An OS-level socket error (OS backend only).
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::AddrInUse(p) => write!(f, "port {p} already bound"),
            NetError::Unreachable(p) => write!(f, "no endpoint bound at port {p}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One received datagram, with its source port and the wire-global
/// arrival sequence number (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Port of the sending endpoint.
    pub src: u64,
    /// Globally monotonic arrival stamp: sorting datagrams drained from
    /// *different* sockets by `seq` reconstructs wire order.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Per-datagram metering profile of a transport backend: what one send
/// or one receive charges to a metered endpoint's [`CycleMeter`]. The
/// per-*call* boundary cost (syscall or ring doorbell) is priced by the
/// timing layer ([`crate::pipeline::SyscallBatchModel`]), never here, so
/// one measured charge replays honestly under every bulk size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCostProfile {
    /// Fixed cycles per datagram sent.
    pub send_fixed: u64,
    /// Fixed cycles per datagram received.
    pub recv_fixed: u64,
    /// Copy cycles per payload byte (either direction); zero on a
    /// zero-copy frame backend.
    pub per_byte: f64,
}

impl WireCostProfile {
    /// The socket shape ([`VirtualWire`]/[`OsWire`]): per-datagram
    /// socket-buffer bookkeeping plus the copy across the socket buffer.
    pub fn socket(cost: &CostModel) -> Self {
        WireCostProfile {
            send_fixed: cost.socket_send_fixed,
            recv_fixed: cost.socket_recv_fixed,
            per_byte: cost.socket_per_byte,
        }
    }

    /// The ring shape ([`RingWire`]): SQE/CQE descriptor bookkeeping
    /// replaces the socket-buffer fixed cost; payloads still copy
    /// between the pre-registered buffers and the application.
    pub fn ring(cost: &CostModel) -> Self {
        WireCostProfile {
            send_fixed: cost.descriptor_per_frame,
            recv_fixed: cost.descriptor_per_frame,
            per_byte: cost.socket_per_byte,
        }
    }

    /// The zero-copy frame shape ([`XdpWire`]): descriptor bookkeeping
    /// only — frames are handed to the datapath by descriptor, no copy.
    pub fn xdp(cost: &CostModel) -> Self {
        WireCostProfile {
            send_fixed: cost.descriptor_per_frame,
            recv_fixed: cost.descriptor_per_frame,
            per_byte: 0.0,
        }
    }
}

/// Selector for the wire backend a scenario or benchmark builds its
/// transport from — one name per [`Transport`] implementation, with the
/// backend's metering profile and kernel-bypass shape attached so the
/// measurement layer (`measure_charge_wire` and friends) can price a
/// backend without instantiating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The deterministic in-process wire ([`VirtualWire`]).
    #[default]
    Virtual,
    /// Real loopback UDP sockets ([`OsWire`]).
    OsSocket,
    /// io_uring-style submission/completion rings ([`RingWire`]).
    Ring,
    /// AF_XDP/DPDK-shaped zero-copy frames ([`XdpWire`]).
    XdpFrame,
}

impl TransportKind {
    /// Short name, equal to [`Transport::backend`] of the constructed
    /// wire.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Virtual => "virtual",
            TransportKind::OsSocket => "os-socket",
            TransportKind::Ring => "ring",
            TransportKind::XdpFrame => "xdp-frame",
        }
    }

    /// The per-datagram metering profile of this backend.
    pub fn profile(self, cost: &CostModel) -> WireCostProfile {
        match self {
            TransportKind::Virtual | TransportKind::OsSocket => WireCostProfile::socket(cost),
            TransportKind::Ring => WireCostProfile::ring(cost),
            TransportKind::XdpFrame => WireCostProfile::xdp(cost),
        }
    }

    /// Whether delivery lands in user-visible descriptor rings instead
    /// of the kernel socket path — such a backend sheds the in-kernel
    /// receive share [`CostModel::kernel_rx_per_fragment`] from the lane
    /// that drains it.
    pub fn bypasses_kernel_rx(self) -> bool {
        matches!(self, TransportKind::Ring | TransportKind::XdpFrame)
    }
}

/// The per-socket operations a wire backend provides — the seam between
/// the reactor layer and the transport that actually moves bytes.
///
/// The bulk pair is shaped like `sendmmsg`/`recvmmsg`: one call moves a
/// whole batch, and the contract is **exactly** equivalent to the
/// corresponding sequence of single-datagram calls (same datagrams, same
/// order, same stamps), so every parity proof over the single-datagram
/// path transfers to the bulk path unchanged.
pub trait WireEndpoint: Send + Sync + std::fmt::Debug {
    /// The port this endpoint is bound to.
    fn port(&self) -> u64;

    /// Sends one datagram to the endpoint bound at `dst`, stamped with
    /// the wire-global sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`;
    /// [`NetError::Io`] on OS-socket failures.
    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError>;

    /// Bulk send (`sendmmsg` shape): ships the payloads to `dst` in
    /// order, removing each sent payload from the front of `payloads`.
    /// Returns the number sent. A **partial send** (the OS socket
    /// would block mid-batch) leaves the unsent tail in `payloads` for
    /// the caller to retry — nothing is silently dropped.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst` (no
    /// payloads consumed); [`NetError::Io`] on hard OS-socket failures.
    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError>;

    /// Receives one datagram without blocking: `None` is the
    /// `EWOULDBLOCK` analogue.
    fn try_recv(&self) -> Option<Datagram>;

    /// Bulk receive (`recvmmsg` shape): appends up to `max` waiting
    /// datagrams to `out` in queue order and returns how many were
    /// taken. A short count means the socket is dry.
    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize;

    /// Whether a datagram is waiting (level-triggered readiness).
    fn readable(&self) -> bool;

    /// Queue depth: datagrams received by the wire but not yet drained.
    /// The OS backend cannot see kernel queue depth and reports `1` when
    /// readable, `0` otherwise.
    fn pending(&self) -> usize;

    /// The per-datagram metering profile of this backend — what metered
    /// handles charge per send/receive. Defaults to the socket shape;
    /// ring and frame backends override it.
    fn cost_profile(&self, cost: &CostModel) -> WireCostProfile {
        WireCostProfile::socket(cost)
    }
}

/// A pluggable wire: anything that can bind ports and hand out
/// [`UdpEndpoint`]s. [`VirtualWire`] is the deterministic default;
/// [`OsWire`] binds real loopback UDP sockets behind the same API.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Binds `port`, returning its endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound on this
    /// wire; [`NetError::Io`] if the backend cannot create a socket.
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError>;

    /// Binds `port` with socket-cost metering: sends and receives on the
    /// returned endpoint charge [`CostModel`] socket costs to `meter`.
    ///
    /// # Errors
    ///
    /// See [`Transport::bind`].
    fn bind_metered(
        &self,
        port: u64,
        meter: CycleMeter,
        cost: &CostModel,
    ) -> Result<UdpEndpoint, NetError> {
        let ep = self.bind(port)?;
        Ok(ep.metered(meter, cost))
    }

    /// Short backend name for logs and bench labels.
    fn backend(&self) -> &'static str;
}

/// Receive queue of one bound port.
#[derive(Debug, Default)]
struct PortQueue {
    queue: VecDeque<Datagram>,
}

#[derive(Debug, Default)]
struct WireState {
    ports: HashMap<u64, Arc<Mutex<PortQueue>>>,
    next_seq: u64,
}

/// Binds `port` on an in-process wire, creating its receive queue.
fn bind_port(state: &Mutex<WireState>, port: u64) -> Result<Arc<Mutex<PortQueue>>, NetError> {
    let mut state = state.lock().expect("wire lock");
    if state.ports.contains_key(&port) {
        return Err(NetError::AddrInUse(port));
    }
    let queue = Arc::new(Mutex::new(PortQueue::default()));
    state.ports.insert(port, queue.clone());
    Ok(queue)
}

/// Locks an in-process wire and resolves the destination port queue —
/// in that order. Stamping and enqueueing under ONE wire-lock
/// acquisition is the bulk path's whole point, and also what keeps the
/// per-port FIFO-by-`seq` invariant: releasing the wire lock between
/// stamp and enqueue would let a concurrent sender win the port-queue
/// lock with a later stamp. (`try_recv` takes only the port lock, so
/// receivers never deadlock against senders.)
fn lock_wire_dst<'a>(
    state: &'a Mutex<WireState>,
    dst: u64,
) -> Result<(std::sync::MutexGuard<'a, WireState>, Arc<Mutex<PortQueue>>), NetError> {
    let state = state.lock().expect("wire lock");
    let queue = state
        .ports
        .get(&dst)
        .ok_or(NetError::Unreachable(dst))?
        .clone();
    Ok((state, queue))
}

/// Stamps one payload with the wire-global sequence number and enqueues
/// it at `dst`.
fn stamp_enqueue_one(
    state: &Mutex<WireState>,
    src: u64,
    dst: u64,
    payload: Vec<u8>,
) -> Result<(), NetError> {
    let (mut state, queue) = lock_wire_dst(state, dst)?;
    let seq = state.next_seq;
    state.next_seq += 1;
    queue
        .lock()
        .expect("port lock")
        .queue
        .push_back(Datagram { src, seq, payload });
    Ok(())
}

/// Stamps `payloads` with consecutive wire-global sequence numbers and
/// enqueues them at `dst`. In-process wires never block, so a bulk send
/// is all-or-nothing — success consumes everything, Unreachable consumes
/// nothing (the lookup happens before the drain, so a failed send leaves
/// the caller's batch intact for error reporting or retry).
fn stamp_enqueue_batch(
    state: &Mutex<WireState>,
    src: u64,
    dst: u64,
    payloads: &mut Vec<Vec<u8>>,
) -> Result<usize, NetError> {
    let (mut state, queue) = lock_wire_dst(state, dst)?;
    let mut port = queue.lock().expect("port lock");
    let n = payloads.len();
    for payload in payloads.drain(..) {
        let seq = state.next_seq;
        state.next_seq += 1;
        port.queue.push_back(Datagram { src, seq, payload });
    }
    Ok(n)
}

/// The in-process wire: a registry of bound ports with global arrival
/// stamping. Cloning is cheap and clones share the wire.
#[derive(Debug, Clone, Default)]
pub struct VirtualWire {
    state: Arc<Mutex<WireState>>,
}

impl VirtualWire {
    /// A fresh, empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `port`, returning its endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let queue = bind_port(&self.state, port)?;
        Ok(UdpEndpoint {
            inner: Arc::new(VirtualEndpoint {
                wire: self.clone(),
                port,
                queue,
            }),
            metering: None,
        })
    }

    /// Binds `port` with socket-cost metering: sends and receives on the
    /// returned endpoint charge [`CostModel`] socket costs to `meter`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is already bound.
    pub fn bind_metered(
        &self,
        port: u64,
        meter: CycleMeter,
        cost: &CostModel,
    ) -> Result<UdpEndpoint, NetError> {
        Ok(self.bind(port)?.metered(meter, cost))
    }
}

impl Transport for VirtualWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        VirtualWire::bind(self, port)
    }

    fn backend(&self) -> &'static str {
        "virtual"
    }
}

/// The virtual-wire implementation of [`WireEndpoint`].
#[derive(Clone)]
struct VirtualEndpoint {
    wire: VirtualWire,
    port: u64,
    queue: Arc<Mutex<PortQueue>>,
}

impl std::fmt::Debug for VirtualEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualEndpoint")
            .field("port", &self.port)
            .field("pending", &self.pending())
            .finish()
    }
}

impl WireEndpoint for VirtualEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        stamp_enqueue_one(&self.wire.state, self.port, dst, payload)
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        stamp_enqueue_batch(&self.wire.state, self.port, dst, payloads)
    }

    fn try_recv(&self) -> Option<Datagram> {
        self.queue.lock().expect("port lock").queue.pop_front()
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut q = self.queue.lock().expect("port lock");
        let take = max.min(q.queue.len());
        out.extend(q.queue.drain(..take));
        take
    }

    fn readable(&self) -> bool {
        !self.queue.lock().expect("port lock").queue.is_empty()
    }

    fn pending(&self) -> usize {
        self.queue.lock().expect("port lock").queue.len()
    }
}

/// Wire-header length of the OS backend: `[seq: u64 BE][src port: u64
/// BE]` prepended to every datagram so the stamp and source survive the
/// kernel round-trip.
pub const OS_WIRE_HEADER_LEN: usize = 16;

/// Largest datagram the OS backend receives (wire header + the biggest
/// fragment the VPN layer emits, with headroom).
const OS_MAX_DATAGRAM: usize = 16 * 1024;

#[derive(Debug, Default)]
struct OsRegistry {
    /// Wire port → the socket's loopback address.
    by_port: HashMap<u64, std::net::SocketAddr>,
}

/// The OS-socket backend: every bound wire port is a real non-blocking
/// `std::net::UdpSocket` on `127.0.0.1`, mapped through a wire-shared
/// port registry. Stamps are assigned at send time from a wire-shared
/// counter and carried in a [`OS_WIRE_HEADER_LEN`]-byte header, so the
/// re-merge-by-`seq` ordering contract matches [`VirtualWire`] exactly.
///
/// Receive buffers are drawn from the wire's [`BufferPool`] and handed
/// to the caller as the datagram payload (header stripped in place) —
/// zero additional user-space copies, no per-datagram allocation once
/// the pool is warm. Callers return finished payloads via
/// [`OsWire::pool`] to keep the loop allocation-free;
/// [`OsWire::pool_stats`] reconciles what was handed out against what
/// came back.
///
/// Cloning is cheap and clones share the wire (registry, stamp counter
/// and pool).
#[derive(Debug, Clone, Default)]
pub struct OsWire {
    registry: Arc<Mutex<OsRegistry>>,
    next_seq: Arc<AtomicU64>,
    pool: BufferPool,
}

impl OsWire {
    /// A fresh wire with an empty port registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this environment can bind loopback UDP sockets at all —
    /// lets tests skip gracefully in network-less sandboxes.
    pub fn available() -> bool {
        std::net::UdpSocket::bind(("127.0.0.1", 0)).is_ok()
    }

    /// The receive-buffer pool (return drained payloads here to keep the
    /// ingress loop allocation-free).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Recycling counters of the receive/egress buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Transport for OsWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let mut reg = self.registry.lock().expect("registry lock");
        if reg.by_port.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        let socket =
            std::net::UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| NetError::Io(e.to_string()))?;
        socket
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let addr = socket
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        reg.by_port.insert(port, addr);
        Ok(UdpEndpoint {
            inner: Arc::new(OsEndpoint {
                socket,
                port,
                wire: self.clone(),
            }),
            metering: None,
        })
    }

    fn backend(&self) -> &'static str {
        "os-socket"
    }
}

/// The OS-socket implementation of [`WireEndpoint`].
struct OsEndpoint {
    socket: std::net::UdpSocket,
    port: u64,
    wire: OsWire,
}

impl std::fmt::Debug for OsEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsEndpoint")
            .field("port", &self.port)
            .field("addr", &self.socket.local_addr().ok())
            .finish()
    }
}

impl OsEndpoint {
    fn lookup(&self, dst: u64) -> Result<std::net::SocketAddr, NetError> {
        self.wire
            .registry
            .lock()
            .expect("registry lock")
            .by_port
            .get(&dst)
            .copied()
            .ok_or(NetError::Unreachable(dst))
    }

    /// Frames `payload` into a pooled buffer, stamps it and ships it.
    /// `Ok(false)` means the socket would block (payload untouched in
    /// the frame buffer is discarded back to the pool; caller retries).
    fn send_framed(&self, addr: std::net::SocketAddr, payload: &[u8]) -> Result<bool, NetError> {
        let mut frame = self.wire.pool.take(OS_WIRE_HEADER_LEN + payload.len());
        let seq = self.wire.next_seq.fetch_add(1, Ordering::Relaxed);
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&self.port.to_be_bytes());
        frame.extend_from_slice(payload);
        let result = self.socket.send_to(&frame, addr);
        self.wire.pool.give(frame);
        match result {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(false),
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }
}

impl WireEndpoint for OsEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        let addr = self.lookup(dst)?;
        // UDP sends on loopback practically never block; spin a few
        // times before surfacing the condition as an error.
        for _ in 0..64 {
            if self.send_framed(addr, &payload)? {
                return Ok(());
            }
            std::thread::yield_now();
        }
        Err(NetError::Io("send would block".into()))
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let addr = self.lookup(dst)?;
        let mut sent = 0;
        while sent < payloads.len() {
            if !self.send_framed(addr, &payloads[sent])? {
                break; // partial send: tail stays with the caller
            }
            sent += 1;
        }
        payloads.drain(..sent);
        Ok(sent)
    }

    fn try_recv(&self) -> Option<Datagram> {
        let mut out = Vec::with_capacity(1);
        self.recv_many(1, &mut out);
        out.pop()
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut taken = 0;
        while taken < max {
            let mut buf = self.wire.pool.take(OS_MAX_DATAGRAM);
            buf.resize(OS_MAX_DATAGRAM, 0);
            match self.socket.recv_from(&mut buf) {
                Ok((n, _)) if n >= OS_WIRE_HEADER_LEN => {
                    buf.truncate(n);
                    let seq = u64::from_be_bytes(buf[0..8].try_into().expect("8 bytes"));
                    let src = u64::from_be_bytes(buf[8..16].try_into().expect("8 bytes"));
                    // Strip the header in place: the pooled buffer itself
                    // becomes the payload (no second copy, no fresh
                    // allocation).
                    buf.drain(..OS_WIRE_HEADER_LEN);
                    out.push(Datagram {
                        src,
                        seq,
                        payload: buf,
                    });
                    taken += 1;
                }
                Ok(_) => {
                    // Runt frame (not ours): drop it, recycle the buffer.
                    self.wire.pool.give(buf);
                }
                Err(_) => {
                    // WouldBlock or transient error: the socket is dry.
                    self.wire.pool.give(buf);
                    break;
                }
            }
        }
        taken
    }

    fn readable(&self) -> bool {
        let mut probe = [0u8; 1];
        self.socket.peek_from(&mut probe).is_ok()
    }

    fn pending(&self) -> usize {
        usize::from(self.readable())
    }
}

/// Submission-ring depth of [`RingWire`]: the most SQEs one doorbell
/// flushes. A batch larger than the ring splits into multiple
/// doorbells, exactly like a real ring forcing an extra
/// `io_uring_enter` when the submission queue fills.
pub const RING_DEPTH: usize = 1024;

#[derive(Debug, Default)]
struct RingCounters {
    doorbells: AtomicU64,
    sqes: AtomicU64,
    cqes: AtomicU64,
}

/// Wire-wide submission/completion accounting of a [`RingWire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Doorbell rings: one per submitted batch (`send_many`/`send_to`
    /// call), plus one per extra [`RING_DEPTH`] chunk of an oversized
    /// batch. Completion harvesting never rings the doorbell.
    pub doorbells: u64,
    /// Submission descriptors filled — one per datagram sent.
    pub sqes: u64,
    /// Completion descriptors harvested — one per datagram received.
    pub cqes: u64,
}

/// The io_uring-style backend: per-endpoint submission/completion
/// descriptor rings over a wire-shared pre-registered [`BufferPool`].
///
/// Functionally the ring is the virtual wire — datagrams are stamped
/// with the wire-global sequence number under one wire-lock acquisition,
/// so every parity proof over [`VirtualWire`] transfers unchanged. What
/// the ring changes is the *shape of the kernel boundary*, which the
/// accounting pins and the cost model prices:
///
/// * a bulk send fills one SQE per datagram and rings **one doorbell
///   per submitted batch** ([`RingStats::doorbells`]; priced by
///   [`CostModel::doorbell_per_batch`] in place of a full
///   [`CostModel::syscall_per_call`]);
/// * completions land in the destination's completion ring and are
///   harvested by the ordinary `recv_many` drain straight from shared
///   memory — no kernel crossing, one CQE per datagram
///   ([`RingStats::cqes`], metered as
///   [`CostModel::descriptor_per_frame`] instead of the socket-buffer
///   fixed cost — see [`WireCostProfile::ring`]);
/// * egress frames are drawn from the wire's pre-registered buffer
///   arena ([`RingWire::pool`]), so steady-state submission allocates
///   nothing.
///
/// Cloning is cheap and clones share the wire (ports, stamp counter,
/// registered buffers and counters).
#[derive(Debug, Clone, Default)]
pub struct RingWire {
    state: Arc<Mutex<WireState>>,
    pool: BufferPool,
    counters: Arc<RingCounters>,
}

impl RingWire {
    /// A fresh wire with empty rings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pre-registered buffer arena: draw egress frames here (and
    /// return drained payloads) to keep submission allocation-free.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Recycling counters of the registered buffer arena.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Wire-wide doorbell/SQE/CQE counters.
    pub fn ring_stats(&self) -> RingStats {
        RingStats {
            doorbells: self.counters.doorbells.load(Ordering::Relaxed),
            sqes: self.counters.sqes.load(Ordering::Relaxed),
            cqes: self.counters.cqes.load(Ordering::Relaxed),
        }
    }
}

impl Transport for RingWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let queue = bind_port(&self.state, port)?;
        Ok(UdpEndpoint {
            inner: Arc::new(RingEndpoint {
                state: self.state.clone(),
                port,
                queue,
                counters: self.counters.clone(),
            }),
            metering: None,
        })
    }

    fn backend(&self) -> &'static str {
        "ring"
    }
}

/// The ring implementation of [`WireEndpoint`].
struct RingEndpoint {
    state: Arc<Mutex<WireState>>,
    port: u64,
    queue: Arc<Mutex<PortQueue>>,
    counters: Arc<RingCounters>,
}

impl std::fmt::Debug for RingEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingEndpoint")
            .field("port", &self.port)
            .field("pending", &self.pending())
            .finish()
    }
}

impl WireEndpoint for RingEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        // A single send is a one-SQE batch: one descriptor, one
        // doorbell. Failed lookups reserve no descriptors (the wire
        // resolves the destination before the submission is filled).
        stamp_enqueue_one(&self.state, self.port, dst, payload)?;
        self.counters.sqes.fetch_add(1, Ordering::Relaxed);
        self.counters.doorbells.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let n = stamp_enqueue_batch(&self.state, self.port, dst, payloads)?;
        self.counters.sqes.fetch_add(n as u64, Ordering::Relaxed);
        self.counters
            .doorbells
            .fetch_add(n.div_ceil(RING_DEPTH) as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn try_recv(&self) -> Option<Datagram> {
        let d = self.queue.lock().expect("port lock").queue.pop_front()?;
        self.counters.cqes.fetch_add(1, Ordering::Relaxed);
        Some(d)
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut q = self.queue.lock().expect("port lock");
        let take = max.min(q.queue.len());
        out.extend(q.queue.drain(..take));
        self.counters.cqes.fetch_add(take as u64, Ordering::Relaxed);
        take
    }

    fn readable(&self) -> bool {
        !self.queue.lock().expect("port lock").queue.is_empty()
    }

    fn pending(&self) -> usize {
        self.queue.lock().expect("port lock").queue.len()
    }

    fn cost_profile(&self, cost: &CostModel) -> WireCostProfile {
        WireCostProfile::ring(cost)
    }
}

/// UMEM frame size of [`XdpWire`]: the largest payload one frame
/// descriptor can carry (sized for the biggest fragment the VPN layer
/// emits, with headroom — same budget as the OS backend's receive
/// buffer).
pub const XDP_FRAME_SIZE: usize = 16 * 1024;

#[derive(Debug, Default)]
struct XdpCounters {
    tx_descriptors: AtomicU64,
    rx_descriptors: AtomicU64,
    fills: AtomicU64,
}

/// Wire-wide fill/completion accounting of an [`XdpWire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XdpStats {
    /// TX descriptors submitted — one per datagram sent.
    pub tx_descriptors: u64,
    /// RX descriptors consumed — one per datagram received.
    pub rx_descriptors: u64,
    /// Fill-ring replenishments: one frame returned to the "NIC" per
    /// consumed RX descriptor.
    pub fills: u64,
}

/// The AF_XDP/DPDK-shaped zero-copy frame backend: a UMEM-style shared
/// frame arena with fill/completion rings.
///
/// Functionally the frame wire is the virtual wire — same wire-global
/// stamping, same parity contract. The difference is *how payload bytes
/// reach the datapath*: a sent frame is handed to the receiver **by
/// descriptor**, so the payload the datapath sees is the very buffer
/// the sender filled (pointer identity, pinned by test) — zero copies
/// from "NIC" to reassembly, which is why the metering profile
/// ([`WireCostProfile::xdp`]) has a zero per-byte charge and only pays
/// [`CostModel::descriptor_per_frame`]. Frames larger than
/// [`XDP_FRAME_SIZE`] don't fit a descriptor and are rejected without
/// consuming anything. Egress frames come from the shared arena
/// ([`XdpWire::umem`]); each consumed RX descriptor replenishes the
/// fill ring ([`XdpStats::fills`]).
///
/// Cloning is cheap and clones share the wire (ports, stamp counter,
/// frame arena and counters).
#[derive(Debug, Clone, Default)]
pub struct XdpWire {
    state: Arc<Mutex<WireState>>,
    umem: BufferPool,
    counters: Arc<XdpCounters>,
}

impl XdpWire {
    /// A fresh wire with an empty frame arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared UMEM frame arena: draw egress frames here (and return
    /// drained payloads) to keep the datapath allocation-free.
    pub fn umem(&self) -> &BufferPool {
        &self.umem
    }

    /// Recycling counters of the frame arena.
    pub fn umem_stats(&self) -> PoolStats {
        self.umem.stats()
    }

    /// Wire-wide descriptor/fill counters.
    pub fn xdp_stats(&self) -> XdpStats {
        XdpStats {
            tx_descriptors: self.counters.tx_descriptors.load(Ordering::Relaxed),
            rx_descriptors: self.counters.rx_descriptors.load(Ordering::Relaxed),
            fills: self.counters.fills.load(Ordering::Relaxed),
        }
    }
}

impl Transport for XdpWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let queue = bind_port(&self.state, port)?;
        Ok(UdpEndpoint {
            inner: Arc::new(XdpEndpoint {
                state: self.state.clone(),
                port,
                queue,
                counters: self.counters.clone(),
            }),
            metering: None,
        })
    }

    fn backend(&self) -> &'static str {
        "xdp-frame"
    }
}

/// The zero-copy frame implementation of [`WireEndpoint`].
struct XdpEndpoint {
    state: Arc<Mutex<WireState>>,
    port: u64,
    queue: Arc<Mutex<PortQueue>>,
    counters: Arc<XdpCounters>,
}

impl std::fmt::Debug for XdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XdpEndpoint")
            .field("port", &self.port)
            .field("pending", &self.pending())
            .finish()
    }
}

fn check_frame_size(payload: &[u8]) -> Result<(), NetError> {
    if payload.len() > XDP_FRAME_SIZE {
        return Err(NetError::Io(format!(
            "frame of {} bytes exceeds the {XDP_FRAME_SIZE}-byte UMEM frame size",
            payload.len()
        )));
    }
    Ok(())
}

impl WireEndpoint for XdpEndpoint {
    fn port(&self) -> u64 {
        self.port
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        check_frame_size(&payload)?;
        stamp_enqueue_one(&self.state, self.port, dst, payload)?;
        self.counters.tx_descriptors.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        // Validate every frame before consuming anything, matching the
        // all-or-nothing Unreachable contract.
        for payload in payloads.iter() {
            check_frame_size(payload)?;
        }
        let n = stamp_enqueue_batch(&self.state, self.port, dst, payloads)?;
        self.counters
            .tx_descriptors
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn try_recv(&self) -> Option<Datagram> {
        let d = self.queue.lock().expect("port lock").queue.pop_front()?;
        self.counters.rx_descriptors.fetch_add(1, Ordering::Relaxed);
        self.counters.fills.fetch_add(1, Ordering::Relaxed);
        Some(d)
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let mut q = self.queue.lock().expect("port lock");
        let take = max.min(q.queue.len());
        out.extend(q.queue.drain(..take));
        self.counters
            .rx_descriptors
            .fetch_add(take as u64, Ordering::Relaxed);
        self.counters
            .fills
            .fetch_add(take as u64, Ordering::Relaxed);
        take
    }

    fn readable(&self) -> bool {
        !self.queue.lock().expect("port lock").queue.is_empty()
    }

    fn pending(&self) -> usize {
        self.queue.lock().expect("port lock").queue.len()
    }

    fn cost_profile(&self, cost: &CostModel) -> WireCostProfile {
        WireCostProfile::xdp(cost)
    }
}

/// A fault-injecting [`Transport`] decorator: forces scheduled bulk
/// `send_many` calls on its endpoints to return **short** — at most the
/// scheduled cap is sent, the unsent tail stays at the front of the
/// caller's vector — exercising the partial-send retry paths
/// (`FramedSender::forward`'s bounded-stall loop, `TxBatcher`'s
/// tail-in-place reflush) on any backend, including the in-process ones
/// that never block on their own.
///
/// Caps are consumed in FIFO order, one per bulk call, wire-wide; calls
/// with no scheduled cap (and all `send_to` singles) pass through
/// untouched.
#[derive(Debug, Clone)]
pub struct ShortSendWire {
    inner: Arc<dyn Transport>,
    caps: Arc<Mutex<VecDeque<usize>>>,
}

impl ShortSendWire {
    /// Decorates `inner` with an empty fault schedule.
    pub fn new(inner: Arc<dyn Transport>) -> Self {
        ShortSendWire {
            inner,
            caps: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Schedules a short return: the next bulk send anywhere on the
    /// wire ships at most `cap` datagrams (zero caps force a full
    /// stall).
    pub fn push_short_send(&self, cap: usize) {
        self.caps.lock().expect("fault lock").push_back(cap);
    }

    /// Scheduled faults not yet consumed.
    pub fn pending_faults(&self) -> usize {
        self.caps.lock().expect("fault lock").len()
    }
}

impl Transport for ShortSendWire {
    fn bind(&self, port: u64) -> Result<UdpEndpoint, NetError> {
        let ep = self.inner.bind(port)?;
        Ok(UdpEndpoint {
            inner: Arc::new(ShortSendEndpoint {
                inner: ep.inner,
                caps: self.caps.clone(),
            }),
            metering: None,
        })
    }

    fn backend(&self) -> &'static str {
        self.inner.backend()
    }
}

/// The fault-injecting endpoint wrapper of [`ShortSendWire`].
struct ShortSendEndpoint {
    inner: Arc<dyn WireEndpoint>,
    caps: Arc<Mutex<VecDeque<usize>>>,
}

impl std::fmt::Debug for ShortSendEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShortSendEndpoint")
            .field("inner", &self.inner)
            .finish()
    }
}

impl WireEndpoint for ShortSendEndpoint {
    fn port(&self) -> u64 {
        self.inner.port()
    }

    fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.send_to(dst, payload)
    }

    fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let cap = self.caps.lock().expect("fault lock").pop_front();
        let Some(cap) = cap else {
            return self.inner.send_many(dst, payloads);
        };
        // Ship only the capped head through the real backend; whatever
        // it leaves unsent (or everything, on error) is spliced back in
        // front so the caller's tail-in-place contract holds exactly.
        let take = cap.min(payloads.len());
        let mut head: Vec<Vec<u8>> = payloads.drain(..take).collect();
        let result = self.inner.send_many(dst, &mut head);
        for (i, p) in head.drain(..).enumerate() {
            payloads.insert(i, p);
        }
        result
    }

    fn try_recv(&self) -> Option<Datagram> {
        self.inner.try_recv()
    }

    fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        self.inner.recv_many(max, out)
    }

    fn readable(&self) -> bool {
        self.inner.readable()
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }

    fn cost_profile(&self, cost: &CostModel) -> WireCostProfile {
        self.inner.cost_profile(cost)
    }
}

/// A bound, non-blocking endpoint over a pluggable [`Transport`]
/// backend. Cloning is cheap; clones share the receive queue (like
/// `dup`ed file descriptors).
#[derive(Clone)]
pub struct UdpEndpoint {
    inner: Arc<dyn WireEndpoint>,
    metering: Option<Arc<(CycleMeter, CostModel)>>,
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("port", &self.inner.port())
            .field("pending", &self.inner.pending())
            .finish()
    }
}

impl UdpEndpoint {
    /// Attaches socket-cost metering to this handle (shared queue, new
    /// handle).
    fn metered(mut self, meter: CycleMeter, cost: &CostModel) -> UdpEndpoint {
        self.metering = Some(Arc::new((meter, cost.clone())));
        self
    }

    /// The port this endpoint is bound to.
    pub fn port(&self) -> u64 {
        self.inner.port()
    }

    fn charge_send(&self, n: usize, bytes: usize) {
        if let Some(m) = &self.metering {
            let p = self.inner.cost_profile(&m.1);
            m.0.add(p.send_fixed * n as u64 + (p.per_byte * bytes as f64) as u64);
        }
    }

    fn charge_recv(&self, n: usize, bytes: usize) {
        if let Some(m) = &self.metering {
            let p = self.inner.cost_profile(&m.1);
            m.0.add(p.recv_fixed * n as u64 + (p.per_byte * bytes as f64) as u64);
        }
    }

    /// Sends one datagram to the endpoint bound at `dst`. The datagram is
    /// stamped with the wire-global arrival sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`;
    /// [`NetError::Io`] on OS-socket failures.
    pub fn send_to(&self, dst: u64, payload: Vec<u8>) -> Result<(), NetError> {
        self.charge_send(1, payload.len());
        self.inner.send_to(dst, payload)
    }

    /// Bulk send (`sendmmsg` shape): ships the payloads to `dst` in
    /// order with **one** backend call, draining the sent prefix from
    /// `payloads`. Returns the number sent; a partial send (OS socket
    /// backpressure) leaves the unsent tail in `payloads` for retry.
    ///
    /// Metering charges the same per-datagram socket costs as N single
    /// sends — the per-call syscall saving is the timing layer's to
    /// price ([`crate::pipeline::SyscallBatchModel`]).
    ///
    /// # Errors
    ///
    /// See [`WireEndpoint::send_many`].
    pub fn send_many(&self, dst: u64, payloads: &mut Vec<Vec<u8>>) -> Result<usize, NetError> {
        let before_bytes: usize = payloads.iter().map(Vec::len).sum();
        let before_len = payloads.len();
        let result = self.inner.send_many(dst, payloads);
        if let Ok(sent) = &result {
            let after_bytes: usize = payloads.iter().map(Vec::len).sum();
            debug_assert_eq!(before_len - payloads.len(), *sent);
            self.charge_send(*sent, before_bytes - after_bytes);
        }
        result
    }

    /// Receives one datagram without blocking: `None` is the
    /// `EWOULDBLOCK` analogue.
    pub fn try_recv(&self) -> Option<Datagram> {
        let d = self.inner.try_recv()?;
        self.charge_recv(1, d.payload.len());
        Some(d)
    }

    /// Bulk receive (`recvmmsg` shape): appends up to `max` waiting
    /// datagrams to `out` in queue order with **one** backend call.
    /// Returns how many were taken; a short count means the socket is
    /// dry. Datagram payloads move by ownership (virtual backend) or
    /// arrive in pool-recycled buffers (OS backend) — no copies either
    /// way.
    pub fn recv_many(&self, max: usize, out: &mut Vec<Datagram>) -> usize {
        let start = out.len();
        let n = self.inner.recv_many(max, out);
        let bytes: usize = out[start..].iter().map(|d| d.payload.len()).sum();
        self.charge_recv(n, bytes);
        n
    }

    /// Whether a datagram is waiting (level-triggered readiness).
    pub fn readable(&self) -> bool {
        self.inner.readable()
    }

    /// Queue depth: datagrams received by the wire but not yet drained
    /// (the OS backend reports at most 1 — kernel queue depth is not
    /// observable).
    pub fn pending(&self) -> usize {
        self.inner.pending()
    }
}

/// Caller-chosen identifier for a registered endpoint, echoed back in
/// [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// One readiness event: the endpoint registered under `token` has at
/// least one datagram waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Token supplied at registration.
    pub token: Token,
}

/// A level-triggered readiness poller over registered endpoints — the
/// `epoll`/`mio::Poll` analogue of the socket layer.
///
/// [`PollGroup::poll`] scans registered endpoints **in registration
/// order** and reports every readable one, so readiness is deterministic
/// given the send history. The poller counts wakeups
/// ([`PollGroup::wakeups`]): the event-driven front-end's amortisation —
/// how many datagrams each wakeup drains — is the measured input to the
/// timing-layer event-loop charge
/// ([`crate::pipeline::AsyncFrontEndModel`]).
///
/// Registration and deregistration are **O(1) amortised**: slots are
/// appended in registration order and indexed by token, deregistration
/// tombstones the slot, and the slot list compacts (order-preserving)
/// once tombstones outnumber live entries — a churning peer population
/// costs constant work per register/deregister instead of a linear scan.
#[derive(Debug)]
pub struct PollGroup {
    /// Registration-ordered slots; `None` marks a deregistered entry
    /// awaiting compaction.
    entries: Vec<Option<(Token, UdpEndpoint)>>,
    /// Token → slot indices into `entries` (one token may cover several
    /// registrations).
    index: HashMap<Token, Vec<usize>>,
    live: usize,
    wakeups: u64,
    /// Tombstone threshold: slot lists no longer than this never
    /// compact. See [`PollGroup::set_compact_min_entries`].
    compact_min_entries: usize,
}

/// Default [`PollGroup`] compaction threshold: slot lists of at most
/// this many entries are scanned as-is rather than compacted.
pub const DEFAULT_COMPACT_MIN_ENTRIES: usize = 16;

impl Default for PollGroup {
    fn default() -> Self {
        PollGroup {
            entries: Vec::new(),
            index: HashMap::new(),
            live: 0,
            wakeups: 0,
            compact_min_entries: DEFAULT_COMPACT_MIN_ENTRIES,
        }
    }
}

impl PollGroup {
    /// An empty poll group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the compaction threshold: deregistration compacts the slot
    /// list only once it is longer than `min_entries` **and** tombstones
    /// outnumber live entries. `0` compacts as eagerly as the
    /// tombstone-majority rule allows; `usize::MAX` disables compaction
    /// entirely (polls then scan tombstones, but register/deregister
    /// never pay a rebuild). The default is
    /// [`DEFAULT_COMPACT_MIN_ENTRIES`]; the amortised-O(1) churn bound
    /// holds at both extremes (regression-tested).
    pub fn set_compact_min_entries(&mut self, min_entries: usize) {
        self.compact_min_entries = min_entries;
    }

    /// Current compaction threshold.
    pub fn compact_min_entries(&self) -> usize {
        self.compact_min_entries
    }

    /// Registers `endpoint` under `token` (readable interest — the only
    /// interest these endpoints have: sends never block for long).
    pub fn register(&mut self, endpoint: &UdpEndpoint, token: Token) {
        let slot = self.entries.len();
        self.entries.push(Some((token, endpoint.clone())));
        self.index.entry(token).or_default().push(slot);
        self.live += 1;
    }

    /// Deregisters every endpoint registered under `token` (O(1)
    /// amortised: tombstone + occasional order-preserving compaction).
    pub fn deregister(&mut self, token: Token) {
        let Some(slots) = self.index.remove(&token) else {
            return;
        };
        for slot in slots {
            if self.entries[slot].take().is_some() {
                self.live -= 1;
            }
        }
        // Compact once tombstones dominate, preserving registration
        // order; amortised O(1) per deregistration.
        if self.entries.len() > self.compact_min_entries && self.live * 2 < self.entries.len() {
            self.entries.retain(Option::is_some);
            self.index.clear();
            for (slot, entry) in self.entries.iter().enumerate() {
                let (token, _) = entry.as_ref().expect("compacted");
                self.index.entry(*token).or_default().push(slot);
            }
        }
    }

    /// Registered endpoint count.
    pub fn registered(&self) -> usize {
        self.live
    }

    /// Scans the registered endpoints and appends one [`Event`] per
    /// readable endpoint (level-triggered; registration order). Returns
    /// the number of events found. Counts one wakeup.
    pub fn poll(&mut self, events: &mut Vec<Event>) -> usize {
        self.wakeups += 1;
        let before = events.len();
        for (token, ep) in self.entries.iter().flatten() {
            if ep.readable() {
                events.push(Event { token: *token });
            }
        }
        events.len() - before
    }

    /// Times [`PollGroup::poll`] was called.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_send_recv_roundtrip() {
        let wire = VirtualWire::new();
        let a = wire.bind(1).unwrap();
        let b = wire.bind(2).unwrap();
        assert_eq!(wire.bind(1).err(), Some(NetError::AddrInUse(1)));
        a.send_to(2, b"hello".to_vec()).unwrap();
        assert!(b.readable());
        let d = b.try_recv().unwrap();
        assert_eq!(d.src, 1);
        assert_eq!(d.payload, b"hello");
        assert!(!b.readable());
        assert_eq!(b.try_recv(), None);
        assert_eq!(a.send_to(99, vec![]), Err(NetError::Unreachable(99)));
    }

    #[test]
    fn sequence_numbers_reconstruct_wire_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(10).unwrap();
        let r1 = wire.bind(11).unwrap();
        let r2 = wire.bind(12).unwrap();
        tx.send_to(11, vec![1]).unwrap();
        tx.send_to(12, vec![2]).unwrap();
        tx.send_to(11, vec![3]).unwrap();
        let mut drained = [
            r2.try_recv().unwrap(),
            r1.try_recv().unwrap(),
            r1.try_recv().unwrap(),
        ];
        drained.sort_by_key(|d| d.seq);
        let payloads: Vec<u8> = drained.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![1, 2, 3], "seq sort == wire send order");
    }

    #[test]
    fn bulk_send_many_matches_single_sends() {
        // Two wires, same traffic: one bulk call vs N singles must
        // produce identical queues (stamps, order, payloads).
        let bulk_wire = VirtualWire::new();
        let single_wire = VirtualWire::new();
        let (btx, brx) = (bulk_wire.bind(1).unwrap(), bulk_wire.bind(2).unwrap());
        let (stx, srx) = (single_wire.bind(1).unwrap(), single_wire.bind(2).unwrap());
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3]).collect();
        let mut batch = payloads.clone();
        assert_eq!(btx.send_many(2, &mut batch).unwrap(), 5);
        assert!(batch.is_empty(), "virtual bulk send consumes everything");
        for p in payloads {
            stx.send_to(2, p).unwrap();
        }
        let mut bulk_got = Vec::new();
        assert_eq!(brx.recv_many(16, &mut bulk_got), 5);
        let mut single_got = Vec::new();
        while let Some(d) = srx.try_recv() {
            single_got.push(d);
        }
        assert_eq!(bulk_got, single_got, "bulk path == single path");
    }

    #[test]
    fn send_many_to_unbound_port_consumes_nothing() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let mut batch = vec![vec![1u8], vec![2u8]];
        assert_eq!(tx.send_many(9, &mut batch), Err(NetError::Unreachable(9)));
        assert_eq!(batch.len(), 2, "failed bulk send keeps the payloads");
    }

    #[test]
    fn recv_many_respects_max_and_preserves_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let rx = wire.bind(2).unwrap();
        for i in 0..7u8 {
            tx.send_to(2, vec![i]).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(3, &mut out), 3);
        assert_eq!(rx.recv_many(100, &mut out), 4, "short count == dry");
        assert_eq!(rx.recv_many(1, &mut out), 0);
        let seen: Vec<u8> = out.iter().map(|d| d.payload[0]).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn poll_reports_readable_endpoints_in_registration_order() {
        let wire = VirtualWire::new();
        let tx = wire.bind(1).unwrap();
        let a = wire.bind(2).unwrap();
        let b = wire.bind(3).unwrap();
        let mut poll = PollGroup::new();
        poll.register(&a, Token(0));
        poll.register(&b, Token(1));
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 0);
        tx.send_to(3, vec![9]).unwrap();
        tx.send_to(2, vec![8]).unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        assert_eq!(
            events[0].token,
            Token(0),
            "registration order, not send order"
        );
        assert_eq!(events[1].token, Token(1));
        // Level-triggered: still readable until drained.
        events.clear();
        assert_eq!(poll.poll(&mut events), 2);
        a.try_recv().unwrap();
        b.try_recv().unwrap();
        events.clear();
        assert_eq!(poll.poll(&mut events), 0);
        assert_eq!(poll.wakeups(), 4);
    }

    /// The O(1) register/deregister churn body, shared by the default
    /// and both-extremes threshold tests: 10k sockets of churn must
    /// complete promptly (the old linear `retain` made this quadratic)
    /// and keep registration order for survivors.
    fn churn_10k(compact_min_entries: Option<usize>) {
        const N: usize = 10_000;
        let wire = VirtualWire::new();
        let tx = wire.bind(u64::MAX).unwrap();
        let endpoints: Vec<UdpEndpoint> = (0..N as u64).map(|p| wire.bind(p).unwrap()).collect();
        let mut poll = PollGroup::new();
        if let Some(t) = compact_min_entries {
            poll.set_compact_min_entries(t);
        }
        let started = std::time::Instant::now();
        for (i, ep) in endpoints.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        assert_eq!(poll.registered(), N);
        // Deregister every even token, register a second wave, then
        // deregister the odd ones — interleaved churn.
        for i in (0..N).step_by(2) {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), N / 2);
        for i in (1..N).step_by(2) {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), 0);
        for (i, ep) in endpoints.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        assert_eq!(poll.registered(), N);
        let elapsed = started.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "10k-socket churn took {elapsed:?} — register/deregister has regressed \
             from O(1) amortised"
        );
        // Survivor order: make three endpoints readable, expect events
        // in registration order.
        tx.send_to(7, vec![1]).unwrap();
        tx.send_to(3, vec![1]).unwrap();
        tx.send_to(9_999, vec![1]).unwrap();
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 3);
        let tokens: Vec<usize> = events.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![3, 7, 9_999], "registration order preserved");
    }

    #[test]
    fn poll_group_churn_is_fast_and_order_preserving() {
        churn_10k(None);
    }

    /// The compaction threshold is a knob, and the churn bound holds at
    /// both extremes: compact as eagerly as tombstone-majority allows,
    /// and never compact at all.
    #[test]
    fn poll_group_churn_holds_at_compaction_extremes() {
        churn_10k(Some(0));
        churn_10k(Some(usize::MAX));
    }

    #[test]
    fn deregister_survives_compaction_and_reregistration() {
        let wire = VirtualWire::new();
        let eps: Vec<UdpEndpoint> = (0..64u64).map(|p| wire.bind(p).unwrap()).collect();
        let mut poll = PollGroup::new();
        for (i, ep) in eps.iter().enumerate() {
            poll.register(ep, Token(i));
        }
        // Trigger compaction (tombstones dominate).
        for i in 0..48 {
            poll.deregister(Token(i));
        }
        assert_eq!(poll.registered(), 16);
        // Deregister *after* compaction must still resolve slots.
        poll.deregister(Token(50));
        assert_eq!(poll.registered(), 15);
        poll.deregister(Token(50)); // idempotent
        assert_eq!(poll.registered(), 15);
        let tx = wire.bind(u64::MAX).unwrap();
        tx.send_to(63, vec![1]).unwrap();
        let mut events = Vec::new();
        assert_eq!(poll.poll(&mut events), 1);
        assert_eq!(events[0].token, Token(63));
    }

    #[test]
    fn metered_endpoints_charge_socket_costs() {
        let wire = VirtualWire::new();
        let cost = CostModel::calibrated();
        let meter = CycleMeter::new();
        let tx = wire.bind(1).unwrap();
        let rx = wire.bind_metered(2, meter.clone(), &cost).unwrap();
        tx.send_to(2, vec![0u8; 100]).unwrap();
        assert_eq!(meter.read(), 0, "unmetered sender, undrained receiver");
        rx.try_recv().unwrap();
        let expected = cost.socket_recv_fixed + (cost.socket_per_byte * 100.0) as u64;
        assert_eq!(meter.take(), expected);
    }

    #[test]
    fn bulk_metering_matches_single_metering() {
        // One measured charge must replay identically under every bulk
        // size: bulk calls charge exactly N× the single-datagram cost.
        let cost = CostModel::calibrated();
        let wire = VirtualWire::new();
        let meter_bulk = CycleMeter::new();
        let meter_single = CycleMeter::new();
        let tx = wire.bind(1).unwrap();
        let rx_bulk = wire.bind_metered(2, meter_bulk.clone(), &cost).unwrap();
        let rx_single = wire.bind_metered(3, meter_single.clone(), &cost).unwrap();
        for i in 0..6u8 {
            tx.send_to(2, vec![i; 50]).unwrap();
            tx.send_to(3, vec![i; 50]).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx_bulk.recv_many(6, &mut out), 6);
        while rx_single.try_recv().is_some() {}
        assert_eq!(meter_bulk.take(), meter_single.take());

        let meter_tx = CycleMeter::new();
        let tx_metered = wire.bind_metered(10, meter_tx.clone(), &cost).unwrap();
        let mut batch: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 25]).collect();
        tx_metered.send_many(2, &mut batch).unwrap();
        let expected = cost.socket_send_fixed * 4 + (cost.socket_per_byte * 100.0) as u64;
        assert_eq!(meter_tx.take(), expected);
    }

    #[test]
    fn os_wire_roundtrips_with_stamps_when_available() {
        if !OsWire::available() {
            eprintln!("skipping: loopback sockets unavailable in this environment");
            return;
        }
        let wire = OsWire::new();
        let a = Transport::bind(&wire, 1).unwrap();
        let b = Transport::bind(&wire, 2).unwrap();
        assert_eq!(
            Transport::bind(&wire, 1).err(),
            Some(NetError::AddrInUse(1))
        );
        assert_eq!(wire.backend(), "os-socket");
        a.send_to(2, b"over the kernel".to_vec()).unwrap();
        a.send_to(2, b"second".to_vec()).unwrap();
        // Loopback delivery is synchronous in practice but give the
        // kernel a moment to be safe.
        let mut got = Vec::new();
        for _ in 0..1_000 {
            b.recv_many(16, &mut got);
            if got.len() >= 2 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].src, 1);
        assert_eq!(got[0].payload, b"over the kernel");
        assert!(got[0].seq < got[1].seq, "stamps carry send order");
        assert_eq!(a.send_to(9, vec![1]), Err(NetError::Unreachable(9)));
        // Return payloads: the pool reconciles (every buffer handed out
        // for ingress came back or is accounted for).
        let held = got.len() as u64;
        for d in got {
            wire.pool().give(d.payload);
        }
        let stats = wire.pool_stats();
        assert_eq!(
            stats.handed_out(),
            stats.returned + stats.discarded,
            "pool reconciles after payload return: {stats:?} (held {held})"
        );
    }

    #[test]
    fn ring_backend_counts_one_doorbell_per_submitted_batch() {
        let wire = RingWire::new();
        let tx = Transport::bind(&wire, 1).unwrap();
        let rx = Transport::bind(&wire, 2).unwrap();
        assert_eq!(wire.backend(), "ring");

        // A five-datagram bulk submit: five SQEs, ONE doorbell.
        let mut batch: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
        assert_eq!(tx.send_many(2, &mut batch).unwrap(), 5);
        let s = wire.ring_stats();
        assert_eq!((s.doorbells, s.sqes, s.cqes), (1, 5, 0));

        // Five singles: five doorbells — the shape the batch amortises.
        for i in 0..5u8 {
            tx.send_to(2, vec![i; 4]).unwrap();
        }
        let s = wire.ring_stats();
        assert_eq!((s.doorbells, s.sqes), (6, 10));

        // Harvesting completions is a shared-memory drain: CQEs tick,
        // doorbells don't.
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(16, &mut out), 10);
        let s = wire.ring_stats();
        assert_eq!((s.doorbells, s.cqes), (6, 10));
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "stamp order: {seqs:?}"
        );

        // Failed lookups reserve nothing.
        assert_eq!(tx.send_to(9, vec![1]), Err(NetError::Unreachable(9)));
        let mut batch = vec![vec![1u8]];
        assert_eq!(tx.send_many(9, &mut batch), Err(NetError::Unreachable(9)));
        assert_eq!(batch.len(), 1, "failed bulk send keeps the payloads");
        assert_eq!(wire.ring_stats(), s);
    }

    #[test]
    fn ring_oversized_batch_splits_doorbells_at_ring_depth() {
        let wire = RingWire::new();
        let tx = Transport::bind(&wire, 1).unwrap();
        let _rx = Transport::bind(&wire, 2).unwrap();
        let mut batch: Vec<Vec<u8>> = (0..RING_DEPTH + 1).map(|_| vec![0u8]).collect();
        assert_eq!(tx.send_many(2, &mut batch).unwrap(), RING_DEPTH + 1);
        assert_eq!(
            wire.ring_stats().doorbells,
            2,
            "a batch one past the ring depth needs a second doorbell"
        );
    }

    #[test]
    fn xdp_frames_reach_the_receiver_without_copying() {
        let wire = XdpWire::new();
        let tx = Transport::bind(&wire, 1).unwrap();
        let rx = Transport::bind(&wire, 2).unwrap();
        assert_eq!(wire.backend(), "xdp-frame");

        // Descriptor hand-off: the received payload IS the sender's
        // buffer (pointer identity), the zero-copy contract the cost
        // profile's zero per-byte charge models.
        let frame = wire.umem().take(64);
        let mut frame = frame;
        frame.extend_from_slice(b"by descriptor");
        let ptr = frame.as_ptr();
        tx.send_to(2, frame).unwrap();
        let d = rx.try_recv().unwrap();
        assert_eq!(d.payload, b"by descriptor");
        assert_eq!(
            d.payload.as_ptr(),
            ptr,
            "frame must be handed by descriptor"
        );
        let s = wire.xdp_stats();
        assert_eq!((s.tx_descriptors, s.rx_descriptors, s.fills), (1, 1, 1));
        wire.umem().give(d.payload);

        // Bulk path ticks one descriptor per frame on both sides.
        let mut batch: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 8]).collect();
        assert_eq!(tx.send_many(2, &mut batch).unwrap(), 3);
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(16, &mut out), 3);
        let s = wire.xdp_stats();
        assert_eq!((s.tx_descriptors, s.rx_descriptors, s.fills), (4, 4, 4));
    }

    #[test]
    fn xdp_rejects_frames_larger_than_the_umem_frame_size() {
        let wire = XdpWire::new();
        let tx = Transport::bind(&wire, 1).unwrap();
        let _rx = Transport::bind(&wire, 2).unwrap();
        assert!(matches!(
            tx.send_to(2, vec![0u8; XDP_FRAME_SIZE + 1]),
            Err(NetError::Io(_))
        ));
        // Bulk: one oversized frame anywhere rejects the whole batch
        // without consuming anything (all-or-nothing, like Unreachable).
        let mut batch = vec![vec![1u8; 8], vec![0u8; XDP_FRAME_SIZE + 1], vec![2u8; 8]];
        assert!(matches!(tx.send_many(2, &mut batch), Err(NetError::Io(_))));
        assert_eq!(batch.len(), 3, "rejected bulk send keeps the payloads");
        let s = wire.xdp_stats();
        assert_eq!((s.tx_descriptors, s.rx_descriptors), (0, 0));
    }

    #[test]
    fn backend_profiles_drive_metered_charges() {
        let cost = CostModel::calibrated();
        let meter = CycleMeter::new();

        // Ring: descriptor fixed cost + the registered-buffer copy.
        let ring = RingWire::new();
        let tx = Transport::bind(&ring, 1).unwrap();
        let rx = ring.bind_metered(2, meter.clone(), &cost).unwrap();
        tx.send_to(2, vec![0u8; 100]).unwrap();
        rx.try_recv().unwrap();
        assert_eq!(
            meter.take(),
            cost.descriptor_per_frame + (cost.socket_per_byte * 100.0) as u64
        );

        // XDP: descriptor fixed cost only — zero per-byte, the zero-copy
        // half of the backend's story.
        let xdp = XdpWire::new();
        let tx = Transport::bind(&xdp, 1).unwrap();
        let rx = xdp.bind_metered(2, meter.clone(), &cost).unwrap();
        tx.send_to(2, vec![0u8; 100]).unwrap();
        rx.try_recv().unwrap();
        assert_eq!(meter.take(), cost.descriptor_per_frame);

        // TransportKind profiles agree with what the endpoints charge.
        assert_eq!(
            TransportKind::Ring.profile(&cost),
            WireCostProfile::ring(&cost)
        );
        assert_eq!(
            TransportKind::XdpFrame.profile(&cost),
            WireCostProfile::xdp(&cost)
        );
        assert_eq!(
            TransportKind::Virtual.profile(&cost),
            WireCostProfile::socket(&cost)
        );
        assert!(TransportKind::Ring.bypasses_kernel_rx());
        assert!(TransportKind::XdpFrame.bypasses_kernel_rx());
        assert!(!TransportKind::OsSocket.bypasses_kernel_rx());
    }

    #[test]
    fn short_send_faults_leave_the_tail_in_place_in_order() {
        for kind in [
            TransportKind::Virtual,
            TransportKind::Ring,
            TransportKind::XdpFrame,
        ] {
            let inner: Arc<dyn Transport> = match kind {
                TransportKind::Virtual => Arc::new(VirtualWire::new()),
                TransportKind::Ring => Arc::new(RingWire::new()),
                TransportKind::XdpFrame => Arc::new(XdpWire::new()),
                TransportKind::OsSocket => unreachable!(),
            };
            let wire = ShortSendWire::new(inner);
            let tx = Transport::bind(&wire, 1).unwrap();
            let rx = Transport::bind(&wire, 2).unwrap();
            assert_eq!(wire.backend(), kind.name());

            wire.push_short_send(2);
            wire.push_short_send(0); // a full stall
            let mut batch: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i]).collect();
            assert_eq!(tx.send_many(2, &mut batch).unwrap(), 2, "{kind:?}");
            let tail: Vec<u8> = batch.iter().map(|p| p[0]).collect();
            assert_eq!(tail, vec![2, 3, 4], "unsent tail in place, in order");
            assert_eq!(tx.send_many(2, &mut batch).unwrap(), 0, "stalled");
            assert_eq!(batch.len(), 3);
            // Unfaulted retry drains the tail; the receiver sees the
            // original order with no duplicates.
            assert_eq!(tx.send_many(2, &mut batch).unwrap(), 3);
            assert_eq!(wire.pending_faults(), 0);
            let mut out = Vec::new();
            assert_eq!(rx.recv_many(16, &mut out), 5);
            let seen: Vec<u8> = out.iter().map(|d| d.payload[0]).collect();
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "{kind:?}: no reorder, no dup");
        }
    }
}
