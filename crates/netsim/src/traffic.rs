//! Workload generators: iperf-style bulk payloads and ping trains.
//!
//! The paper's evaluation traffic deliberately does **not** match any
//! firewall or IDPS rule (§V-B), so the generators here produce benign
//! payloads by construction; [`malicious_payload`] exists for the tests
//! that verify detection.

use crate::packet::Packet;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generates a benign payload of `len` bytes: printable ASCII drawn from a
/// seeded RNG, guaranteed free of the `EB-` prefix used by the synthetic
/// Snort rule set.
pub fn benign_payload(len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // 'a'..='z' only: the synthetic rule set requires at least one
        // uppercase or digit character in every pattern.
        out.push(rng.gen_range(b'a'..=b'z'));
    }
    out
}

/// Embeds `pattern` into an otherwise benign payload at `offset`.
pub fn malicious_payload(len: usize, pattern: &[u8], offset: usize, rng: &mut impl Rng) -> Vec<u8> {
    assert!(offset + pattern.len() <= len, "pattern must fit payload");
    let mut payload = benign_payload(len, rng);
    payload[offset..offset + pattern.len()].copy_from_slice(pattern);
    payload
}

/// An iperf-style bulk flow: `count` TCP packets of `payload_len` bytes
/// from `src` to `dst:5001`.
pub struct BulkFlow {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    payload_len: usize,
    seq: u32,
    remaining: usize,
    payload: Vec<u8>,
}

impl BulkFlow {
    /// iperf's default port.
    pub const IPERF_PORT: u16 = 5001;

    /// Creates a flow of `count` packets, payload generated once from `rng`
    /// (iperf repeats its buffer, so does this).
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload_len: usize,
        count: usize,
        rng: &mut impl Rng,
    ) -> Self {
        BulkFlow {
            src,
            dst,
            payload_len,
            seq: 0,
            remaining: count,
            payload: benign_payload(payload_len, rng),
        }
    }
}

impl Iterator for BulkFlow {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = Packet::tcp(
            self.src,
            self.dst,
            40_000,
            Self::IPERF_PORT,
            self.seq,
            &self.payload,
        );
        self.seq = self.seq.wrapping_add(self.payload_len as u32);
        Some(p)
    }
}

/// A train of ICMP echo requests (the paper's latency workload).
pub fn ping_train(src: Ipv4Addr, dst: Ipv4Addr, count: u16) -> Vec<Packet> {
    (0..count)
        .map(|seq| Packet::icmp_echo_request(src, dst, 0x4242, seq, &[0x61; 56]))
        .collect()
}

/// One step of a deterministic offered-load trace
/// ([`flash_crowd_trace`] / [`diurnal_trace`]): how many peers are
/// connected at that step, and whether the step sits in the trace's
/// *crowd* phase — the load is then heavy-tailed (a few elephants carry
/// most of the offered bytes) rather than uniform. The adaptive-control
/// bench and the controller tests both replay these traces, so the
/// shapes are pinned by unit tests below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Position in the trace (0-based).
    pub step: usize,
    /// Connected peers offering load at this step.
    pub clients: usize,
    /// True in the skewed (flash-crowd / peak-hour) phase.
    pub crowd: bool,
}

/// A flash-crowd offered-load trace: a flat base load for the first
/// third of the trace, a sharp spike to `peak` clients (one step, the
/// crowd arriving at once), then an exponential decay back towards the
/// base with a half-life of one eighth of the trace. Steps at or above
/// the midpoint between base and peak are flagged as the crowd phase
/// (their load mix is heavy-tailed: the crowd hammers a handful of hot
/// destinations).
///
/// Purely arithmetic and deterministic — same arguments, same trace.
///
/// # Panics
///
/// Panics if `peak < base` or `points < 4`.
pub fn flash_crowd_trace(base: usize, peak: usize, points: usize) -> Vec<TraceStep> {
    assert!(peak >= base, "a flash crowd grows the load");
    assert!(points >= 4, "need room for base, spike and decay");
    let spike_at = points / 3;
    let half_life = (points as f64 / 8.0).max(1.0);
    let crowd_floor = base + (peak - base) / 2;
    (0..points)
        .map(|i| {
            let clients = if i < spike_at {
                base
            } else {
                let age = (i - spike_at) as f64;
                let decayed = (peak - base) as f64 * 0.5f64.powf(age / half_life);
                base + decayed.round() as usize
            };
            TraceStep {
                step: i,
                clients,
                crowd: clients >= crowd_floor && peak > base,
            }
        })
        .collect()
}

/// A diurnal offered-load trace: a raised cosine over one synthetic day
/// — trough (`min` clients) at both ends, peak (`max` clients) in the
/// middle of the trace. The top quarter of the swing is flagged as the
/// crowd phase (peak-hour load skews heavy-tailed just like the flash
/// crowd, only it arrives and leaves smoothly).
///
/// Purely arithmetic and deterministic — same arguments, same trace.
///
/// # Panics
///
/// Panics if `max < min` or `points < 4`.
pub fn diurnal_trace(min: usize, max: usize, points: usize) -> Vec<TraceStep> {
    assert!(max >= min, "peak hour cannot undercut the trough");
    assert!(points >= 4, "need room for trough, ramp and peak");
    let crowd_floor = min + (max - min) * 3 / 4;
    (0..points)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * i as f64 / (points - 1) as f64;
            let swing = (1.0 - phase.cos()) / 2.0; // 0 at ends, 1 mid-trace
            let clients = min + ((max - min) as f64 * swing).round() as usize;
            TraceStep {
                step: i,
                clients,
                crowd: clients >= crowd_floor && max > min,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn benign_payload_is_lowercase_ascii() {
        let p = benign_payload(1000, &mut rng());
        assert_eq!(p.len(), 1000);
        assert!(p.iter().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn malicious_payload_embeds_pattern() {
        let p = malicious_payload(100, b"EB-MAL-0001", 20, &mut rng());
        assert_eq!(&p[20..31], b"EB-MAL-0001");
        assert_eq!(p.len(), 100);
    }

    #[test]
    #[should_panic(expected = "pattern must fit")]
    fn malicious_payload_bounds_checked() {
        malicious_payload(10, b"0123456789abc", 0, &mut rng());
    }

    #[test]
    fn bulk_flow_generates_count_packets() {
        let flow = BulkFlow::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1460,
            5,
            &mut rng(),
        );
        let packets: Vec<Packet> = flow.collect();
        assert_eq!(packets.len(), 5);
        assert!(packets
            .iter()
            .all(|p| p.dst_port() == Some(BulkFlow::IPERF_PORT)));
        // Sequence numbers advance by payload length.
        assert_eq!(packets[0].app_payload().len(), 1460);
    }

    #[test]
    fn ping_train_sequencing() {
        let pings = ping_train(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1), 10);
        assert_eq!(pings.len(), 10);
        for p in &pings {
            assert_eq!(p.header().protocol, crate::packet::IpProtocol::Icmp);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = benign_payload(64, &mut rng());
        let b = benign_payload(64, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn flash_crowd_shape_is_flat_spike_decay() {
        let t = flash_crowd_trace(20, 120, 12);
        assert_eq!(t.len(), 12);
        let spike_at = 12 / 3;
        // Flat base before the spike, none of it crowd-flagged.
        assert!(t[..spike_at].iter().all(|s| s.clients == 20 && !s.crowd));
        // The spike step hits the full peak and is the trace maximum.
        assert_eq!(t[spike_at].clients, 120);
        assert!(t[spike_at].crowd);
        assert_eq!(t.iter().map(|s| s.clients).max(), Some(120));
        // Monotone non-increasing decay back towards the base.
        assert!(t[spike_at..]
            .windows(2)
            .all(|w| w[1].clients <= w[0].clients));
        let last = t.last().unwrap();
        assert!(last.clients < 120 && last.clients >= 20);
        // The crowd flag marks exactly the upper half of the swing.
        for s in &t {
            assert_eq!(s.crowd, s.clients >= 70, "step {}: {}", s.step, s.clients);
        }
        // Steps are consecutively numbered from zero.
        assert!(t.iter().enumerate().all(|(i, s)| s.step == i));
    }

    #[test]
    fn diurnal_shape_is_a_raised_cosine() {
        let t = diurnal_trace(10, 90, 13);
        assert_eq!(t.len(), 13);
        // Troughs at both ends, peak mid-trace.
        assert_eq!(t[0].clients, 10);
        assert_eq!(t[12].clients, 10);
        assert_eq!(t[6].clients, 90);
        // Rising half then falling half, mirror-symmetric.
        assert!(t[..=6].windows(2).all(|w| w[1].clients >= w[0].clients));
        assert!(t[6..].windows(2).all(|w| w[1].clients <= w[0].clients));
        for i in 0..13 {
            assert_eq!(t[i].clients, t[12 - i].clients, "symmetry at {i}");
        }
        // Crowd phase = the top quarter of the swing, and only there.
        for s in &t {
            assert_eq!(s.crowd, s.clients >= 70, "step {}: {}", s.step, s.clients);
        }
        assert!(t.iter().any(|s| s.crowd) && t.iter().any(|s| !s.crowd));
    }

    #[test]
    fn traces_are_deterministic_and_flat_when_degenerate() {
        assert_eq!(
            flash_crowd_trace(20, 120, 12),
            flash_crowd_trace(20, 120, 12)
        );
        assert_eq!(diurnal_trace(10, 90, 13), diurnal_trace(10, 90, 13));
        // A crowd that never comes: flat trace, no crowd phase.
        let flat = flash_crowd_trace(30, 30, 6);
        assert!(flat.iter().all(|s| s.clients == 30 && !s.crowd));
        let flat = diurnal_trace(30, 30, 6);
        assert!(flat.iter().all(|s| s.clients == 30 && !s.crowd));
    }
}
