//! Workload generators: iperf-style bulk payloads and ping trains.
//!
//! The paper's evaluation traffic deliberately does **not** match any
//! firewall or IDPS rule (§V-B), so the generators here produce benign
//! payloads by construction; [`malicious_payload`] exists for the tests
//! that verify detection.

use crate::packet::Packet;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generates a benign payload of `len` bytes: printable ASCII drawn from a
/// seeded RNG, guaranteed free of the `EB-` prefix used by the synthetic
/// Snort rule set.
pub fn benign_payload(len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // 'a'..='z' only: the synthetic rule set requires at least one
        // uppercase or digit character in every pattern.
        out.push(rng.gen_range(b'a'..=b'z'));
    }
    out
}

/// Embeds `pattern` into an otherwise benign payload at `offset`.
pub fn malicious_payload(len: usize, pattern: &[u8], offset: usize, rng: &mut impl Rng) -> Vec<u8> {
    assert!(offset + pattern.len() <= len, "pattern must fit payload");
    let mut payload = benign_payload(len, rng);
    payload[offset..offset + pattern.len()].copy_from_slice(pattern);
    payload
}

/// An iperf-style bulk flow: `count` TCP packets of `payload_len` bytes
/// from `src` to `dst:5001`.
pub struct BulkFlow {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    payload_len: usize,
    seq: u32,
    remaining: usize,
    payload: Vec<u8>,
}

impl BulkFlow {
    /// iperf's default port.
    pub const IPERF_PORT: u16 = 5001;

    /// Creates a flow of `count` packets, payload generated once from `rng`
    /// (iperf repeats its buffer, so does this).
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload_len: usize,
        count: usize,
        rng: &mut impl Rng,
    ) -> Self {
        BulkFlow {
            src,
            dst,
            payload_len,
            seq: 0,
            remaining: count,
            payload: benign_payload(payload_len, rng),
        }
    }
}

impl Iterator for BulkFlow {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = Packet::tcp(
            self.src,
            self.dst,
            40_000,
            Self::IPERF_PORT,
            self.seq,
            &self.payload,
        );
        self.seq = self.seq.wrapping_add(self.payload_len as u32);
        Some(p)
    }
}

/// A train of ICMP echo requests (the paper's latency workload).
pub fn ping_train(src: Ipv4Addr, dst: Ipv4Addr, count: u16) -> Vec<Packet> {
    (0..count)
        .map(|seq| Packet::icmp_echo_request(src, dst, 0x4242, seq, &[0x61; 56]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn benign_payload_is_lowercase_ascii() {
        let p = benign_payload(1000, &mut rng());
        assert_eq!(p.len(), 1000);
        assert!(p.iter().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn malicious_payload_embeds_pattern() {
        let p = malicious_payload(100, b"EB-MAL-0001", 20, &mut rng());
        assert_eq!(&p[20..31], b"EB-MAL-0001");
        assert_eq!(p.len(), 100);
    }

    #[test]
    #[should_panic(expected = "pattern must fit")]
    fn malicious_payload_bounds_checked() {
        malicious_payload(10, b"0123456789abc", 0, &mut rng());
    }

    #[test]
    fn bulk_flow_generates_count_packets() {
        let flow = BulkFlow::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1460,
            5,
            &mut rng(),
        );
        let packets: Vec<Packet> = flow.collect();
        assert_eq!(packets.len(), 5);
        assert!(packets
            .iter()
            .all(|p| p.dst_port() == Some(BulkFlow::IPERF_PORT)));
        // Sequence numbers advance by payload length.
        assert_eq!(packets[0].app_payload().len(), 1460);
    }

    #[test]
    fn ping_train_sequencing() {
        let pings = ping_train(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1), 10);
        assert_eq!(pings.len(), 10);
        for p in &pings {
            assert_eq!(p.header().protocol, crate::packet::IpProtocol::Icmp);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = benign_payload(64, &mut rng());
        let b = benign_payload(64, &mut rng());
        assert_eq!(a, b);
    }
}
