//! Summary statistics and CDF helpers for experiment output.

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Summary {
            count: sorted.len(),
            mean,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
        })
    }
}

/// Percentile of an already-sorted sample (nearest-rank with interpolation).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Evenly spaced points of the empirical CDF, as `(value, fraction)` pairs —
/// the format of the paper's Fig. 6.
pub fn cdf_points(values: &[f64], n_points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || n_points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    (1..=n_points)
        .map(|i| {
            let frac = i as f64 / n_points as f64;
            (percentile(&sorted, frac.min(1.0)), frac)
        })
        .collect()
}

/// Formats a bits-per-second value like the paper's axes (Mbps/Gbps).
pub fn format_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.0} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.0} kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 0.02);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn cdf_monotonic() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = cdf_points(&v, 10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 5.0);
    }

    #[test]
    fn bps_formatting() {
        assert_eq!(format_bps(6.5e9), "6.50 Gbps");
        assert_eq!(format_bps(813e6), "813 Mbps");
        assert_eq!(format_bps(5e3), "5 kbps");
        assert_eq!(format_bps(12.0), "12 bps");
    }
}
