//! The timing layer: replays per-packet cycle charges (measured by running
//! the real EndBox code) through simulated machines and links, producing
//! the throughput / latency / CPU-utilisation numbers of §V.
//!
//! # Model
//!
//! Functional code charges [`crate::cost::CycleMeter`]s as it processes
//! packets; a measurement harness condenses those charges into a
//! [`PacketCharge`] per deployment, and [`run_scalability`] replays the
//! charge through client machines, a link and a server machine as a
//! sequence of *serial lanes*:
//!
//! * **Client lanes** — one single-threaded VPN process per client;
//!   queued packets never reserve execution slots.
//! * **Wire** — transmissions serialise in actual client-completion
//!   order.
//! * **RX lanes** ([`ScalabilityConfig::rx_shards`]) — `K` serial framing
//!   lanes (`client mod K`) charging [`PacketCharge::rx_cycles`] each,
//!   with completion-ordered hand-off to dispatch. The socket front-end
//!   ([`ScalabilityConfig::async_front_end`]) adds the event-loop wakeup
//!   charge here: per datagram when call-driven, amortised over the
//!   measured drain batch when event-driven. The syscall boundary
//!   ([`ScalabilityConfig::syscall_batch`]) likewise adds the per-call
//!   kernel-crossing charge, amortised over the measured bulk
//!   `recv_many` batch size.
//! * **Worker lanes** ([`ScalabilityConfig::server_worker_shards`]) —
//!   one serial flow per worker shard; sessions are placed by static
//!   affinity or the load-aware migration model
//!   ([`ScalabilityConfig::load_aware_dispatch`]).
//!
//! # Compatibility invariant
//!
//! Every refinement is gated on an `Option`: `rx_shards: None`,
//! `async_front_end: None` and `syscall_batch: None` keep the legacy
//! folded models **bit-identical** (regression-tested below), so shipped
//! figures never move when a new stage is added to the model.

use crate::resource::{Link, Machine, MachineSpec};
use crate::time::{SimDuration, SimTime};

/// Cycle charges for one tunnel-level packet, as measured by running the
/// functional code with a [`crate::cost::CycleMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCharge {
    /// Application payload carried (tun-level bytes).
    pub payload_bytes: usize,
    /// Total bytes placed on the wire (payload + VPN overheads).
    pub wire_bytes: usize,
    /// Number of wire datagrams.
    pub fragments: usize,
    /// Cycles charged on the client machine.
    pub client_cycles: u64,
    /// Cycles charged on the server machine (total — includes
    /// `rx_cycles`).
    pub server_cycles: u64,
    /// The portion of `server_cycles` attributable to the RX front-end
    /// (datagram reassembly and record framing). Only consulted when
    /// [`ScalabilityConfig::rx_shards`] models a separate RX stage: those
    /// cycles then run on serial RX lanes instead of the worker-shard
    /// lanes, leaving the per-packet total unchanged.
    pub rx_cycles: u64,
    /// True if the middlebox dropped the packet (still consumes client
    /// cycles, but no wire/server cost).
    pub dropped: bool,
}

/// Result of a throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// Goodput in Mbps (delivered payload bits / elapsed).
    pub mbps: f64,
    /// Wall-clock span of the run in simulated time.
    pub elapsed: SimDuration,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped by the middlebox.
    pub dropped: u64,
    /// Client-side CPU utilisation in [0, 1].
    pub client_util: f64,
    /// Server-side CPU utilisation in [0, 1].
    pub server_util: f64,
}

/// Simulates a saturating single flow (one iperf client through one VPN
/// server), the Fig. 8 / Fig. 9 setup: the client VPN process is
/// single-threaded, so packets are serialised on one flow watermark.
pub fn run_single_flow(
    client_spec: MachineSpec,
    server_spec: MachineSpec,
    link: &mut Link,
    charges: impl Iterator<Item = PacketCharge>,
) -> ThroughputResult {
    let mut client = Machine::new(client_spec);
    let mut server = Machine::new(server_spec);
    let mut client_flow = SimTime::ZERO;
    let mut server_flow = SimTime::ZERO;

    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut delivered_bits = 0u64;
    let mut last_event = SimTime::ZERO;

    for charge in charges {
        let done_client =
            client.run_job_flow(SimTime::ZERO, charge.client_cycles, &mut client_flow);
        last_event = last_event.max(done_client);
        if charge.dropped {
            dropped += 1;
            continue;
        }
        let frag_bytes = charge.wire_bytes / charge.fragments.max(1);
        let mut arrived = done_client;
        for _ in 0..charge.fragments.max(1) {
            arrived = link.transmit(done_client, frag_bytes);
        }
        let done_server = server.run_job_flow(arrived, charge.server_cycles, &mut server_flow);
        delivered += 1;
        delivered_bits += charge.payload_bytes as u64 * 8;
        last_event = last_event.max(done_server);
    }

    let elapsed = last_event - SimTime::ZERO;
    let mbps = if elapsed == SimDuration::ZERO {
        0.0
    } else {
        delivered_bits as f64 / elapsed.as_secs_f64() / 1e6
    };
    ThroughputResult {
        mbps,
        elapsed,
        delivered,
        dropped,
        client_util: client.utilisation(elapsed),
        server_util: server.utilisation(elapsed),
    }
}

/// Configuration for a multi-client scalability run (Fig. 10).
#[derive(Debug, Clone)]
pub struct ScalabilityConfig {
    /// Number of connected clients.
    pub n_clients: usize,
    /// Offered load per client in bits/s (paper: 200 Mbps).
    pub per_client_bps: u64,
    /// Tunnel payload size (paper: 1 500 B).
    pub payload_bytes: usize,
    /// Simulated duration of the measurement window.
    pub duration: SimDuration,
    /// Client machines available (paper: five class A machines).
    pub n_client_machines: usize,
    /// Extra scheduler contention on the server per process beyond two per
    /// core (models one-OpenVPN-instance-per-client oversubscription).
    pub contention_per_excess_process: f64,
    /// Server processes per client (OpenVPN instance + optional Click).
    pub server_procs_per_client: usize,
    /// All server work funnels through ONE single-threaded process (the
    /// vanilla-Click deployment of Fig. 10a, capped at one core).
    pub server_single_process: bool,
    /// `Some(n)`: the server is ONE process with `n` worker shards
    /// (session-id-affine assignment, each shard a serial flow competing
    /// for the machine's cores) — the sharded multi-worker EndBox server.
    /// `None`: the paper's legacy one-process-per-client model, governed
    /// by `server_procs_per_client` / `server_single_process`.
    pub server_worker_shards: Option<usize>,
    /// `Some(w)`: relative offered-load weight per client (heavy-tailed
    /// mixes). Weights are normalised so the *aggregate* offered load
    /// stays `n_clients * per_client_bps` — a skewed mix is directly
    /// comparable to the uniform one. `None`: every client offers
    /// `per_client_bps` (the paper's uniform setup).
    pub client_load_weights: Option<Vec<f64>>,
    /// With `server_worker_shards`, dispatch sessions to worker flows
    /// load-awarely: a session migrates to the least-backlogged shard when
    /// its current shard's backlog exceeds the minimum by more than
    /// [`MIGRATION_BACKLOG_JOBS`] jobs' worth of service time (bounded
    /// migration — the timing-layer model of the real
    /// `ShardedVpnServer`'s load-aware dispatcher). `false`: fixed
    /// session-id affinity (`client mod workers`).
    pub load_aware_dispatch: bool,
    /// `Some(k)` (only meaningful with `server_worker_shards`): model the
    /// RX front-end as `k` serial framing lanes sharded by
    /// `client mod k`, each charging [`PacketCharge::rx_cycles`] per
    /// packet, with **completion-ordered** hand-off to the worker-shard
    /// dispatch stage. `None`: the RX work stays folded into the worker
    /// lanes (the pre-RX-pool model; exact legacy behaviour).
    pub rx_shards: Option<usize>,
    /// With `rx_shards`, model the control plane's **online peer→shard
    /// remap**: a client re-homes to the least-backlogged RX lane when
    /// its current lane's backlog exceeds the minimum by more than
    /// [`MIGRATION_BACKLOG_JOBS`] RX jobs' worth of service time — the
    /// timing-layer counterpart of the real `RxShardPool` remap that the
    /// adaptive front-end drives from its hot-group law. `false`: RX
    /// homing is fixed `client mod k` for the whole run (every static
    /// configuration; reassembly pinning without a control plane cannot
    /// move). Only the self-tuning controller earns this flag, and only
    /// when its *measured* run actually performed remaps.
    pub rx_remap: bool,
    /// `Some(m)` (only consulted when `rx_shards` models a separate RX
    /// stage): model the socket front-end ahead of the RX lanes. Each
    /// packet charges `m.per_packet_cycles(fragments)` extra event-loop
    /// cycles on its RX lane — the wakeup cost of the I/O front-end per
    /// wire datagram, amortised over however many datagrams each wakeup
    /// drains (see [`AsyncFrontEndModel`]). `None`: socket wakeups are
    /// free (exact legacy behaviour, bit-identical).
    pub async_front_end: Option<AsyncFrontEndModel>,
    /// `Some(m)` (only consulted when `rx_shards` models a separate RX
    /// stage): price the kernel-boundary crossings of socket I/O. Each
    /// packet charges `m.per_packet_cycles(fragments)` on its RX lane —
    /// the per-call syscall cost divided by how many datagrams each bulk
    /// `recv_many` call moves (see [`SyscallBatchModel`]). `None`:
    /// syscall crossings are free (exact legacy behaviour,
    /// bit-identical), matching the `net` layer's metering, which
    /// charges per-datagram socket costs but never the per-call
    /// boundary cost.
    pub syscall_batch: Option<SyscallBatchModel>,
}

/// Timing model of the socket front-end in front of the RX lanes.
///
/// A **call-driven** front-end does one blocking receive per wire
/// datagram: every datagram pays a full wakeup
/// (`wakeups_per_datagram == 1`). An **event-driven** front-end
/// (`endbox::server::AsyncFrontEnd`) drains every readable socket per
/// poll wakeup, so the wakeup cost amortises over the drain batch:
/// `wakeups_per_datagram` is the *measured* `wakeups / datagrams` ratio of
/// a real front-end run (many ready peers → far below 1). The per-datagram
/// socket receive cost itself is identical in both modes and is part of
/// the measured [`PacketCharge`] (the `net` layer charges it to the
/// server meter); only the wakeup amortisation differs, and that is what
/// this model prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncFrontEndModel {
    /// Cycles per event-loop wakeup
    /// ([`crate::cost::CostModel::event_loop_wakeup`]).
    pub wakeup_cycles: u64,
    /// Wakeups per **wire datagram**: 1.0 for a call-driven front-end,
    /// the measured `wakeups / datagrams` ratio for an event-driven one.
    /// A fragmenting mix pays this once per fragment (see
    /// [`AsyncFrontEndModel::per_packet_cycles`]).
    pub wakeups_per_datagram: f64,
}

impl AsyncFrontEndModel {
    /// The call-driven baseline: one wakeup per datagram.
    pub fn call_driven(wakeup_cycles: u64) -> Self {
        AsyncFrontEndModel {
            wakeup_cycles,
            wakeups_per_datagram: 1.0,
        }
    }

    /// The event-driven model with a measured amortisation ratio.
    pub fn event_driven(wakeup_cycles: u64, wakeups_per_datagram: f64) -> Self {
        AsyncFrontEndModel {
            wakeup_cycles,
            wakeups_per_datagram,
        }
    }

    /// Amortised event-loop cycles charged per packet on its RX lane: a
    /// packet spanning `fragments` wire datagrams pays the per-datagram
    /// wakeup share once per datagram.
    pub fn per_packet_cycles(&self, fragments: usize) -> u64 {
        (self.wakeup_cycles as f64 * self.wakeups_per_datagram * fragments.max(1) as f64).round()
            as u64
    }
}

/// Timing model of the syscall boundary under bulk socket I/O.
///
/// Every socket receive crosses the kernel boundary
/// ([`crate::cost::CostModel::syscall_per_call`]): trap, register
/// save/restore, mitigation flushes, scheduler wake of the blocked
/// reader. A **per-datagram** transport (`try_recv`/`send_to`) pays
/// that once per wire datagram; the **bulk** `sendmmsg`/`recvmmsg`
/// shape (`UdpEndpoint::recv_many`/`send_many`) pays it once per call
/// and moves `datagrams_per_call` datagrams with it — the measured
/// amortisation ratio of a real `AsyncFrontEnd` run (its
/// `AsyncIngressStats::io_calls` counter against datagrams drained).
/// The per-datagram socket costs themselves
/// (`socket_recv_fixed`/`socket_per_byte`) are identical in both
/// shapes and already live in the measured [`PacketCharge`]; only the
/// per-call boundary cost differs, and that is what this model prices
/// — the direct analogue of [`AsyncFrontEndModel`] for the syscall
/// boundary instead of the event loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyscallBatchModel {
    /// Cycles per kernel crossing
    /// ([`crate::cost::CostModel::syscall_per_call`]).
    pub call_cycles: u64,
    /// Wire datagrams moved per call: 1.0 for the per-datagram
    /// transport shape, the measured `datagrams / io_calls` ratio for a
    /// bulk front-end (bounded above by the configured bulk size, and
    /// below it whenever sockets run dry mid-batch).
    pub datagrams_per_call: f64,
}

impl SyscallBatchModel {
    /// The per-datagram baseline: one kernel crossing per datagram.
    pub fn per_datagram(call_cycles: u64) -> Self {
        SyscallBatchModel {
            call_cycles,
            datagrams_per_call: 1.0,
        }
    }

    /// The bulk model with a measured amortisation ratio.
    ///
    /// # Panics
    ///
    /// Panics if `datagrams_per_call < 1.0` — a call cannot move less
    /// than one datagram on a productive front-end.
    pub fn bulk(call_cycles: u64, datagrams_per_call: f64) -> Self {
        assert!(
            datagrams_per_call >= 1.0,
            "a syscall moves at least one datagram, got {datagrams_per_call}"
        );
        SyscallBatchModel {
            call_cycles,
            datagrams_per_call,
        }
    }

    /// The ring backend's boundary: one **doorbell**
    /// ([`crate::cost::CostModel::doorbell_per_batch`]) per submitted
    /// batch in place of a full syscall per bulk call — the kernel is
    /// only told "descriptors are ready", no data crosses at the
    /// doorbell and completions are polled from shared memory. Same
    /// amortisation shape as [`SyscallBatchModel::bulk`], cheaper
    /// crossing.
    ///
    /// # Panics
    ///
    /// Panics if `datagrams_per_call < 1.0` (see
    /// [`SyscallBatchModel::bulk`]).
    pub fn ring_doorbell(doorbell_cycles: u64, datagrams_per_call: f64) -> Self {
        Self::bulk(doorbell_cycles, datagrams_per_call)
    }

    /// A poll-mode kernel-bypass backend (the XDP/DPDK frame shape): no
    /// kernel crossing on the hot path at all — RX descriptors are
    /// consumed and fill-ring frames replenished entirely in shared
    /// memory, so the boundary charge is zero. (The per-frame descriptor
    /// bookkeeping is metered into the [`PacketCharge`] by the `net`
    /// layer's [`crate::net::WireCostProfile::xdp`], not priced here.)
    pub fn kernel_bypass() -> Self {
        SyscallBatchModel {
            call_cycles: 0,
            datagrams_per_call: 1.0,
        }
    }

    /// Amortised syscall cycles charged per packet on its RX lane: a
    /// packet spanning `fragments` wire datagrams pays the per-call
    /// cost divided by the datagrams each call moves, once per
    /// datagram.
    pub fn per_packet_cycles(&self, fragments: usize) -> u64 {
        (self.call_cycles as f64 * fragments.max(1) as f64 / self.datagrams_per_call.max(1.0))
            .round() as u64
    }
}

/// Backlog gap (in per-packet server jobs) that triggers a session
/// migration under `load_aware_dispatch`. Small enough to react within a
/// measurement window, large enough that uniform load never migrates.
pub const MIGRATION_BACKLOG_JOBS: u64 = 16;

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            n_clients: 1,
            per_client_bps: 200_000_000,
            payload_bytes: 1_500,
            duration: SimDuration::from_millis(30),
            n_client_machines: 5,
            contention_per_excess_process: 0.012,
            server_procs_per_client: 1,
            server_single_process: false,
            server_worker_shards: None,
            client_load_weights: None,
            load_aware_dispatch: false,
            rx_shards: None,
            rx_remap: false,
            async_front_end: None,
            syscall_batch: None,
        }
    }
}

/// Result of a scalability run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityResult {
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
    /// Mean client machine CPU utilisation in [0, 1].
    pub client_cpu: f64,
    /// Fraction of offered packets delivered within the window.
    pub delivery_ratio: f64,
    /// Session-to-shard migrations performed by the load-aware dispatcher
    /// (always 0 with static affinity).
    pub migrations: u64,
    /// Client→RX-lane re-homings performed by the modelled online remap
    /// (always 0 without [`ScalabilityConfig::rx_remap`]).
    pub rx_remaps: u64,
}

/// Runs the Fig. 10 experiment: `n_clients` paced flows of
/// `per_client_bps` each, through one server machine. `charge` supplies
/// the per-packet cycle charges (measured once per deployment on the real
/// code path — all clients send identical traffic in the paper's setup).
pub fn run_scalability(
    client_spec: MachineSpec,
    server_spec: MachineSpec,
    charge: PacketCharge,
    cfg: &ScalabilityConfig,
) -> ScalabilityResult {
    let mut server = Machine::new(server_spec);
    // One OpenVPN process per client (§V-E): oversubscription beyond the
    // hardware threads costs scheduler overhead. A sharded multi-worker
    // server is a single process with a bounded thread count, so it never
    // oversubscribes regardless of the client count.
    let hw_threads = server.spec().cores * 2;
    let n_procs = match cfg.server_worker_shards {
        Some(_) => 1,
        None if cfg.server_single_process => 1,
        None => cfg.n_clients * cfg.server_procs_per_client,
    };
    let excess = n_procs.saturating_sub(hw_threads);
    server.set_contention(1.0 + excess as f64 * cfg.contention_per_excess_process);
    // With worker shards the RX front-end may run as its own thread pool
    // (`rx_shards`); RX lanes and worker lanes together make up the
    // server's thread count.
    let rx_shards = match (cfg.server_worker_shards, cfg.rx_shards) {
        (Some(_), Some(k)) => Some(k.max(1)),
        _ => None,
    };
    if let Some(w) = cfg.server_worker_shards {
        // Each worker shard (and RX shard) is ONE thread: its jobs run
        // serially on its own lane and a queued packet does not occupy a
        // core while it waits (shard queues live in channels, not on the
        // run queue). When the threads outnumber the execution slots, the
        // lanes fair-share the machine.
        let threads = w.max(1) + rx_shards.unwrap_or(0);
        let slots = server.spec().slots();
        if threads > slots {
            server.set_contention(threads as f64 / slots as f64);
        }
    }

    // Per-client offered rates: uniform, or weighted by the (normalised)
    // load mix so the aggregate offered load is identical either way.
    let weights: Vec<f64> = match &cfg.client_load_weights {
        None => vec![1.0; cfg.n_clients],
        Some(w) => {
            assert_eq!(w.len(), cfg.n_clients, "one weight per client");
            let sum: f64 = w.iter().sum();
            w.iter().map(|x| x * cfg.n_clients as f64 / sum).collect()
        }
    };

    let mut client_machines: Vec<Machine> = (0..cfg.n_client_machines)
        .map(|m| {
            let mut machine = Machine::new(client_spec.clone());
            // Client lanes are serial (one single-threaded VPN process per
            // client, scheduled below with `run_job_serial`), so queued
            // packets never reserve execution slots — but the machine's
            // aggregate capacity still has to bind. Expected duty per
            // lane is its offered packet rate times the per-packet service
            // time, capped at one core (a serial lane cannot use more);
            // when the machine's summed duty exceeds its execution slots,
            // the lanes fair-share it.
            let service_secs = charge.client_cycles as f64 / machine.spec().freq_hz as f64;
            let duty: f64 = (0..cfg.n_clients)
                .filter(|c| c % cfg.n_client_machines == m)
                .map(|c| {
                    let pps =
                        cfg.per_client_bps as f64 * weights[c] / (cfg.payload_bytes as f64 * 8.0);
                    (pps * service_secs).min(1.0)
                })
                .sum();
            let slots = machine.spec().slots() as f64;
            if duty > slots {
                machine.set_contention(duty / slots);
            }
            machine
        })
        .collect();
    let mut link = Link::ten_gbps();

    // Build the globally time-ordered arrival schedule. Clients are offset
    // by a fraction of their interval so arrivals interleave.
    let mut events: Vec<(SimTime, usize)> = Vec::new();
    let mut offered = 0u64;
    for (c, weight) in weights.iter().enumerate() {
        let rate_bps = cfg.per_client_bps as f64 * weight;
        if rate_bps <= 0.0 {
            continue;
        }
        let interval = SimDuration::from_secs_f64(cfg.payload_bytes as f64 * 8.0 / rate_bps);
        let packets = (cfg.duration.as_nanos() / interval.as_nanos().max(1)) as usize;
        offered += packets as u64;
        let offset =
            SimDuration::from_nanos(interval.as_nanos() * c as u64 / cfg.n_clients.max(1) as u64);
        for i in 0..packets {
            let t =
                SimTime::ZERO + offset + SimDuration::from_nanos(interval.as_nanos() * i as u64);
            events.push((t, c));
        }
    }
    events.sort_unstable();

    let mut client_flows = vec![SimTime::ZERO; cfg.n_clients];
    let mut server_flows = vec![SimTime::ZERO; cfg.n_clients];
    let mut delivered_bits = 0u64;
    let mut delivered = 0u64;
    let deadline = SimTime::ZERO + cfg.duration;

    // Current session-to-shard assignment: static affinity to start with
    // (the real dispatcher also places new sessions at `(sid-1) mod N`),
    // rebalanced on the fly when load-aware dispatch is on.
    let workers = cfg.server_worker_shards.unwrap_or(0).max(1);
    let mut assignment: Vec<usize> = (0..cfg.n_clients).map(|c| c % workers).collect();
    let mut migrations = 0u64;
    let mut rx_remaps = 0u64;
    let migration_threshold = SimDuration::from_secs_f64(
        MIGRATION_BACKLOG_JOBS as f64 * charge.server_cycles as f64 / server.spec().freq_hz as f64,
    );

    // Client stage: per-client serial lane — one single-threaded VPN
    // process per client. A backlogged client (e.g. a heavy-tailed
    // elephant) is capped at one core's throughput, but its *queued*
    // packets must not reserve execution slots and starve the other
    // clients sharing the machine.
    let mut wire_events: Vec<(SimTime, usize)> = Vec::with_capacity(events.len());
    for (arrival, c) in events {
        let machine = &mut client_machines[c % cfg.n_client_machines];
        let done_client =
            machine.run_job_serial(arrival, charge.client_cycles, &mut client_flows[c]);
        if charge.dropped {
            continue;
        }
        wire_events.push((done_client, c));
    }
    // Wire + server stages, in the order packets actually hit the wire
    // (the link serialises real transmit instants; a client whose queue
    // delays its packets must not inflate earlier transmissions). Sorting
    // is stable per client because each client lane is serial.
    wire_events.sort_unstable();

    // Wire stage: serialise real transmit instants in wire order.
    let mut server_ready: Vec<(SimTime, usize)> = Vec::with_capacity(wire_events.len());
    for (done_client, c) in wire_events {
        let frag_bytes = charge.wire_bytes / charge.fragments.max(1);
        let mut arrived = done_client;
        for _ in 0..charge.fragments.max(1) {
            arrived = link.transmit(done_client, frag_bytes);
        }
        server_ready.push((arrived, c));
    }

    // RX stage (the sharded front-end model): each packet is framed on
    // its client's RX lane (`client mod k`, serial — reassembly state is
    // pinned to one RX shard), then handed to the dispatch stage in
    // RX-**completion** order, mirroring the real `RxShardPool` whose
    // events reach the front-end re-merge as shards finish. The framing
    // cycles move from the worker lanes to the RX lanes; the per-packet
    // total is unchanged.
    let rx_cycles = charge.rx_cycles.min(charge.server_cycles);
    let shard_cycles = match rx_shards {
        Some(_) => charge.server_cycles - rx_cycles,
        None => charge.server_cycles,
    };
    if let Some(k) = rx_shards {
        // Socket front-end: the event-loop wakeup charge runs on the RX
        // lane that drains the peer's socket (one poll group per RX
        // shard). Call-driven: one wakeup per datagram; event-driven: the
        // measured amortisation. `None` keeps wakeups free (legacy).
        let io_cycles = cfg
            .async_front_end
            .as_ref()
            .map(|m| m.per_packet_cycles(charge.fragments))
            .unwrap_or(0)
            // Syscall boundary: per-call cost amortised over the bulk
            // receive batch, charged on the same RX lane. `None` = free,
            // bit-identical to the pre-bulk-transport model.
            + cfg
                .syscall_batch
                .as_ref()
                .map(|m| m.per_packet_cycles(charge.fragments))
                .unwrap_or(0);
        let mut rx_flows = vec![SimTime::ZERO; k];
        // RX homing: fixed `client mod k` (reassembly pinning), or —
        // with the controller's online remap modelled — re-home a client
        // whose lane has fallen behind the least-backlogged lane by the
        // remap threshold. Mirrors the worker stage's bounded-migration
        // model; an RX job here costs `rx_cycles + io_cycles`.
        let mut rx_assignment: Vec<usize> = (0..cfg.n_clients).map(|c| c % k).collect();
        let rx_remap_threshold = SimDuration::from_secs_f64(
            MIGRATION_BACKLOG_JOBS as f64 * (rx_cycles + io_cycles) as f64
                / server.spec().freq_hz as f64,
        );
        for entry in server_ready.iter_mut() {
            let (arrived, c) = *entry;
            let lane = if cfg.rx_remap && k > 1 {
                let cur = rx_assignment[c];
                let backlog = |l: usize| rx_flows[l].saturating_sub(arrived);
                let best = (0..k).min_by_key(|&l| backlog(l)).unwrap_or(cur);
                if backlog(cur) > backlog(best) + rx_remap_threshold {
                    rx_assignment[c] = best;
                    rx_remaps += 1;
                }
                rx_assignment[c]
            } else {
                c % k
            };
            entry.0 = server.run_job_serial(arrived, rx_cycles + io_cycles, &mut rx_flows[lane]);
        }
        // Completion-ordered hand-off (stable sort: a client's RX lane is
        // serial, so its own completions stay in input order).
        server_ready.sort_by_key(|&(t, _)| t);
    }

    for (arrived, c) in server_ready {
        // Shard assignment mirrors the real sharded server's routing:
        // client c's session lands on exactly one worker flow at a time,
        // so per-session ordering stays a serial watermark. Load-aware
        // dispatch migrates a session (watermark and all) when its shard's
        // backlog exceeds the least-loaded shard's by the threshold.
        let done_server = match cfg.server_worker_shards {
            Some(w) => {
                let w = w.max(1);
                let flow_idx = if cfg.load_aware_dispatch && w > 1 {
                    let cur = assignment[c];
                    let backlog = |s: usize| server_flows[s].saturating_sub(arrived);
                    let best = (0..w).min_by_key(|&s| backlog(s)).unwrap_or(cur);
                    if backlog(cur) > backlog(best) + migration_threshold {
                        assignment[c] = best;
                        migrations += 1;
                    }
                    assignment[c]
                } else {
                    c % w
                };
                // Serial lane per shard thread (see the contention set-up
                // above): queued packets wait in the shard's channel, so
                // they must not reserve execution slots ahead of time.
                server.run_job_serial(arrived, shard_cycles, &mut server_flows[flow_idx])
            }
            None if cfg.server_single_process => {
                server.run_job_flow(arrived, shard_cycles, &mut server_flows[0])
            }
            None => server.run_job_flow(arrived, shard_cycles, &mut server_flows[c]),
        };
        // Only packets completing within the window count towards
        // steady-state throughput (a saturated server accumulates backlog).
        if done_server <= deadline {
            delivered += 1;
            delivered_bits += charge.payload_bytes as u64 * 8;
        }
    }

    let elapsed = cfg.duration;
    ScalabilityResult {
        gbps: delivered_bits as f64 / elapsed.as_secs_f64() / 1e9,
        server_cpu: server.utilisation(elapsed),
        client_cpu: {
            let total: f64 = client_machines.iter().map(|m| m.utilisation(elapsed)).sum();
            total / client_machines.len() as f64
        },
        delivery_ratio: if offered == 0 {
            0.0
        } else {
            delivered as f64 / offered as f64
        },
        migrations,
        rx_remaps,
    }
}

/// One leg of an unloaded latency path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Leg {
    /// CPU processing of `cycles` at `freq_hz`.
    Cycles {
        /// Cycles consumed.
        cycles: u64,
        /// Clock frequency of the machine executing them.
        freq_hz: u64,
    },
    /// Wire transfer of `bytes` over a `rate_bps` link with propagation
    /// `delay`.
    Wire {
        /// Bytes transferred.
        bytes: usize,
        /// Link rate.
        rate_bps: u64,
        /// One-way propagation delay.
        delay: SimDuration,
    },
    /// A fixed delay (e.g. remote-site RTT contribution).
    Fixed(SimDuration),
}

/// Sums an unloaded latency path (used by Fig. 7, Fig. 11, Table I).
pub fn unloaded_latency(legs: &[Leg]) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for leg in legs {
        total += match *leg {
            Leg::Cycles { cycles, freq_hz } => SimDuration::from_cycles(cycles, freq_hz),
            Leg::Wire {
                bytes,
                rate_bps,
                delay,
            } => SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate_bps as f64) + delay,
            Leg::Fixed(d) => d,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(payload: usize, client: u64, server: u64) -> PacketCharge {
        PacketCharge {
            payload_bytes: payload,
            wire_bytes: payload + 60,
            fragments: 1,
            client_cycles: client,
            server_cycles: server,
            rx_cycles: 0,
            dropped: false,
        }
    }

    #[test]
    fn single_flow_is_client_bound_when_client_slower() {
        let mut link = Link::ten_gbps();
        let r = run_single_flow(
            MachineSpec::class_a(),
            MachineSpec::class_a(),
            &mut link,
            std::iter::repeat_n(charge(1500, 50_000, 10_000), 2_000),
        );
        // Client at 50k cycles on a full-speed 3.5GHz slot: ~14.3us/packet
        // -> ~840 Mbps.
        assert!(r.mbps > 750.0 && r.mbps < 950.0, "{}", r.mbps);
        assert!(r.delivered == 2_000);
    }

    #[test]
    fn dropped_packets_do_not_deliver() {
        let mut link = Link::ten_gbps();
        let mut c = charge(1500, 10_000, 10_000);
        c.dropped = true;
        let r = run_single_flow(
            MachineSpec::class_a(),
            MachineSpec::class_a(),
            &mut link,
            std::iter::repeat_n(c, 100),
        );
        assert_eq!(r.delivered, 0);
        assert_eq!(r.dropped, 100);
        assert_eq!(r.mbps, 0.0);
    }

    #[test]
    fn scalability_saturates_server() {
        // Server work of 29k cycles/packet at 16.7kpps/client saturates
        // class B (~17e9 cycles/s) around 35 clients.
        let cfg = ScalabilityConfig {
            n_clients: 60,
            duration: SimDuration::from_millis(20),
            ..ScalabilityConfig::default()
        };
        let r = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            charge(1500, 20_000, 29_000),
            &cfg,
        );
        assert!(
            r.server_cpu > 0.95,
            "server should be saturated: {}",
            r.server_cpu
        );
        assert!(r.gbps < 12.0 * 0.8, "cannot exceed offered load");
        assert!(r.gbps > 4.0, "should deliver several Gbps: {}", r.gbps);

        // With few clients the server is underutilised and throughput
        // follows the offered load.
        let cfg_small = ScalabilityConfig {
            n_clients: 5,
            ..cfg
        };
        let r_small = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            charge(1500, 20_000, 29_000),
            &cfg_small,
        );
        assert!(r_small.server_cpu < 0.5);
        assert!(
            (r_small.gbps - 1.0).abs() < 0.15,
            "5 x 200Mbps: {}",
            r_small.gbps
        );
    }

    #[test]
    fn scalability_is_linear_before_saturation() {
        let base = ScalabilityConfig {
            duration: SimDuration::from_millis(20),
            ..ScalabilityConfig::default()
        };
        let tput = |n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                ..base.clone()
            };
            run_scalability(
                MachineSpec::class_a(),
                MachineSpec::class_b(),
                charge(1500, 20_000, 29_000),
                &cfg,
            )
            .gbps
        };
        let t10 = tput(10);
        let t20 = tput(20);
        assert!((t20 / t10 - 2.0).abs() < 0.1, "t10={t10} t20={t20}");
    }

    #[test]
    fn worker_shards_scale_a_saturated_server() {
        // Heavy per-packet server work: one worker flow saturates well
        // below the offered load, so adding shards must scale throughput.
        let tput = |workers| {
            let cfg = ScalabilityConfig {
                n_clients: 32,
                duration: SimDuration::from_millis(20),
                server_worker_shards: Some(workers),
                ..ScalabilityConfig::default()
            };
            run_scalability(
                MachineSpec::class_a(),
                MachineSpec::class_b(),
                charge(1500, 20_000, 29_000),
                &cfg,
            )
            .gbps
        };
        let one = tput(1);
        let four = tput(4);
        assert!(
            four >= 2.0 * one,
            "4 worker shards must at least double one: {one} vs {four}"
        );
    }

    #[test]
    fn one_worker_shard_matches_single_process() {
        let mk = |shards, single| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: shards,
            server_single_process: single,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 29_000);
        let sharded = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(1), false),
        );
        let single = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(None, true),
        );
        assert_eq!(sharded, single, "1 worker == the single-process model");
    }

    #[test]
    fn uniform_weights_match_unweighted_run() {
        let base = ScalabilityConfig {
            n_clients: 12,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            ..ScalabilityConfig::default()
        };
        let weighted = ScalabilityConfig {
            client_load_weights: Some(vec![3.0; 12]), // uniform, just scaled
            ..base.clone()
        };
        let c = charge(1500, 20_000, 29_000);
        let a = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &base);
        let b = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &weighted);
        assert_eq!(a, b, "normalised uniform weights are a no-op");
    }

    #[test]
    fn load_aware_dispatch_recovers_a_skewed_shard() {
        // Elephants at clients 0, 4, 8, 12 all map to shard 0 under
        // static `c mod 4` affinity; the hot shard (a serial flow capped
        // at one core) saturates while the others idle. Load-aware
        // dispatch migrates sessions off the backlog.
        let n = 16;
        let mut weights = vec![0.2; n];
        for c in (0..n).step_by(4) {
            weights[c] = 3.0;
        }
        let mk = |load_aware| ScalabilityConfig {
            n_clients: n,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            client_load_weights: Some(weights.clone()),
            load_aware_dispatch: load_aware,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 60_000);
        let stat = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(false),
        );
        let aware = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(true));
        assert_eq!(stat.migrations, 0);
        assert!(aware.migrations > 0, "skew must trigger migrations");
        assert!(
            aware.gbps >= 1.3 * stat.gbps,
            "load-aware must recover the hot shard: static {:.2} vs aware {:.2} Gbps",
            stat.gbps,
            aware.gbps
        );
    }

    #[test]
    fn rx_model_with_zero_rx_cycles_matches_legacy_sharded_run() {
        // With no framing cost split out, the RX lanes are zero-duration
        // pass-throughs and the completion-ordered hand-off degenerates to
        // arrival order: the model must be bit-identical to the legacy
        // folded-RX run (as long as the extra RX thread does not push the
        // machine into fair-sharing).
        let mk = |rx| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: rx,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 29_000);
        let legacy = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let rx = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(1)),
        );
        assert_eq!(legacy, rx, "zero rx_cycles must be a model no-op");
    }

    #[test]
    fn rx_lanes_scale_a_framing_bound_ingress() {
        // Framing dominates the per-packet server work (small records):
        // one RX lane saturates while the worker shards idle; K=4 RX
        // shards must recover well over 1.3x.
        let mut c = charge(296, 20_000, 36_000);
        c.rx_cycles = 24_000;
        let tput = |k| {
            let cfg = ScalabilityConfig {
                n_clients: 48,
                per_client_bps: 20_000_000,
                payload_bytes: 296,
                duration: SimDuration::from_millis(20),
                server_worker_shards: Some(4),
                rx_shards: Some(k),
                rx_remap: false,
                ..ScalabilityConfig::default()
            };
            run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &cfg).gbps
        };
        let (one, four) = (tput(1), tput(4));
        assert!(
            four >= 1.3 * one,
            "4 RX shards must beat 1 by >=1.3x on a framing-bound mix: {one:.3} vs {four:.3}"
        );
    }

    #[test]
    fn async_model_zero_ratio_or_absent_is_a_noop() {
        let mk = |fe| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: Some(2),
            rx_remap: false,
            async_front_end: fe,
            ..ScalabilityConfig::default()
        };
        let mut c = charge(1500, 20_000, 29_000);
        c.rx_cycles = 10_000;
        let off = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let zero = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(AsyncFrontEndModel::event_driven(18_000, 0.0))),
        );
        assert_eq!(off, zero, "zero wakeups/packet must price nothing");
    }

    #[test]
    fn async_model_is_ignored_without_rx_lanes() {
        // The socket front-end is a refinement of the RX-stage model only
        // (like `rx_shards` itself is of the sharded-server model).
        let mk = |fe| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: None,
            rx_remap: false,
            async_front_end: fe,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 29_000);
        let off = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let on = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(AsyncFrontEndModel::call_driven(18_000))),
        );
        assert_eq!(off, on);
    }

    #[test]
    fn event_driven_front_end_recovers_a_wakeup_bound_ingress() {
        // Many cheap peers, small records: with one blocking receive per
        // datagram the wakeup cost rivals the framing cost and the RX
        // lanes saturate; an event loop draining ~10 datagrams per wakeup
        // must recover well over 1.3x.
        let mut c = charge(296, 20_000, 36_000);
        c.rx_cycles = 24_000;
        let tput = |fe| {
            let cfg = ScalabilityConfig {
                n_clients: 120,
                per_client_bps: 20_000_000,
                payload_bytes: 296,
                duration: SimDuration::from_millis(20),
                server_worker_shards: Some(4),
                rx_shards: Some(4),
                rx_remap: false,
                async_front_end: Some(fe),
                ..ScalabilityConfig::default()
            };
            run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &cfg).gbps
        };
        let call = tput(AsyncFrontEndModel::call_driven(18_000));
        let event = tput(AsyncFrontEndModel::event_driven(18_000, 0.1));
        assert!(
            event >= 1.3 * call,
            "event-driven must beat call-driven >=1.3x on a wakeup-bound mix: \
             {call:.3} vs {event:.3} Gbps"
        );
    }

    #[test]
    fn syscall_model_absent_is_a_noop() {
        let mk = |sb| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: Some(2),
            rx_remap: false,
            syscall_batch: sb,
            ..ScalabilityConfig::default()
        };
        let mut c = charge(1500, 20_000, 29_000);
        c.rx_cycles = 10_000;
        let off = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let free = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(SyscallBatchModel::bulk(0, 1.0))),
        );
        assert_eq!(off, free, "zero call cycles must price nothing");
    }

    #[test]
    fn syscall_model_is_ignored_without_rx_lanes() {
        // Like the async model, the syscall boundary is a refinement of
        // the RX-stage model only.
        let mk = |sb| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: None,
            rx_remap: false,
            syscall_batch: sb,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 29_000);
        let off = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let on = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(SyscallBatchModel::per_datagram(21_000))),
        );
        assert_eq!(off, on);
    }

    #[test]
    fn bulk_syscalls_recover_a_syscall_bound_ingress() {
        // Small records, many peers: per-datagram kernel crossings rival
        // the framing cost and the RX lanes saturate; a bulk transport
        // moving ~30 datagrams per call must recover well over 1.5x.
        let mut c = charge(296, 20_000, 36_000);
        c.rx_cycles = 24_000;
        let tput = |m| {
            let cfg = ScalabilityConfig {
                n_clients: 120,
                per_client_bps: 20_000_000,
                payload_bytes: 296,
                duration: SimDuration::from_millis(20),
                server_worker_shards: Some(4),
                rx_shards: Some(2),
                rx_remap: false,
                syscall_batch: Some(m),
                ..ScalabilityConfig::default()
            };
            run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &cfg).gbps
        };
        let per_datagram = tput(SyscallBatchModel::per_datagram(21_000));
        let bulk = tput(SyscallBatchModel::bulk(21_000, 30.0));
        assert!(
            bulk >= 1.5 * per_datagram,
            "bulk syscalls must beat per-datagram >=1.5x on a syscall-bound mix: \
             {per_datagram:.3} vs {bulk:.3} Gbps"
        );
    }

    #[test]
    fn syscall_amortisation_is_monotone_in_bulk_ratio() {
        let m = |r| SyscallBatchModel::bulk(21_000, r).per_packet_cycles(1);
        assert_eq!(m(1.0), 21_000);
        assert!(m(8.0) < m(2.0));
        assert!(m(128.0) < m(32.0));
        // Fragmenting packets pay per datagram, amortised the same way.
        let frag = SyscallBatchModel::bulk(21_000, 4.0);
        assert_eq!(frag.per_packet_cycles(8), 42_000);
    }

    #[test]
    fn backend_boundary_models_are_strictly_ordered() {
        // At the same measured amortisation, the ring doorbell is a
        // strictly cheaper crossing than a full bulk syscall, and a
        // poll-mode bypass charges nothing at the boundary — the per
        // packet boundary cost ranks socket > ring > bypass.
        let ratio = 8.0;
        let socket = SyscallBatchModel::bulk(21_000, ratio).per_packet_cycles(1);
        let ring = SyscallBatchModel::ring_doorbell(7_000, ratio).per_packet_cycles(1);
        let bypass = SyscallBatchModel::kernel_bypass().per_packet_cycles(1);
        assert!(socket > ring, "{socket} vs {ring}");
        assert!(ring > bypass, "{ring} vs {bypass}");
        assert_eq!(bypass, 0, "no kernel crossing on the bypass hot path");
    }

    #[test]
    fn kernel_bypass_model_prices_exactly_nothing() {
        // kernel_bypass() must be bit-identical to the free model the
        // no-op regression pins — the bypass saving comes from the
        // measured charge (descriptor metering + shed kernel RX share),
        // never from a hidden negative boundary price.
        let mk = |sb| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            rx_shards: Some(2),
            rx_remap: false,
            syscall_batch: sb,
            ..ScalabilityConfig::default()
        };
        let mut c = charge(1500, 20_000, 29_000);
        c.rx_cycles = 10_000;
        let off = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let bypass = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(SyscallBatchModel::kernel_bypass())),
        );
        assert_eq!(off, bypass);
    }

    #[test]
    fn rx_model_ignores_rx_shards_without_worker_shards() {
        // rx_shards is a refinement of the sharded-server model only.
        let mk = |rx| ScalabilityConfig {
            n_clients: 8,
            duration: SimDuration::from_millis(20),
            rx_shards: rx,
            ..ScalabilityConfig::default()
        };
        let mut c = charge(1500, 20_000, 29_000);
        c.rx_cycles = 10_000;
        let a = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(None));
        let b = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(Some(4)),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn load_aware_dispatch_is_a_noop_under_uniform_load() {
        let mk = |load_aware| ScalabilityConfig {
            n_clients: 16,
            duration: SimDuration::from_millis(20),
            server_worker_shards: Some(4),
            load_aware_dispatch: load_aware,
            ..ScalabilityConfig::default()
        };
        let c = charge(1500, 20_000, 29_000);
        let stat = run_scalability(
            MachineSpec::class_a(),
            MachineSpec::class_b(),
            c,
            &mk(false),
        );
        let aware = run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), c, &mk(true));
        assert!(
            (aware.gbps - stat.gbps).abs() / stat.gbps < 0.05,
            "uniform load must not regress: {} vs {}",
            stat.gbps,
            aware.gbps
        );
    }

    #[test]
    fn unloaded_latency_sums() {
        let d = unloaded_latency(&[
            Leg::Cycles {
                cycles: 35_000,
                freq_hz: 3_500_000_000,
            },
            Leg::Wire {
                bytes: 1_250,
                rate_bps: 10_000_000_000,
                delay: SimDuration::from_micros(30),
            },
            Leg::Fixed(SimDuration::from_millis(5)),
        ]);
        // 10us + 1us + 30us + 5ms
        assert_eq!(d.as_nanos(), 10_000 + 1_000 + 30_000 + 5_000_000);
    }
}
