//! The VPN server: terminates sessions for many clients, enforces
//! attestation-derived certificates, protocol versions, replay windows,
//! and configuration-version policy (grace periods, §III-E).
//!
//! The paper's scalability experiments run "one OpenVPN server instance
//! per client, as OpenVPN does not support multithreading" (§V-E); this
//! implementation multiplexes sessions in one structure — concretely,
//! [`VpnServer`] is a handshake front-end around exactly **one** inline
//! [`VpnShard`] (the per-shard datapath also used by the multi-worker
//! [`crate::shard::ShardedVpnServer`]), so the single-threaded and
//! sharded servers share one record-handling implementation.

use crate::channel::{BatchFrames, CipherSuite, DataChannel};
use crate::error::VpnError;
use crate::handshake::{server_respond, ClientHello, ClientInfo, HandshakeConfig};
use crate::ping::PingMessage;
use crate::proto::{Opcode, Record};
use crate::shard::{ConfigPolicy, VpnShard};
use endbox_netsim::cost::{CostModel, CycleMeter};

pub use crate::shard::ServerSession;

/// Events produced by the server when handling records.
#[derive(Debug)]
pub enum ServerEvent {
    /// Handshake completed; send `response` back to the client.
    Established {
        /// Assigned session id.
        session_id: u64,
        /// ServerHello record to transmit.
        response: Record,
        /// Who connected.
        info: ClientInfo,
    },
    /// An authenticated tunnel payload arrived.
    Data {
        /// Session it arrived on.
        session_id: u64,
        /// Decrypted tunnel payload (an IP packet).
        payload: Vec<u8>,
    },
    /// An authenticated batch record arrived: several tunnel packets
    /// sealed as one record (§IV batching). Payloads are frame handles
    /// into the decrypted blob — no per-frame copy was made; callers
    /// materialise packets straight from the slices.
    DataBatch {
        /// Session it arrived on.
        session_id: u64,
        /// Decrypted tunnel payloads, in batch order.
        frames: BatchFrames,
    },
    /// An authenticated ping arrived (client status update).
    Ping {
        /// Session it arrived on.
        session_id: u64,
        /// The ping contents.
        message: PingMessage,
    },
    /// Orderly disconnect.
    Disconnected {
        /// Session that ended.
        session_id: u64,
    },
}

/// The VPN server: a handshake front-end plus one inline [`VpnShard`].
pub struct VpnServer {
    handshake: HandshakeConfig,
    suite: CipherSuite,
    meter: CycleMeter,
    cost: CostModel,
    shard: VpnShard,
    next_session_id: u64,
    rng: rand::rngs::StdRng,
}

impl std::fmt::Debug for VpnServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VpnServer")
            .field("sessions", &self.shard.session_count())
            .field("required_version", &self.shard.policy().required_version)
            .finish()
    }
}

impl VpnServer {
    /// Creates a server.
    pub fn new(
        handshake: HandshakeConfig,
        suite: CipherSuite,
        meter: CycleMeter,
        cost: CostModel,
        rng_seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        VpnServer {
            handshake,
            suite,
            meter,
            cost,
            shard: VpnShard::new(),
            next_session_id: 1,
            rng: rand::rngs::StdRng::seed_from_u64(rng_seed),
        }
    }

    /// Announces a new required configuration version with a grace period
    /// ("During the grace period, the ENDBOX server allows both old and
    /// new configurations to be active. After its expiry, the server
    /// blocks traffic from clients that are not applying the new
    /// configuration", §III-E).
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32, now_secs: u64) {
        let current = self.shard.policy();
        self.shard.set_policy(ConfigPolicy {
            previous_ok_version: current.required_version,
            required_version: version,
            grace_deadline_secs: now_secs + grace_period_secs as u64,
            grace_period_secs,
        });
    }

    /// The currently required configuration version.
    pub fn required_config_version(&self) -> u64 {
        self.shard.policy().required_version
    }

    /// The session-state shard backing this server (its buffer pool
    /// recycles the payload allocations).
    pub fn shard(&self) -> &VpnShard {
        &self.shard
    }

    /// Handles one wire record.
    ///
    /// # Errors
    ///
    /// All authentication/policy failures; the caller drops the traffic.
    pub fn handle_record(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<ServerEvent, VpnError> {
        match record.opcode {
            Opcode::HandshakeInit => self.handle_handshake(record, now_secs),
            Opcode::HandshakeResp => Err(VpnError::Malformed("server received HandshakeResp")),
            _ => self.shard.handle_record(record, now_secs),
        }
    }

    fn handle_handshake(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<ServerEvent, VpnError> {
        let hello = ClientHello::from_bytes(&record.payload)?;
        let session_id = self.next_session_id;
        let (server_hello, keys, info) = server_respond(
            &self.handshake,
            &hello,
            session_id,
            self.shard.policy().required_version,
            now_secs,
            &mut self.rng,
        )?;
        self.next_session_id += 1;
        let channel = DataChannel::server(&keys, self.suite, self.meter.clone(), self.cost.clone());
        self.shard.install(
            session_id,
            ServerSession {
                info: info.clone(),
                reported_config_version: info.config_version,
                channel,
            },
        );
        let response = Record {
            opcode: Opcode::HandshakeResp,
            session_id,
            packet_id: 0,
            payload: server_hello.to_bytes(),
        };
        Ok(ServerEvent::Established {
            session_id,
            response,
            info,
        })
    }

    /// Seals a payload to a client.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_to_client(
        &mut self,
        session_id: u64,
        opcode: Opcode,
        payload: &[u8],
    ) -> Result<Record, VpnError> {
        self.shard.seal_to_client(session_id, opcode, payload)
    }

    /// Seals several payloads to a client as one `DataBatch` record (§IV
    /// batching, server-to-client direction).
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_batch_to_client(
        &mut self,
        session_id: u64,
        payloads: &[&[u8]],
    ) -> Result<Record, VpnError> {
        self.shard.seal_batch_to_client(session_id, payloads)
    }

    /// Builds the periodic server ping for a session, carrying the current
    /// config announcement (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn make_ping(&mut self, session_id: u64, now_ns: u64) -> Result<Record, VpnError> {
        self.shard.make_ping(session_id, now_ns)
    }

    /// Active session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.shard.session_ids()
    }

    /// Looks up a session.
    pub fn session(&self, id: u64) -> Option<&ServerSession> {
        self.shard.session(id)
    }

    /// Number of connected clients.
    pub fn session_count(&self) -> usize {
        self.shard.session_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::Certificate;
    use crate::channel::SessionKeys;
    use crate::handshake::{client_complete, client_start};
    use crate::PROTOCOL_V1;
    use endbox_crypto::schnorr::SigningKey;
    use rand::SeedableRng;

    struct Harness {
        server: VpnServer,
        client_cfg: HandshakeConfig,
        rng: rand::rngs::StdRng,
    }

    fn harness() -> Harness {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let ca = SigningKey::generate(&mut rng);
        let server_key = SigningKey::generate(&mut rng);
        let client_key = SigningKey::generate(&mut rng);
        let server_cert =
            Certificate::issue("server", server_key.verifying_key(), 1 << 40, &ca, &mut rng);
        let client_cert = Certificate::issue(
            "client-1",
            client_key.verifying_key(),
            1 << 40,
            &ca,
            &mut rng,
        );
        let server = VpnServer::new(
            HandshakeConfig {
                identity: server_key,
                certificate: server_cert,
                ca_public: ca.verifying_key(),
                min_version: PROTOCOL_V1,
            },
            CipherSuite::Aes128CbcHmac,
            CycleMeter::new(),
            CostModel::calibrated(),
            1,
        );
        let client_cfg = HandshakeConfig {
            identity: client_key,
            certificate: client_cert,
            ca_public: ca.verifying_key(),
            min_version: PROTOCOL_V1,
        };
        Harness {
            server,
            client_cfg,
            rng,
        }
    }

    /// Connects a client, returning (session id, client channel).
    fn connect(h: &mut Harness, config_version: u64) -> (u64, DataChannel) {
        let (hello, state) = client_start(&h.client_cfg, PROTOCOL_V1, config_version, &mut h.rng);
        let record = Record {
            opcode: Opcode::HandshakeInit,
            session_id: 0,
            packet_id: 0,
            payload: hello.to_bytes(),
        };
        let event = h.server.handle_record(&record, 0).unwrap();
        let ServerEvent::Established {
            session_id,
            response,
            ..
        } = event
        else {
            panic!("expected Established");
        };
        let shello = crate::handshake::ServerHello::from_bytes(&response.payload).unwrap();
        let keys: SessionKeys = client_complete(&h.client_cfg, &state, &shello, 0).unwrap();
        let channel = DataChannel::client(
            &keys,
            CipherSuite::Aes128CbcHmac,
            CycleMeter::new(),
            CostModel::calibrated(),
        );
        (session_id, channel)
    }

    #[test]
    fn connect_and_send_data() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        assert_eq!(h.server.session_count(), 1);
        let rec = chan.seal(Opcode::Data, sid, b"an ip packet");
        match h.server.handle_record(&rec, 1).unwrap() {
            ServerEvent::Data {
                session_id,
                payload,
            } => {
                assert_eq!(session_id, sid);
                assert_eq!(payload, b"an ip packet");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_clients_get_distinct_sessions() {
        let mut h = harness();
        let (sid1, _) = connect(&mut h, 1);
        let (sid2, _) = connect(&mut h, 1);
        assert_ne!(sid1, sid2);
        assert_eq!(h.server.session_ids().len(), 2);
    }

    #[test]
    fn batch_records_deliver_all_payloads() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        let payloads: Vec<&[u8]> = vec![b"pkt one", b"pkt two", b"pkt three"];
        let rec = chan.seal_batch(sid, &payloads);
        match h.server.handle_record(&rec, 1).unwrap() {
            ServerEvent::DataBatch { session_id, frames } => {
                assert_eq!(session_id, sid);
                assert_eq!(frames.to_vecs(), payloads);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Batch records share the replay window with single records.
        assert_eq!(
            h.server.handle_record(&rec, 1).unwrap_err(),
            VpnError::Replay
        );
    }

    #[test]
    fn batch_records_respect_config_policy() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        h.server.announce_config(2, 0, 100);
        let rec = chan.seal_batch(sid, &[b"stale batch"]);
        assert!(matches!(
            h.server.handle_record(&rec, 101),
            Err(VpnError::StaleConfiguration { .. })
        ));
    }

    #[test]
    fn replayed_data_rejected() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        let rec = chan.seal(Opcode::Data, sid, b"pkt");
        h.server.handle_record(&rec, 1).unwrap();
        assert_eq!(
            h.server.handle_record(&rec, 1).unwrap_err(),
            VpnError::Replay
        );
    }

    #[test]
    fn unknown_session_rejected() {
        let mut h = harness();
        let (_, mut chan) = connect(&mut h, 1);
        let rec = chan.seal(Opcode::Data, 999, b"pkt");
        assert_eq!(
            h.server.handle_record(&rec, 1).unwrap_err(),
            VpnError::UnknownSession(999)
        );
    }

    #[test]
    fn grace_period_enforcement() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        // Server announces version 2 at t=100 with 30s grace.
        h.server.announce_config(2, 30, 100);

        // During grace (t=110): old version 1 still accepted.
        let rec = chan.seal(Opcode::Data, sid, b"during grace");
        assert!(matches!(
            h.server.handle_record(&rec, 110),
            Ok(ServerEvent::Data { .. })
        ));

        // After grace (t=131): stale config blocked.
        let rec = chan.seal(Opcode::Data, sid, b"after grace");
        assert_eq!(
            h.server.handle_record(&rec, 131).unwrap_err(),
            VpnError::StaleConfiguration {
                client: 1,
                required: 2
            }
        );

        // Client proves the update via ping (Fig. 5 step 9) and traffic
        // flows again.
        let ping = PingMessage {
            config_version: 2,
            grace_period_secs: 0,
            timestamp_ns: 0,
        };
        let rec = chan.seal(Opcode::Ping, sid, &ping.to_bytes());
        h.server.handle_record(&rec, 132).unwrap();
        let rec = chan.seal(Opcode::Data, sid, b"updated");
        assert!(matches!(
            h.server.handle_record(&rec, 133),
            Ok(ServerEvent::Data { .. })
        ));
    }

    #[test]
    fn rollback_to_older_version_blocked() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 5);
        h.server.announce_config(6, 0, 100);
        // A malicious client replays an old config and reports version 3 —
        // monotonicity check at the server refuses it after the deadline.
        let ping = PingMessage {
            config_version: 3,
            grace_period_secs: 0,
            timestamp_ns: 0,
        };
        let rec = chan.seal(Opcode::Ping, sid, &ping.to_bytes());
        h.server.handle_record(&rec, 101).unwrap();
        let rec = chan.seal(Opcode::Data, sid, b"rollback traffic");
        assert!(matches!(
            h.server.handle_record(&rec, 102),
            Err(VpnError::StaleConfiguration { .. })
        ));
    }

    #[test]
    fn server_ping_carries_announcement() {
        let mut h = harness();
        let (sid, mut chan) = connect(&mut h, 1);
        h.server.announce_config(7, 60, 0);
        let ping_rec = h.server.make_ping(sid, 42).unwrap();
        let payload = chan.open(&ping_rec).unwrap();
        let msg = PingMessage::from_bytes(&payload).unwrap();
        assert_eq!(msg.config_version, 7);
        assert_eq!(msg.grace_period_secs, 60);
    }

    #[test]
    fn disconnect_removes_session() {
        let mut h = harness();
        let (sid, _) = connect(&mut h, 1);
        let rec = Record {
            opcode: Opcode::Disconnect,
            session_id: sid,
            packet_id: 0,
            payload: vec![],
        };
        h.server.handle_record(&rec, 1).unwrap();
        assert_eq!(h.server.session_count(), 0);
    }

    #[test]
    fn crafted_ping_rejected_by_mac() {
        let mut h = harness();
        let (sid, _) = connect(&mut h, 1);
        // Attacker forges a ping claiming version 999 without keys.
        let forged = Record {
            opcode: Opcode::Ping,
            session_id: sid,
            packet_id: 50,
            payload: {
                let mut p = PingMessage {
                    config_version: 999,
                    grace_period_secs: 0,
                    timestamp_ns: 0,
                }
                .to_bytes();
                p.extend_from_slice(&[0u8; 32]); // fake tag
                p
            },
        };
        assert_eq!(
            h.server.handle_record(&forged, 1).unwrap_err(),
            VpnError::AuthenticationFailed
        );
    }
}
