//! Minimal byte-level reader/writer for wire formats.

use crate::error::VpnError;

/// Sequential writer producing length-delimited wire structures.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends raw bytes (fixed-size field).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a u32-length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Finishes, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a wire buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VpnError> {
        if self.pos + n > self.buf.len() {
            return Err(VpnError::Malformed("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, VpnError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, VpnError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, VpnError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, VpnError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `N` raw bytes into an array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], VpnError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Reads a u32-length-prefixed byte string (capped at 1 MiB to bound
    /// malicious length fields).
    pub fn bytes(&mut self) -> Result<&'a [u8], VpnError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(VpnError::Malformed("length field too large"));
        }
        self.take(len)
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, VpnError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| VpnError::Malformed("invalid utf-8"))
    }

    /// Remaining unread bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .bytes(b"hello")
            .string("world")
            .raw(&[1, 2]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.string().unwrap(), "world");
        assert_eq!(r.rest(), &[1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = Reader::new(&[0, 0, 0, 10, 1, 2]); // claims 10 bytes, has 2
        assert_eq!(r.bytes(), Err(VpnError::Malformed("truncated")));
    }

    #[test]
    fn oversized_length_field_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.bytes(),
            Err(VpnError::Malformed("length field too large"))
        );
    }
}
