//! Fragmentation and encapsulation of sealed records into MTU-sized
//! datagrams.
//!
//! Runs in the *untrusted* half of the EndBox client ("Other parts that
//! are not important for security (such as packet encapsulation and
//! fragmentation) are executed outside of the enclave", §III-B) —
//! fragmentation operates on ciphertext, so it needs no keys, and a
//! tampered fragment is caught later by the record MAC.

use crate::error::VpnError;
use crate::wire::Reader;
use endbox_netsim::BufferPool;
use std::collections::HashMap;

/// Per-datagram fragment header size.
pub const FRAG_HEADER_LEN: usize = 4 + 2 + 2;

/// Splits sealed record bytes into numbered datagrams.
#[derive(Debug, Default)]
pub struct Fragmenter {
    next_id: u32,
}

impl Fragmenter {
    /// New fragmenter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits `record_bytes` into datagrams of at most `mtu_payload`
    /// payload bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `mtu_payload` is zero.
    pub fn fragment(&mut self, record_bytes: &[u8], mtu_payload: usize) -> Vec<Vec<u8>> {
        self.fragment_with(record_bytes, mtu_payload, Vec::with_capacity)
    }

    /// Like [`Fragmenter::fragment`], but drawing each datagram's buffer
    /// from `pool` instead of allocating fresh — the egress half of the
    /// zero-copy datapath (the receiver recycles the buffers back after
    /// reassembly). Output bytes are identical to [`Fragmenter::fragment`].
    ///
    /// # Panics
    ///
    /// Panics if `mtu_payload` is zero.
    pub fn fragment_in(
        &mut self,
        record_bytes: &[u8],
        mtu_payload: usize,
        pool: &BufferPool,
    ) -> Vec<Vec<u8>> {
        self.fragment_with(record_bytes, mtu_payload, |cap| pool.take(cap))
    }

    /// Shared splitting core: `alloc` supplies each datagram's (empty)
    /// backing buffer, sized for header + chunk.
    fn fragment_with(
        &mut self,
        record_bytes: &[u8],
        mtu_payload: usize,
        alloc: impl Fn(usize) -> Vec<u8>,
    ) -> Vec<Vec<u8>> {
        assert!(mtu_payload > 0, "mtu must be positive");
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let chunks: Vec<&[u8]> = if record_bytes.is_empty() {
            vec![&[][..]]
        } else {
            record_bytes.chunks(mtu_payload).collect()
        };
        let total = chunks.len() as u16;
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| {
                // Header laid out exactly as `Writer` would (big-endian
                // u32 id, u16 index, u16 total), written straight into
                // the caller-supplied buffer.
                let mut buf = alloc(FRAG_HEADER_LEN + chunk.len());
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(&(i as u16).to_be_bytes());
                buf.extend_from_slice(&total.to_be_bytes());
                buf.extend_from_slice(chunk);
                buf
            })
            .collect()
    }
}

#[derive(Debug)]
struct Partial {
    pieces: Vec<Option<Vec<u8>>>,
    received: usize,
    /// Insertion order, for eviction.
    seq: u64,
}

/// Maximum records pending reassembly per peer — bounds the memory an
/// attacker can pin by spraying first-fragments that never complete.
pub const MAX_PENDING: usize = 64;

/// Reassembles datagrams back into record bytes. Tolerates reordering and
/// duplication; interleaved records are reassembled independently. At
/// most [`MAX_PENDING`] incomplete records are kept; beyond that the
/// oldest is evicted (its record is lost, like a dropped packet).
#[derive(Debug, Default)]
pub struct Reassembler {
    partials: HashMap<u32, Partial>,
    next_seq: u64,
    evictions: u64,
}

impl Reassembler {
    /// New reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of incomplete records evicted under memory pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Feeds one datagram. Returns the full record bytes once all pieces
    /// of a record have arrived.
    ///
    /// # Errors
    ///
    /// [`VpnError::Fragmentation`] on malformed or inconsistent fragments.
    pub fn push(&mut self, datagram: &[u8]) -> Result<Option<Vec<u8>>, VpnError> {
        let mut r = Reader::new(datagram);
        let id = r
            .u32()
            .map_err(|_| VpnError::Fragmentation("truncated header"))?;
        let index = r
            .u16()
            .map_err(|_| VpnError::Fragmentation("truncated header"))? as usize;
        let total = r
            .u16()
            .map_err(|_| VpnError::Fragmentation("truncated header"))? as usize;
        let chunk = r.rest().to_vec();
        if total == 0 || index >= total {
            return Err(VpnError::Fragmentation("index out of range"));
        }
        if !self.partials.contains_key(&id) && self.partials.len() >= MAX_PENDING {
            // Evict the oldest incomplete record (fragment-flood defence).
            if let Some((&oldest, _)) = self.partials.iter().min_by_key(|(_, p)| p.seq) {
                self.partials.remove(&oldest);
                self.evictions += 1;
            }
        }
        let seq = self.next_seq;
        let partial = self.partials.entry(id).or_insert_with(|| Partial {
            pieces: vec![None; total],
            received: 0,
            seq,
        });
        if partial.seq == seq {
            self.next_seq += 1;
        }
        if partial.pieces.len() != total {
            return Err(VpnError::Fragmentation("total mismatch across fragments"));
        }
        if partial.pieces[index].is_none() {
            partial.pieces[index] = Some(chunk);
            partial.received += 1;
        }
        if partial.received == total {
            let partial = self.partials.remove(&id).unwrap();
            let mut out = Vec::new();
            for piece in partial.pieces {
                out.extend_from_slice(&piece.unwrap());
            }
            return Ok(Some(out));
        }
        Ok(None)
    }

    /// Number of records awaiting completion.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Bytes currently buffered across incomplete records — the memory an
    /// RX shard is holding for this peer (surfaced by
    /// `ShardedEndBoxServer::rx_shard_stats`).
    pub fn pending_bytes(&self) -> usize {
        self.partials
            .values()
            .map(|p| p.pieces.iter().flatten().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Writer;
    use proptest::prelude::*;

    #[test]
    fn single_fragment_roundtrip() {
        let mut f = Fragmenter::new();
        let mut r = Reassembler::new();
        let frags = f.fragment(b"short record", 1000);
        assert_eq!(frags.len(), 1);
        assert_eq!(r.push(&frags[0]).unwrap().unwrap(), b"short record");
    }

    #[test]
    fn multi_fragment_roundtrip() {
        let mut f = Fragmenter::new();
        let mut r = Reassembler::new();
        let data: Vec<u8> = (0..2500u16).map(|i| (i % 251) as u8).collect();
        let frags = f.fragment(&data, 1000);
        assert_eq!(frags.len(), 3);
        assert!(r.push(&frags[0]).unwrap().is_none());
        assert_eq!(r.pending_bytes(), 1000);
        assert!(r.push(&frags[1]).unwrap().is_none());
        assert_eq!(r.pending_bytes(), 2000);
        assert_eq!(r.push(&frags[2]).unwrap().unwrap(), data);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.pending_bytes(), 0);
    }

    #[test]
    fn reordering_and_duplicates_tolerated() {
        let mut f = Fragmenter::new();
        let mut r = Reassembler::new();
        let data = vec![9u8; 2100];
        let frags = f.fragment(&data, 1000);
        assert!(r.push(&frags[2]).unwrap().is_none());
        assert!(r.push(&frags[0]).unwrap().is_none());
        assert!(r.push(&frags[0]).unwrap().is_none()); // duplicate
        assert_eq!(r.push(&frags[1]).unwrap().unwrap(), data);
    }

    #[test]
    fn interleaved_records() {
        let mut f = Fragmenter::new();
        let mut r = Reassembler::new();
        let a = vec![1u8; 1500];
        let b = vec![2u8; 1500];
        let fa = f.fragment(&a, 1000);
        let fb = f.fragment(&b, 1000);
        assert!(r.push(&fa[0]).unwrap().is_none());
        assert!(r.push(&fb[0]).unwrap().is_none());
        assert_eq!(r.push(&fb[1]).unwrap().unwrap(), b);
        assert_eq!(r.push(&fa[1]).unwrap().unwrap(), a);
    }

    #[test]
    fn malformed_fragments_rejected() {
        let mut r = Reassembler::new();
        assert!(r.push(&[1, 2]).is_err()); // truncated header
                                           // index >= total
        let mut w = Writer::new();
        w.u32(1).u16(3).u16(2).raw(b"x");
        assert!(r.push(&w.finish()).is_err());
        // total = 0
        let mut w = Writer::new();
        w.u32(1).u16(0).u16(0).raw(b"x");
        assert!(r.push(&w.finish()).is_err());
    }

    #[test]
    fn inconsistent_total_rejected() {
        let mut r = Reassembler::new();
        let mut w1 = Writer::new();
        w1.u32(5).u16(0).u16(2).raw(b"a");
        let mut w2 = Writer::new();
        w2.u32(5).u16(1).u16(3).raw(b"b"); // different total for same id
        assert!(r.push(&w1.finish()).unwrap().is_none());
        assert!(r.push(&w2.finish()).is_err());
    }

    #[test]
    fn fragment_flood_is_bounded() {
        let mut r = Reassembler::new();
        // Spray first-fragments of records that never complete.
        for id in 0..(MAX_PENDING as u32 * 4) {
            let mut w = Writer::new();
            w.u32(id).u16(0).u16(2).raw(b"never completes");
            assert!(r.push(&w.finish()).unwrap().is_none());
        }
        assert!(
            r.pending() <= MAX_PENDING,
            "pending bounded: {}",
            r.pending()
        );
        assert_eq!(r.evictions(), MAX_PENDING as u64 * 3);
        // A fresh record still reassembles fine under pressure.
        let mut f = Fragmenter::new();
        let mut frags = f.fragment(b"legit", 2);
        // Give it a high id so it does not collide with the flood ids.
        let last = frags.pop().unwrap();
        for frag in &frags {
            r.push(frag).unwrap();
        }
        assert_eq!(r.push(&last).unwrap().unwrap(), b"legit");
    }

    #[test]
    fn pooled_fragmentation_is_byte_identical_and_reuses_buffers() {
        let pool = BufferPool::new();
        let data: Vec<u8> = (0..3000u16).map(|i| (i % 251) as u8).collect();
        // Same fragmenter state (ids advance identically) → identical
        // wire bytes from both paths.
        let mut fresh = Fragmenter::new();
        let mut pooled = Fragmenter::new();
        let a = fresh.fragment(&data, 1000);
        let b = pooled.fragment_in(&data, 1000, &pool);
        assert_eq!(a, b, "pooled output must be byte-identical");
        assert_eq!(pool.stats().fresh_allocs, 3);
        // Recycle and refragment: steady state allocates nothing new.
        for buf in b {
            pool.give(buf);
        }
        let c = pooled.fragment_in(&data, 1000, &pool);
        assert_eq!(pool.stats().fresh_allocs, 3, "warm pool: no new allocs");
        assert_eq!(pool.stats().reused, 3);
        // Pool reconciliation: everything handed out is either returned
        // or still held by `c`.
        let stats = pool.stats();
        assert_eq!(
            stats.handed_out(),
            stats.returned + stats.discarded + c.len() as u64
        );
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut f = Fragmenter::new();
        let mut r = Reassembler::new();
        let frags = f.fragment(b"", 100);
        assert_eq!(frags.len(), 1);
        assert_eq!(r.push(&frags[0]).unwrap().unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fragment_reassemble_any_order(
            data in prop::collection::vec(any::<u8>(), 0..5000),
            mtu in 1usize..1500,
            seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut f = Fragmenter::new();
            let mut r = Reassembler::new();
            let mut frags = f.fragment(&data, mtu);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            frags.shuffle(&mut rng);
            let mut result = None;
            for frag in &frags {
                if let Some(rec) = r.push(frag).unwrap() {
                    result = Some(rec);
                }
            }
            prop_assert_eq!(result.unwrap(), data);
        }
    }
}
