//! An OpenVPN-model VPN for the EndBox reproduction.
//!
//! EndBox builds on OpenVPN v2.4.0 because it "(i) is open-source; (ii) has
//! relatively few dependencies; (iii) is implemented in user-space; and
//! (iv) is widely used" (§IV). This crate reproduces the pieces the paper
//! depends on:
//!
//! * [`proto`] — the wire record format (control/data/ping channels).
//! * [`cert`] — certificates issued by the network's CA (Fig. 4); only
//!   attested enclaves hold one, so "unattested clients cannot establish
//!   connections because of missing certificates" (§III-C).
//! * [`handshake`] — a TLS-style control-channel handshake: X25519 key
//!   agreement authenticated by certificates, with minimum-version
//!   enforcement on both sides (downgrade defence, §V-A).
//! * [`channel`] — the data channel: AES-128-CBC + HMAC-SHA256 (OpenVPN's
//!   classic protection), an integrity-only mode for the ISP scenario
//!   (§IV-A), and a payload-sampled mode for bulk simulations.
//! * [`replay`] — OpenVPN's sliding-window replay protection (§V-A:
//!   "the ENDBOX server detects this, due to OpenVPN's implementation of
//!   packet replay protection").
//! * [`ping`] — keepalive messages extended with the configuration version
//!   and grace period (§III-E).
//! * [`frag`] — fragmentation/encapsulation of sealed records into
//!   MTU-sized datagrams; runs *outside* the enclave, matching the
//!   partitioning of Fig. 3.
//! * [`endpoint`] — framing glue between sealed records and the virtual
//!   socket layer ([`endbox_netsim::net`]): fragments records into
//!   datagrams and ships them through non-blocking endpoints.
//! * [`server`] — the multi-session VPN server (a handshake front-end
//!   around one inline [`shard::VpnShard`]).
//! * [`shard`] — the sharded multi-worker server datapath: the session
//!   table partitioned across N worker threads with session-id-affine
//!   routing, per-shard buffer pools and deterministic re-merge.

pub mod cert;
pub mod channel;
pub mod endpoint;
pub mod error;
pub mod frag;
pub mod handshake;
pub mod ping;
pub mod proto;
pub mod replay;
pub mod server;
pub mod shard;
pub mod wire;

pub use cert::Certificate;
pub use channel::{CipherSuite, DataChannel, SessionKeys};
pub use error::VpnError;
pub use proto::Record;

/// Protocol version 1 (the TLS 1.2 analogue).
pub const PROTOCOL_V1: u8 = 1;
/// Protocol version 2 (the TLS 1.3 analogue).
pub const PROTOCOL_V2: u8 = 2;
