//! Framing glue between the VPN wire format and the virtual socket layer
//! ([`endbox_netsim::net`]).
//!
//! The datapath produces *sealed records*; the socket layer moves
//! *datagrams*. [`FramedSender`] owns the boundary on the sending side:
//! it fragments a record into MTU-sized datagrams
//! ([`crate::frag::Fragmenter`], fragment ids scoped to this sender — one
//! sender per peer, exactly like one [`Fragmenter`] per client today) and
//! ships each datagram through a non-blocking [`UdpEndpoint`]. The
//! receiving side needs no glue of its own: the server's RX shards
//! already reassemble per-peer datagram streams, so a drained
//! [`endbox_netsim::net::Datagram`] payload feeds straight into
//! `receive_datagrams`.
//!
//! Fragmentation runs *outside* the enclave (§III-B) and so does this
//! module: it only ever touches ciphertext.

use crate::frag::Fragmenter;
use crate::proto::Record;
use endbox_netsim::net::{NetError, UdpEndpoint};

/// A per-peer sending half: fragments sealed records and ships the
/// datagrams through a virtual UDP endpoint.
#[derive(Debug)]
pub struct FramedSender {
    endpoint: UdpEndpoint,
    fragmenter: Fragmenter,
    mtu_payload: usize,
}

impl FramedSender {
    /// Wraps `endpoint`, fragmenting records at `mtu_payload` bytes of
    /// fragment payload.
    pub fn new(endpoint: UdpEndpoint, mtu_payload: usize) -> FramedSender {
        FramedSender {
            endpoint,
            fragmenter: Fragmenter::new(),
            mtu_payload,
        }
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &UdpEndpoint {
        &self.endpoint
    }

    /// Fragments a sealed record's bytes and sends every datagram to
    /// `dst`. Returns the number of datagrams shipped.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`.
    pub fn send_sealed(&mut self, dst: u64, record_bytes: &[u8]) -> Result<usize, NetError> {
        let datagrams = self.fragmenter.fragment(record_bytes, self.mtu_payload);
        self.forward(dst, datagrams)
    }

    /// Encodes, fragments and sends a [`Record`] — for callers holding a
    /// record value rather than pre-fragmented wire datagrams (the
    /// client stack fragments internally and uses
    /// [`FramedSender::forward`] instead).
    ///
    /// # Errors
    ///
    /// See [`FramedSender::send_sealed`].
    pub fn send_record(&mut self, dst: u64, record: &Record) -> Result<usize, NetError> {
        self.send_sealed(dst, &record.to_bytes())
    }

    /// Ships already-fragmented wire datagrams (the output of the client
    /// stack's own fragmenter) to `dst`, in order. Returns the number of
    /// datagrams shipped.
    ///
    /// # Errors
    ///
    /// See [`FramedSender::send_sealed`].
    pub fn forward(
        &self,
        dst: u64,
        datagrams: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<usize, NetError> {
        let mut n = 0;
        for d in datagrams {
            self.endpoint.send_to(dst, d)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag::Reassembler;
    use crate::proto::Opcode;
    use endbox_netsim::net::VirtualWire;

    #[test]
    fn record_roundtrips_through_endpoint_and_reassembler() {
        let wire = VirtualWire::new();
        let server = wire.bind(1).unwrap();
        let mut sender = FramedSender::new(wire.bind(100).unwrap(), 16);
        let record = Record {
            opcode: Opcode::Data,
            session_id: 7,
            packet_id: 3,
            payload: vec![0xab; 50],
        };
        let n = sender.send_record(1, &record).unwrap();
        assert!(n > 1, "50 B record at 16 B MTU must fragment: {n}");
        let mut reasm = Reassembler::default();
        let mut out = None;
        while let Some(d) = server.try_recv() {
            if let Some(bytes) = reasm.push(&d.payload).unwrap() {
                out = Some(bytes);
            }
        }
        let got = Record::from_bytes(&out.expect("record completes")).unwrap();
        assert_eq!(got, record);
    }
}
