//! Framing glue between the VPN wire format and the virtual socket layer
//! ([`endbox_netsim::net`]).
//!
//! The datapath produces *sealed records*; the socket layer moves
//! *datagrams*. [`FramedSender`] owns the boundary on the sending side:
//! it fragments a record into MTU-sized datagrams
//! ([`crate::frag::Fragmenter`], fragment ids scoped to this sender — one
//! sender per peer, exactly like one [`Fragmenter`] per client today) and
//! ships the whole batch through a non-blocking [`UdpEndpoint`] with ONE
//! bulk [`UdpEndpoint::send_many`] call (`sendmmsg` shape): a record is
//! one syscall, not one per fragment. Built with
//! [`FramedSender::with_pool`], the fragment buffers come from a
//! [`BufferPool`] instead of fresh allocations, closing the egress half
//! of the zero-copy loop. The receiving side needs no glue of its own:
//! the server's RX shards already reassemble per-peer datagram streams,
//! so a drained [`endbox_netsim::net::Datagram`] payload feeds straight
//! into `receive_datagrams`.
//!
//! Fragmentation runs *outside* the enclave (§III-B) and so does this
//! module: it only ever touches ciphertext.

use crate::frag::Fragmenter;
use crate::proto::Record;
use endbox_netsim::net::{NetError, UdpEndpoint};
use endbox_netsim::BufferPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded retries after partial bulk sends before the stall is
/// surfaced as an error (only the OS backend can ever send partially;
/// each stall yields the thread so the kernel can drain the socket).
const MAX_SEND_STALLS: usize = 64;

/// Cumulative send totals of a [`FramedSender`] — the egress mirror of
/// the server's `AsyncIngressStats`, counted the same way: one
/// `io_calls` tick per bulk `send_many` issued (including retries after
/// a partial send), so `datagrams / io_calls` is the egress syscall
/// amortisation and the totals reconcile exactly against a downstream
/// `TxBatchStats` carrying the same datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendStats {
    /// Datagrams shipped onto the wire.
    pub datagrams: u64,
    /// Bulk `send_many` calls issued (each one "syscall").
    pub io_calls: u64,
    /// Partial-send stalls retried (OS-socket backpressure).
    pub stalls: u64,
}

/// A per-peer sending half: fragments sealed records and ships the
/// datagrams through a virtual UDP endpoint.
#[derive(Debug)]
pub struct FramedSender {
    endpoint: UdpEndpoint,
    fragmenter: Fragmenter,
    mtu_payload: usize,
    pool: Option<BufferPool>,
    sent_datagrams: AtomicU64,
    io_calls: AtomicU64,
    stalls: AtomicU64,
}

impl FramedSender {
    /// Wraps `endpoint`, fragmenting records at `mtu_payload` bytes of
    /// fragment payload.
    pub fn new(endpoint: UdpEndpoint, mtu_payload: usize) -> FramedSender {
        FramedSender {
            endpoint,
            fragmenter: Fragmenter::new(),
            mtu_payload,
            pool: None,
            sent_datagrams: AtomicU64::new(0),
            io_calls: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }

    /// Like [`FramedSender::new`], with fragment buffers drawn from
    /// `pool` (returned to it by whoever consumes the datagrams).
    pub fn with_pool(endpoint: UdpEndpoint, mtu_payload: usize, pool: BufferPool) -> FramedSender {
        FramedSender {
            pool: Some(pool),
            ..FramedSender::new(endpoint, mtu_payload)
        }
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &UdpEndpoint {
        &self.endpoint
    }

    /// The egress buffer pool, if built with [`FramedSender::with_pool`].
    pub fn pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// Cumulative send totals across every [`FramedSender::forward`] /
    /// [`FramedSender::send_sealed`] call on this sender.
    pub fn send_stats(&self) -> SendStats {
        SendStats {
            datagrams: self.sent_datagrams.load(Ordering::Relaxed),
            io_calls: self.io_calls.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// Fragments a sealed record's bytes and sends every datagram to
    /// `dst` with one bulk call. Returns the number of datagrams shipped.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`.
    pub fn send_sealed(&mut self, dst: u64, record_bytes: &[u8]) -> Result<usize, NetError> {
        let datagrams = match &self.pool {
            Some(pool) => self
                .fragmenter
                .fragment_in(record_bytes, self.mtu_payload, pool),
            None => self.fragmenter.fragment(record_bytes, self.mtu_payload),
        };
        self.forward(dst, datagrams)
    }

    /// Encodes, fragments and sends a [`Record`] — for callers holding a
    /// record value rather than pre-fragmented wire datagrams (the
    /// client stack fragments internally and uses
    /// [`FramedSender::forward`] instead).
    ///
    /// # Errors
    ///
    /// See [`FramedSender::send_sealed`].
    pub fn send_record(&mut self, dst: u64, record: &Record) -> Result<usize, NetError> {
        self.send_sealed(dst, &record.to_bytes())
    }

    /// Ships already-fragmented wire datagrams (the output of the client
    /// stack's own fragmenter) to `dst`, in order, coalesced into bulk
    /// [`UdpEndpoint::send_many`] calls — one syscall per record batch
    /// instead of one per datagram. Partial sends (OS-socket
    /// backpressure) are retried with bounded stalls; on the virtual
    /// wire a bulk send never splits. Returns the number of datagrams
    /// shipped.
    ///
    /// # Errors
    ///
    /// [`NetError::Unreachable`] if no endpoint is bound at `dst`
    /// (nothing shipped); [`NetError::Io`] if the socket stalls beyond
    /// the retry bound mid-batch.
    pub fn forward(
        &self,
        dst: u64,
        datagrams: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<usize, NetError> {
        let mut batch: Vec<Vec<u8>> = datagrams.into_iter().collect();
        let total = batch.len();
        let mut sent = 0;
        let mut stalls = 0;
        while !batch.is_empty() {
            self.io_calls.fetch_add(1, Ordering::Relaxed);
            let shipped = self.endpoint.send_many(dst, &mut batch)?;
            sent += shipped;
            self.sent_datagrams
                .fetch_add(shipped as u64, Ordering::Relaxed);
            if !batch.is_empty() {
                stalls += 1;
                self.stalls.fetch_add(1, Ordering::Relaxed);
                if stalls > MAX_SEND_STALLS {
                    return Err(NetError::Io(format!(
                        "bulk send to {dst} stalled: {sent}/{total} shipped"
                    )));
                }
                std::thread::yield_now();
            }
        }
        debug_assert_eq!(sent, total);
        Ok(sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag::Reassembler;
    use crate::proto::Opcode;
    use endbox_netsim::net::VirtualWire;

    #[test]
    fn record_roundtrips_through_endpoint_and_reassembler() {
        let wire = VirtualWire::new();
        let server = wire.bind(1).unwrap();
        let mut sender = FramedSender::new(wire.bind(100).unwrap(), 16);
        let record = Record {
            opcode: Opcode::Data,
            session_id: 7,
            packet_id: 3,
            payload: vec![0xab; 50],
        };
        let n = sender.send_record(1, &record).unwrap();
        assert!(n > 1, "50 B record at 16 B MTU must fragment: {n}");
        let mut reasm = Reassembler::default();
        let mut out = None;
        while let Some(d) = server.try_recv() {
            if let Some(bytes) = reasm.push(&d.payload).unwrap() {
                out = Some(bytes);
            }
        }
        let got = Record::from_bytes(&out.expect("record completes")).unwrap();
        assert_eq!(got, record);
    }

    #[test]
    fn send_stats_count_bulk_calls_like_the_ingress_side() {
        let wire = VirtualWire::new();
        let server = wire.bind(1).unwrap();
        let mut sender = FramedSender::new(wire.bind(100).unwrap(), 16);
        let record = Record {
            opcode: Opcode::Data,
            session_id: 9,
            packet_id: 1,
            payload: vec![0xcd; 50],
        };
        let n = sender.send_record(1, &record).unwrap();
        let n2 = sender.send_record(1, &record).unwrap();
        let stats = sender.send_stats();
        assert_eq!(stats.datagrams, (n + n2) as u64);
        assert_eq!(stats.io_calls, 2, "one bulk call per record batch");
        assert_eq!(stats.stalls, 0, "the virtual wire never splits a bulk send");
        let mut received = 0u64;
        while server.try_recv().is_some() {
            received += 1;
        }
        assert_eq!(
            received, stats.datagrams,
            "wire reconciles with send totals"
        );
    }

    #[test]
    fn pooled_sender_recycles_egress_buffers_and_reconciles() {
        let wire = VirtualWire::new();
        let server = wire.bind(1).unwrap();
        let pool = BufferPool::new();
        let mut sender = FramedSender::with_pool(wire.bind(100).unwrap(), 16, pool.clone());
        let record = Record {
            opcode: Opcode::Data,
            session_id: 7,
            packet_id: 3,
            payload: vec![0xab; 50],
        };
        // Round 1 populates the pool; the receiver recycles payloads.
        let n = sender.send_record(1, &record).unwrap();
        let cold_allocs = pool.stats().fresh_allocs;
        assert_eq!(cold_allocs, n as u64, "cold pool: one alloc per datagram");
        while let Some(d) = server.try_recv() {
            pool.give(d.payload);
        }
        // Round 2 runs entirely on recycled buffers.
        sender.send_record(1, &record).unwrap();
        assert_eq!(
            pool.stats().fresh_allocs,
            cold_allocs,
            "warm pool: egress allocates nothing new"
        );
        let mut held = 0u64;
        while let Some(d) = server.try_recv() {
            held += 1;
            drop(d); // receiver chose not to recycle these
        }
        let stats = pool.stats();
        assert_eq!(
            stats.handed_out(),
            stats.returned + stats.discarded + held,
            "pool reconciles: handed out == returned + discarded + in flight"
        );
        assert!(stats.reuse_fraction() > 0.4, "stats: {stats:?}");
    }
}
