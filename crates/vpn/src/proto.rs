//! The wire record format: every datagram between an EndBox client and the
//! server is one record.

use crate::error::VpnError;
use crate::wire::{Reader, Writer};

/// Record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Control channel: client hello.
    HandshakeInit,
    /// Control channel: server hello.
    HandshakeResp,
    /// Data channel payload (sealed).
    Data,
    /// Keepalive/ping (sealed; §III-E extension carries config version).
    Ping,
    /// Orderly teardown.
    Disconnect,
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::HandshakeInit => 1,
            Opcode::HandshakeResp => 2,
            Opcode::Data => 3,
            Opcode::Ping => 4,
            Opcode::Disconnect => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, VpnError> {
        Ok(match v {
            1 => Opcode::HandshakeInit,
            2 => Opcode::HandshakeResp,
            3 => Opcode::Data,
            4 => Opcode::Ping,
            5 => Opcode::Disconnect,
            _ => return Err(VpnError::Malformed("unknown opcode")),
        })
    }
}

/// A wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record type.
    pub opcode: Opcode,
    /// Session the record belongs to (0 during handshake init).
    pub session_id: u64,
    /// Monotonic packet id for replay protection (data/ping).
    pub packet_id: u64,
    /// Opaque payload (sealed for data/ping records).
    pub payload: Vec<u8>,
}

/// Bytes of framing added around each payload on the wire.
pub const RECORD_OVERHEAD: usize = 1 + 8 + 8 + 4;

impl Record {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.opcode.to_u8()).u64(self.session_id).u64(self.packet_id).bytes(&self.payload);
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] on truncation or unknown opcodes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Record, VpnError> {
        let mut r = Reader::new(bytes);
        let opcode = Opcode::from_u8(r.u8()?)?;
        let session_id = r.u64()?;
        let packet_id = r.u64()?;
        let payload = r.bytes()?.to_vec();
        if !r.is_empty() {
            return Err(VpnError::Malformed("trailing bytes after record"));
        }
        Ok(Record { opcode, session_id, packet_id, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rec = Record {
            opcode: Opcode::Data,
            session_id: 42,
            packet_id: 7,
            payload: vec![1, 2, 3],
        };
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), RECORD_OVERHEAD + 3);
        assert_eq!(Record::from_bytes(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for op in [
            Opcode::HandshakeInit,
            Opcode::HandshakeResp,
            Opcode::Data,
            Opcode::Ping,
            Opcode::Disconnect,
        ] {
            let rec = Record { opcode: op, session_id: 1, packet_id: 2, payload: vec![] };
            assert_eq!(Record::from_bytes(&rec.to_bytes()).unwrap().opcode, op);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Record::from_bytes(&[]).is_err());
        assert!(Record::from_bytes(&[9; 30]).is_err()); // opcode 9
        let mut ok = Record {
            opcode: Opcode::Data,
            session_id: 1,
            packet_id: 1,
            payload: vec![5],
        }
        .to_bytes();
        ok.push(0); // trailing byte
        assert_eq!(Record::from_bytes(&ok), Err(VpnError::Malformed("trailing bytes after record")));
    }
}
