//! The wire record format: every datagram between an EndBox client and the
//! server is one record.

use crate::error::VpnError;
use crate::wire::{Reader, Writer};

/// Record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Control channel: client hello.
    HandshakeInit,
    /// Control channel: server hello.
    HandshakeResp,
    /// Data channel payload (sealed).
    Data,
    /// Data channel batch: several tun-level packets coalesced into one
    /// sealed record (the §IV batching optimisation). The payload is a
    /// [`frame`]-encoded sequence of packets.
    DataBatch,
    /// Keepalive/ping (sealed; §III-E extension carries config version).
    Ping,
    /// Orderly teardown.
    Disconnect,
}

impl Opcode {
    /// Wire byte for this opcode — also bound into data-channel MACs, so
    /// there is exactly one opcode/byte table in the crate.
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Opcode::HandshakeInit => 1,
            Opcode::HandshakeResp => 2,
            Opcode::Data => 3,
            Opcode::Ping => 4,
            Opcode::Disconnect => 5,
            Opcode::DataBatch => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, VpnError> {
        Ok(match v {
            1 => Opcode::HandshakeInit,
            2 => Opcode::HandshakeResp,
            3 => Opcode::Data,
            4 => Opcode::Ping,
            5 => Opcode::Disconnect,
            6 => Opcode::DataBatch,
            _ => return Err(VpnError::Malformed("unknown opcode")),
        })
    }
}

/// Framing for [`Opcode::DataBatch`] payloads: `u32` packet count, then
/// each packet as `u32` length + bytes. Kept deliberately simple — the
/// whole blob is sealed/authenticated as one unit by the data channel.
pub mod frame {
    use crate::error::VpnError;

    /// Bytes of framing overhead for a batch of `n` packets.
    pub fn overhead(n: usize) -> usize {
        4 + 4 * n
    }

    /// Encodes `payloads` into one blob, appending to `out` (which is
    /// cleared first so callers can recycle the buffer).
    pub fn encode_into(out: &mut Vec<u8>, payloads: &[&[u8]]) {
        out.clear();
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        out.reserve(overhead(payloads.len()) + total);
        out.extend_from_slice(&(payloads.len() as u32).to_be_bytes());
        for p in payloads {
            out.extend_from_slice(&(p.len() as u32).to_be_bytes());
            out.extend_from_slice(p);
        }
    }

    /// Encodes `payloads` into a fresh blob.
    pub fn encode(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_into(&mut out, payloads);
        out
    }

    /// Decodes a blob produced by [`encode`], yielding each packet's byte
    /// range within `blob` (zero-copy; callers slice the blob).
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] on truncation, trailing garbage, or a
    /// count/length mismatch.
    pub fn decode(blob: &[u8]) -> Result<Vec<std::ops::Range<usize>>, VpnError> {
        if blob.len() < 4 {
            return Err(VpnError::Malformed("batch blob too short"));
        }
        let count = u32::from_be_bytes(blob[..4].try_into().unwrap()) as usize;
        // Each frame needs at least its 4-byte length header, so any count
        // beyond blob.len()/4 is malformed — checking here also keeps a
        // hostile count field from driving a huge pre-allocation.
        if count > (blob.len() - 4) / 4 {
            return Err(VpnError::Malformed("batch count exceeds blob size"));
        }
        let mut ranges = Vec::with_capacity(count);
        let mut off = 4usize;
        for _ in 0..count {
            if blob.len() < off + 4 {
                return Err(VpnError::Malformed("batch frame header truncated"));
            }
            let len = u32::from_be_bytes(blob[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            if blob.len() < off + len {
                return Err(VpnError::Malformed("batch frame body truncated"));
            }
            ranges.push(off..off + len);
            off += len;
        }
        if off != blob.len() {
            return Err(VpnError::Malformed("trailing bytes after batch frames"));
        }
        Ok(ranges)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip() {
            let payloads: Vec<&[u8]> = vec![b"one", b"", b"three33"];
            let blob = encode(&payloads);
            assert_eq!(blob.len(), overhead(3) + 3 + 7);
            let ranges = decode(&blob).unwrap();
            let decoded: Vec<&[u8]> = ranges.into_iter().map(|r| &blob[r]).collect();
            assert_eq!(decoded, payloads);
        }

        #[test]
        fn empty_batch_roundtrips() {
            let blob = encode(&[]);
            assert!(decode(&blob).unwrap().is_empty());
        }

        #[test]
        fn rejects_malformed() {
            assert!(decode(&[]).is_err());
            assert!(decode(&[0, 0, 0, 2, 0, 0, 0, 1]).is_err()); // body truncated
            let mut blob = encode(&[b"x"]);
            blob.push(9); // trailing garbage
            assert!(decode(&blob).is_err());
            blob.pop();
            blob[3] = 2; // count says 2, only 1 frame present
            assert!(decode(&blob).is_err());
        }

        #[test]
        fn encode_into_recycles_buffer() {
            let mut buf = encode(&[b"aaaa"]);
            let cap = buf.capacity();
            encode_into(&mut buf, &[b"b"]);
            assert_eq!(decode(&buf).unwrap().len(), 1);
            assert!(buf.capacity() >= cap.min(buf.len()));
        }
    }
}

/// A wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record type.
    pub opcode: Opcode,
    /// Session the record belongs to (0 during handshake init).
    pub session_id: u64,
    /// Monotonic packet id for replay protection (data/ping).
    pub packet_id: u64,
    /// Opaque payload (sealed for data/ping records).
    pub payload: Vec<u8>,
}

/// Bytes of framing added around each payload on the wire.
pub const RECORD_OVERHEAD: usize = 1 + 8 + 8 + 4;

impl Record {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.opcode.to_u8())
            .u64(self.session_id)
            .u64(self.packet_id)
            .bytes(&self.payload);
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] on truncation or unknown opcodes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Record, VpnError> {
        let mut r = Reader::new(bytes);
        let opcode = Opcode::from_u8(r.u8()?)?;
        let session_id = r.u64()?;
        let packet_id = r.u64()?;
        let payload = r.bytes()?.to_vec();
        if !r.is_empty() {
            return Err(VpnError::Malformed("trailing bytes after record"));
        }
        Ok(Record {
            opcode,
            session_id,
            packet_id,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rec = Record {
            opcode: Opcode::Data,
            session_id: 42,
            packet_id: 7,
            payload: vec![1, 2, 3],
        };
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), RECORD_OVERHEAD + 3);
        assert_eq!(Record::from_bytes(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for op in [
            Opcode::HandshakeInit,
            Opcode::HandshakeResp,
            Opcode::Data,
            Opcode::Ping,
            Opcode::Disconnect,
        ] {
            let rec = Record {
                opcode: op,
                session_id: 1,
                packet_id: 2,
                payload: vec![],
            };
            assert_eq!(Record::from_bytes(&rec.to_bytes()).unwrap().opcode, op);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Record::from_bytes(&[]).is_err());
        assert!(Record::from_bytes(&[9; 30]).is_err()); // opcode 9
        let mut ok = Record {
            opcode: Opcode::Data,
            session_id: 1,
            packet_id: 1,
            payload: vec![5],
        }
        .to_bytes();
        ok.push(0); // trailing byte
        assert_eq!(
            Record::from_bytes(&ok),
            Err(VpnError::Malformed("trailing bytes after record"))
        );
    }
}
