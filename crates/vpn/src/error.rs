//! VPN error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the VPN layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VpnError {
    /// A wire message could not be parsed.
    Malformed(&'static str),
    /// MAC verification failed.
    AuthenticationFailed,
    /// A packet id was replayed or too old.
    Replay,
    /// Certificate validation failed.
    BadCertificate(&'static str),
    /// Handshake signature failed.
    BadSignature,
    /// The peer offered a protocol version below the enforced minimum
    /// (downgrade attempt, §V-A).
    VersionTooLow {
        /// Version offered by the peer.
        offered: u8,
        /// Minimum this endpoint accepts.
        minimum: u8,
    },
    /// Record for an unknown session.
    UnknownSession(u64),
    /// The client's configuration version is stale and the grace period
    /// has expired (§III-E).
    StaleConfiguration {
        /// Version the client runs.
        client: u64,
        /// Version the server requires.
        required: u64,
    },
    /// Fragment reassembly failed.
    Fragmentation(&'static str),
    /// Session is not in a state that allows the operation.
    BadState(&'static str),
}

impl fmt::Display for VpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpnError::Malformed(what) => write!(f, "malformed message: {what}"),
            VpnError::AuthenticationFailed => f.write_str("packet authentication failed"),
            VpnError::Replay => f.write_str("replayed packet rejected"),
            VpnError::BadCertificate(why) => write!(f, "certificate invalid: {why}"),
            VpnError::BadSignature => f.write_str("handshake signature invalid"),
            VpnError::VersionTooLow { offered, minimum } => {
                write!(
                    f,
                    "protocol version {offered} below enforced minimum {minimum}"
                )
            }
            VpnError::UnknownSession(id) => write!(f, "unknown session {id}"),
            VpnError::StaleConfiguration { client, required } => {
                write!(
                    f,
                    "stale configuration {client}, server requires {required}"
                )
            }
            VpnError::Fragmentation(why) => write!(f, "fragmentation error: {why}"),
            VpnError::BadState(why) => write!(f, "bad session state: {why}"),
        }
    }
}

impl Error for VpnError {}
