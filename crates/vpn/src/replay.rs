//! Sliding-window replay protection, modelled after OpenVPN's packet-id
//! tracking (the defence cited in §V-A against traffic replay).

/// Window size in packets.
pub const WINDOW: u64 = 64;

/// A 64-packet sliding window over monotonically increasing packet ids.
#[derive(Debug, Clone, Default)]
pub struct ReplayWindow {
    /// Highest id accepted so far (0 = none yet).
    highest: u64,
    /// Bit `i` set = packet `highest - i` seen.
    mask: u64,
}

impl ReplayWindow {
    /// Fresh window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts or rejects packet `id` (ids start at 1), updating state on
    /// acceptance.
    pub fn accept(&mut self, id: u64) -> bool {
        if id == 0 {
            return false;
        }
        if id > self.highest {
            let shift = id - self.highest;
            self.mask = if shift >= WINDOW {
                0
            } else {
                self.mask << shift
            };
            self.mask |= 1; // bit 0 = current highest
            self.highest = id;
            return true;
        }
        let offset = self.highest - id;
        if offset >= WINDOW {
            return false; // too old
        }
        let bit = 1u64 << offset;
        if self.mask & bit != 0 {
            return false; // replay
        }
        self.mask |= bit;
        true
    }

    /// Highest id accepted.
    pub fn highest(&self) -> u64 {
        self.highest
    }

    /// True while no packet has ever been accepted — the session carries
    /// no anti-replay state yet, so its server-side state can move
    /// between owners without dragging an in-flight window along. The
    /// work-stealing dispatcher uses exactly this predicate to pick
    /// steal-safe sessions ([`DispatchPolicy::Adaptive`]).
    ///
    /// [`DispatchPolicy::Adaptive`]: crate::shard::DispatchPolicy::Adaptive
    pub fn is_empty(&self) -> bool {
        self.highest == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn monotonic_ids_accepted_once() {
        let mut w = ReplayWindow::new();
        for id in 1..=100 {
            assert!(w.accept(id), "first {id}");
            assert!(!w.accept(id), "replay {id}");
        }
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReplayWindow::new();
        assert!(w.accept(10));
        assert!(w.accept(5)); // late but in window
        assert!(!w.accept(5)); // replay
        assert!(w.accept(11));
        assert!(w.accept(6));
    }

    #[test]
    fn too_old_rejected() {
        let mut w = ReplayWindow::new();
        assert!(w.accept(100));
        assert!(!w.accept(100 - WINDOW), "outside window");
        assert!(w.accept(100 - WINDOW + 1), "just inside window");
    }

    #[test]
    fn zero_id_rejected() {
        let mut w = ReplayWindow::new();
        assert!(!w.accept(0));
    }

    #[test]
    fn emptiness_tracks_first_acceptance() {
        let mut w = ReplayWindow::new();
        assert!(w.is_empty(), "fresh window is empty");
        assert!(!w.accept(0));
        assert!(w.is_empty(), "rejected ids leave no state");
        assert!(w.accept(3));
        assert!(!w.is_empty(), "any accepted id pins the window");
    }

    #[test]
    fn big_jump_clears_window() {
        let mut w = ReplayWindow::new();
        assert!(w.accept(1));
        assert!(w.accept(1000));
        assert!(w.accept(999)); // new window position, unseen
        assert!(!w.accept(1)); // ancient
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The window must never accept the same id twice, and must accept
        /// every fresh id within WINDOW of the running maximum.
        #[test]
        fn never_accepts_duplicates(ids in prop::collection::vec(1u64..2000, 1..300)) {
            let mut w = ReplayWindow::new();
            let mut accepted = HashSet::new();
            for &id in &ids {
                let fresh = !accepted.contains(&id);
                let in_window = id + WINDOW > w.highest();
                let got = w.accept(id);
                if got {
                    prop_assert!(fresh, "accepted duplicate {id}");
                    accepted.insert(id);
                } else {
                    prop_assert!(!fresh || !in_window, "rejected fresh in-window {id}");
                }
            }
        }
    }
}
