//! The sharded multi-worker server datapath: `VpnServer`'s session table
//! partitioned across N worker shards, each shard processing traffic
//! strictly in batch units on its own thread with its own
//! [`BufferPool`].
//!
//! # Architecture
//!
//! * [`VpnShard`] is one partition of the server: a session table, the
//!   config-version policy, and a buffer pool. All per-record logic
//!   (policy enforcement, record opening, **per-session replay windows**,
//!   ping handling, disconnects) lives here — [`crate::server::VpnServer`]
//!   is exactly one inline shard plus the handshake front-end, so the
//!   single-threaded and sharded servers share one implementation of the
//!   datapath and cannot drift apart.
//! * [`ShardedVpnServer`] spawns one worker thread per shard and talks to
//!   them over crossbeam channels. The front-end keeps the handshake
//!   state (identity, session-id allocator, RNG) and the authoritative
//!   copy of the config policy; workers own everything per-session.
//!
//! # Routing invariants
//!
//! 1. **Single-owner sessions.** Session `s` is owned by exactly one
//!    shard at any instant. Initial placement is the *home shard*
//!    `(s - 1) mod N` (session ids are allocated densely from 1, so
//!    consecutive sessions round-robin across shards). Under
//!    [`DispatchPolicy::LoadAware`] the dispatcher may *migrate* a
//!    session to another shard, but only at a dispatch boundary and via
//!    an explicit extract/install round-trip, so every record for a
//!    session is still processed by its (current) owning shard — which is
//!    what keeps per-session replay windows and channel state
//!    single-writer without locks. The replay window and channel state
//!    travel inside the [`ServerSession`] when it migrates; per-peer
//!    reassembly state never lives on a shard (it is pinned to the RX
//!    front-end) and never migrates.
//! 2. **Per-shard FIFO.** Each worker processes its requests in the order
//!    the front-end sent them. Combined with single-owner routing and
//!    boundary-only migration this preserves the per-session record order
//!    of the single-threaded server exactly: the extract round-trip
//!    blocks until the old shard drained every earlier record of the
//!    session, and the install is enqueued before any later one.
//! 3. **Handshake serialisation.** Handshakes mutate front-end state (the
//!    RNG and the session-id allocator), so [`ShardedVpnServer`] flushes
//!    all outstanding shard work before processing one. Session-id and
//!    key-material assignment is therefore byte-identical to
//!    `VpnServer`'s for any interleaving of clients.
//!
//! # Re-merge ordering guarantee
//!
//! [`ShardedVpnServer::handle_records`] returns exactly one result per
//! input record, **in input order**, regardless of worker count or thread
//! scheduling: requests are tagged with their input index, workers echo
//! the tags, and the front-end slots replies back by index before
//! returning. A sharded server with N workers is therefore
//! observationally equivalent to the single-threaded server — byte-equal
//! emissions, identical replay/policy verdicts — which is property-tested
//! in `tests/shard_parity.rs` for N ∈ {1, 2, 4, 8}.
//!
//! # Load-aware dispatch
//!
//! Static affinity keeps shards independent, but a handful of heavy
//! sessions whose ids collide modulo N can saturate one shard while the
//! others idle. [`DispatchPolicy::LoadAware`] therefore keeps an
//! exponentially-weighted moving average of dispatched bytes per shard
//! and per session; when the hottest shard's EWMA exceeds the coldest's
//! by more than the configured imbalance threshold, the dispatcher
//! migrates the heaviest movable session from hot to cold (bounded per
//! dispatch). Because migration only changes *which* shard processes a
//! session — never the order of its records, nor any verdict — the
//! load-aware server stays byte-identical to the single-threaded one;
//! the parity property tests run under both policies.

use crate::channel::{BatchFrames, CipherSuite, DataChannel};
use crate::error::VpnError;
use crate::handshake::{server_respond, ClientHello, ClientInfo, HandshakeConfig};
use crate::ping::PingMessage;
use crate::proto::{Opcode, Record};
use crate::server::ServerEvent;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::{BufferPool, Packet, PacketBatch};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Server-side state for one client session.
#[derive(Debug)]
pub struct ServerSession {
    /// Authenticated client information from the handshake.
    pub info: ClientInfo,
    /// Latest configuration version the client proved via ping.
    pub reported_config_version: u64,
    pub(crate) channel: DataChannel,
}

/// Configuration-version policy (§III-E), replicated to every shard on
/// each announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct ConfigPolicy {
    pub(crate) required_version: u64,
    /// Versions >= `previous_ok_version` are accepted until the deadline.
    pub(crate) previous_ok_version: u64,
    pub(crate) grace_deadline_secs: u64,
    pub(crate) grace_period_secs: u32,
}

/// How the front-end assigns sessions (and their traffic) to shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Fixed session-id affinity: session `s` stays on its home shard
    /// `(s - 1) mod N` forever (the PR 2 behaviour).
    Static,
    /// Home-shard initial placement plus bounded migration: when the
    /// hottest shard's load EWMA exceeds the coldest's by more than
    /// `imbalance_bytes`, up to `max_migrations_per_dispatch` heavy
    /// sessions move hot → cold at the next dispatch boundary.
    LoadAware {
        /// EWMA byte gap between the hottest and coldest shard that
        /// triggers a migration.
        imbalance_bytes: u64,
        /// Migration budget per dispatch (bounds the extract/install
        /// round-trips a single batch can spend).
        max_migrations_per_dispatch: usize,
    },
    /// Zero-knob self-tuning dispatch (the PR 8 controller): the
    /// migration threshold is derived at every dispatch boundary from
    /// the measured per-shard service rates (the mean of the per-shard
    /// byte EWMAs, floored at one MTU packet), the migration budget is
    /// structural (one per worker), and after the migration pass idle
    /// workers *steal* steal-safe sessions — sessions whose replay
    /// windows are still empty ([`crate::replay::ReplayWindow::is_empty`]),
    /// verified authoritatively on the owning shard thread — from the
    /// busiest worker. There is nothing to configure.
    Adaptive,
}

impl DispatchPolicy {
    /// The default load-aware configuration: react to a sustained
    /// imbalance of a dozen MTU-sized packets, at most two migrations per
    /// dispatch.
    pub fn load_aware() -> Self {
        DispatchPolicy::LoadAware {
            imbalance_bytes: 16 * 1_500,
            max_migrations_per_dispatch: 2,
        }
    }
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy::load_aware()
    }
}

/// Decay factor of the per-shard / per-session load EWMAs (the weight of
/// the newest dispatch).
const LOAD_EWMA_ALPHA: f64 = 0.5;

/// Structural floor of the adaptive dispatcher's derived imbalance
/// threshold: one MTU-sized packet. Below this a "gap" is a single
/// packet of jitter, not an imbalance — it is a physical unit, not a
/// tuning knob (the threshold itself is the measured mean shard rate).
const ADAPTIVE_MIN_IMBALANCE: f64 = 1_500.0;

/// A shard whose byte EWMA has decayed below one byte is idle for the
/// purposes of work stealing (the EWMA halves every dispatch, so any
/// real traffic keeps it far above this).
const ADAPTIVE_IDLE_EWMA: f64 = 1.0;

/// What a shard produced for one input record: the packet-level
/// deliveries of the sharded datapath (handshake results are produced by
/// the front-end).
#[derive(Debug)]
pub enum ShardEvent {
    /// Handshake completed; send `response` back to the client.
    Established {
        /// Assigned session id.
        session_id: u64,
        /// ServerHello record to transmit.
        response: Record,
        /// Who connected.
        info: ClientInfo,
    },
    /// A single tunnel packet, materialised from the shard's pool.
    Packet {
        /// Session it arrived on.
        session_id: u64,
        /// The decapsulated IP packet.
        packet: Packet,
    },
    /// A batched record's packets, pool-backed, in batch order.
    Batch {
        /// Session it arrived on.
        session_id: u64,
        /// The decapsulated IP packets.
        batch: PacketBatch,
    },
    /// An authenticated ping arrived.
    Ping {
        /// Session it arrived on.
        session_id: u64,
        /// The ping contents.
        message: PingMessage,
    },
    /// Orderly disconnect.
    Disconnected {
        /// Session that ended.
        session_id: u64,
    },
}

/// Materialises batch frames into pool-backed packets in **one pass**:
/// one `take_many` for the whole batch, one copy per frame (out of the
/// decrypted blob straight into a recycled buffer), and the blob's own
/// allocation is handed to the pool afterwards.
///
/// # Errors
///
/// [`VpnError::Malformed`] if any frame is not a valid IPv4 packet (the
/// whole batch is rejected, matching the single-packet path's per-record
/// verdict).
pub fn materialize_frames(pool: &BufferPool, frames: BatchFrames) -> Result<PacketBatch, VpnError> {
    let n = frames.len();
    let cap = frames.iter().map(<[u8]>::len).max().unwrap_or(0);
    let mut bufs = pool.take_many(n, cap).into_iter();
    let mut batch = PacketBatch::with_capacity(n);
    let mut bad = false;
    for frame in frames.iter() {
        let mut buf = bufs.next().expect("one buffer per frame");
        buf.extend_from_slice(frame);
        match Packet::from_vec_in(pool, buf) {
            Ok(pkt) => batch.push(pkt),
            Err(_) => {
                bad = true;
                break;
            }
        }
    }
    if bufs.len() > 0 {
        pool.give_many(bufs);
    }
    pool.give(frames.into_blob());
    if bad {
        Err(VpnError::Malformed("bad tunnelled packet"))
    } else {
        Ok(batch)
    }
}

/// One partition of the server's session state. See the module docs for
/// the invariants; [`crate::server::VpnServer`] embeds exactly one.
#[derive(Debug, Default)]
pub struct VpnShard {
    sessions: HashMap<u64, ServerSession>,
    policy: ConfigPolicy,
    pool: BufferPool,
}

impl VpnShard {
    /// An empty shard with its own buffer pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard's buffer pool (packets this shard materialises recycle
    /// through it).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    pub(crate) fn set_policy(&mut self, policy: ConfigPolicy) {
        self.policy = policy;
    }

    pub(crate) fn policy(&self) -> ConfigPolicy {
        self.policy
    }

    /// Adds a freshly established session to this shard.
    pub fn install(&mut self, session_id: u64, session: ServerSession) {
        self.sessions.insert(session_id, session);
    }

    /// Removes a session.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] if absent.
    pub fn remove(&mut self, session_id: u64) -> Result<(), VpnError> {
        self.sessions
            .remove(&session_id)
            .map(|_| ())
            .ok_or(VpnError::UnknownSession(session_id))
    }

    /// Detaches a session (replay window and channel state included) so
    /// the dispatcher can install it on another shard.
    pub fn extract(&mut self, session_id: u64) -> Option<ServerSession> {
        self.sessions.remove(&session_id)
    }

    /// Detaches `session_id` only while its replay window has never
    /// accepted a packet ([`DataChannel::replay_is_empty`]) — the
    /// steal-safety predicate of [`DispatchPolicy::Adaptive`]. A busy or
    /// unknown session stays put and `None` is returned.
    pub fn extract_if_idle(&mut self, session_id: u64) -> Option<ServerSession> {
        if self.sessions.get(&session_id)?.channel.replay_is_empty() {
            self.sessions.remove(&session_id)
        } else {
            None
        }
    }

    /// Looks up a session.
    pub fn session(&self, id: u64) -> Option<&ServerSession> {
        self.sessions.get(&id)
    }

    /// Session ids owned by this shard, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of sessions on this shard.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Config-policy gate shared by every data path: after the grace
    /// deadline only the required version may send; during grace, the
    /// previous version is also acceptable.
    fn checked_session(
        &mut self,
        session_id: u64,
        now_secs: u64,
    ) -> Result<&mut ServerSession, VpnError> {
        let policy = self.policy;
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or(VpnError::UnknownSession(session_id))?;
        let v = session.reported_config_version;
        let acceptable = if now_secs >= policy.grace_deadline_secs {
            v >= policy.required_version
        } else {
            v >= policy.previous_ok_version
        };
        if !acceptable {
            return Err(VpnError::StaleConfiguration {
                client: v,
                required: policy.required_version,
            });
        }
        Ok(session)
    }

    /// Opens a single `Data` record (policy + authentication + replay).
    ///
    /// # Errors
    ///
    /// Policy, session and channel failures.
    pub fn open_data(&mut self, record: &Record, now_secs: u64) -> Result<Vec<u8>, VpnError> {
        self.checked_session(record.session_id, now_secs)?
            .channel
            .open(record)
    }

    /// Opens a `DataBatch` record into frame handles (no per-frame copy).
    ///
    /// # Errors
    ///
    /// Policy, session and channel failures.
    pub fn open_data_batch(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<BatchFrames, VpnError> {
        self.checked_session(record.session_id, now_secs)?
            .channel
            .open_batch_frames(record)
    }

    /// Handles an authenticated ping (the client's config-version proof,
    /// §III-E step 9).
    ///
    /// # Errors
    ///
    /// Session and channel failures.
    pub fn handle_ping(&mut self, record: &Record) -> Result<PingMessage, VpnError> {
        let session = self
            .sessions
            .get_mut(&record.session_id)
            .ok_or(VpnError::UnknownSession(record.session_id))?;
        let payload = session.channel.open(record)?;
        let message = PingMessage::from_bytes(&payload)?;
        session.reported_config_version = message.config_version;
        Ok(message)
    }

    /// Handles one non-handshake record, producing the payload-level
    /// [`ServerEvent`] used by the single-threaded server.
    ///
    /// # Errors
    ///
    /// All authentication/policy failures; the caller drops the traffic.
    pub fn handle_record(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<ServerEvent, VpnError> {
        match record.opcode {
            Opcode::Data => Ok(ServerEvent::Data {
                session_id: record.session_id,
                payload: self.open_data(record, now_secs)?,
            }),
            Opcode::DataBatch => Ok(ServerEvent::DataBatch {
                session_id: record.session_id,
                frames: self.open_data_batch(record, now_secs)?,
            }),
            Opcode::Ping => Ok(ServerEvent::Ping {
                session_id: record.session_id,
                message: self.handle_ping(record)?,
            }),
            Opcode::Disconnect => {
                self.remove(record.session_id)?;
                Ok(ServerEvent::Disconnected {
                    session_id: record.session_id,
                })
            }
            Opcode::HandshakeInit | Opcode::HandshakeResp => {
                Err(VpnError::Malformed("handshake record on the data path"))
            }
        }
    }

    /// Handles one non-handshake record, producing the packet-level
    /// [`ShardEvent`] of the sharded datapath: tunnel payloads are
    /// materialised into this shard's pool.
    ///
    /// # Errors
    ///
    /// All authentication/policy failures, plus
    /// [`VpnError::Malformed`] for payloads that are not IPv4 packets.
    pub fn handle_record_delivery(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<ShardEvent, VpnError> {
        match record.opcode {
            Opcode::Data => {
                let payload = self.open_data(record, now_secs)?;
                // Zero-copy adoption: the decrypt's own allocation becomes
                // the pool-managed packet backing store.
                let packet = Packet::from_vec_in(&self.pool, payload)
                    .map_err(|_| VpnError::Malformed("bad tunnelled packet"))?;
                Ok(ShardEvent::Packet {
                    session_id: record.session_id,
                    packet,
                })
            }
            Opcode::DataBatch => {
                let frames = self.open_data_batch(record, now_secs)?;
                let batch = materialize_frames(&self.pool, frames)?;
                Ok(ShardEvent::Batch {
                    session_id: record.session_id,
                    batch,
                })
            }
            Opcode::Ping => Ok(ShardEvent::Ping {
                session_id: record.session_id,
                message: self.handle_ping(record)?,
            }),
            Opcode::Disconnect => {
                self.remove(record.session_id)?;
                Ok(ShardEvent::Disconnected {
                    session_id: record.session_id,
                })
            }
            Opcode::HandshakeInit | Opcode::HandshakeResp => {
                Err(VpnError::Malformed("handshake record on the data path"))
            }
        }
    }

    /// Seals a payload to a client on this shard.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_to_client(
        &mut self,
        session_id: u64,
        opcode: Opcode,
        payload: &[u8],
    ) -> Result<Record, VpnError> {
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or(VpnError::UnknownSession(session_id))?;
        Ok(session.channel.seal(opcode, session_id, payload))
    }

    /// Seals several payloads to a client as one `DataBatch` record.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_batch_to_client(
        &mut self,
        session_id: u64,
        payloads: &[&[u8]],
    ) -> Result<Record, VpnError> {
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or(VpnError::UnknownSession(session_id))?;
        Ok(session.channel.seal_batch(session_id, payloads))
    }

    /// Builds the periodic server ping for a session, carrying this
    /// shard's view of the config announcement.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn make_ping(&mut self, session_id: u64, now_ns: u64) -> Result<Record, VpnError> {
        let msg = PingMessage {
            config_version: self.policy.required_version,
            grace_period_secs: self.policy.grace_period_secs,
            timestamp_ns: now_ns,
        };
        self.seal_to_client(session_id, Opcode::Ping, &msg.to_bytes())
    }
}

/// A read-only snapshot of one session, fetched across the shard
/// boundary.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Authenticated client information.
    pub info: ClientInfo,
    /// Latest configuration version the client proved via ping.
    pub reported_config_version: u64,
}

enum ShardRequest {
    /// Process records (tagged with their input index) in order.
    Records {
        seq: u64,
        now_secs: u64,
        records: Vec<(u32, Record)>,
    },
    /// Adopt a freshly established session.
    Install {
        session_id: u64,
        session: Box<ServerSession>,
    },
    /// Replace the config policy.
    Policy(ConfigPolicy),
    /// Seal one payload to a client (also used for server pings).
    Seal {
        seq: u64,
        session_id: u64,
        opcode: Opcode,
        payload: Vec<u8>,
    },
    /// Seal several payloads as one batch record.
    SealBatch {
        seq: u64,
        session_id: u64,
        payloads: Vec<Vec<u8>>,
    },
    /// Snapshot one session.
    Query { seq: u64, session_id: u64 },
    /// Detach a session so it can migrate to another shard.
    Extract { seq: u64, session_id: u64 },
    /// Detach a session **only if** its replay window is still empty —
    /// the steal-safety predicate, evaluated authoritatively on the
    /// owning shard thread (the front-end's view of "fresh" could race
    /// a record the shard already accepted). Replies
    /// [`ReplyBody::Extracted`]`(None)` if the session is busy or gone,
    /// and the session stays put.
    ExtractIfIdle { seq: u64, session_id: u64 },
    /// Exit the worker loop.
    Shutdown,
}

enum ReplyBody {
    Records(Vec<(u32, Result<ShardEvent, VpnError>)>),
    Sealed(Result<Record, VpnError>),
    Session(Option<SessionSnapshot>),
    Extracted(Option<Box<ServerSession>>),
}

struct WorkerReply {
    seq: u64,
    body: ReplyBody,
}

fn worker_loop(
    mut shard: VpnShard,
    rx: crossbeam::channel::Receiver<ShardRequest>,
    tx: crossbeam::channel::UnboundedSender<WorkerReply>,
) {
    while let Ok(request) = rx.recv() {
        match request {
            ShardRequest::Records {
                seq,
                now_secs,
                records,
            } => {
                let results = records
                    .into_iter()
                    .map(|(idx, record)| (idx, shard.handle_record_delivery(&record, now_secs)))
                    .collect();
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Records(results),
                });
            }
            ShardRequest::Install {
                session_id,
                session,
            } => shard.install(session_id, *session),
            ShardRequest::Policy(policy) => shard.set_policy(policy),
            ShardRequest::Seal {
                seq,
                session_id,
                opcode,
                payload,
            } => {
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Sealed(shard.seal_to_client(session_id, opcode, &payload)),
                });
            }
            ShardRequest::SealBatch {
                seq,
                session_id,
                payloads,
            } => {
                let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Sealed(shard.seal_batch_to_client(session_id, &refs)),
                });
            }
            ShardRequest::Query { seq, session_id } => {
                let snapshot = shard.session(session_id).map(|s| SessionSnapshot {
                    info: s.info.clone(),
                    reported_config_version: s.reported_config_version,
                });
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Session(snapshot),
                });
            }
            ShardRequest::Extract { seq, session_id } => {
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Extracted(shard.extract(session_id).map(Box::new)),
                });
            }
            ShardRequest::ExtractIfIdle { seq, session_id } => {
                let _ = tx.send(WorkerReply {
                    seq,
                    body: ReplyBody::Extracted(shard.extract_if_idle(session_id).map(Box::new)),
                });
            }
            ShardRequest::Shutdown => break,
        }
    }
}

/// The sharded multi-worker VPN server: handshake front-end plus N
/// [`VpnShard`] worker threads. See the module docs for the routing
/// invariants and the re-merge ordering guarantee.
pub struct ShardedVpnServer {
    handshake: HandshakeConfig,
    suite: CipherSuite,
    meter: CycleMeter,
    cost: CostModel,
    rng: rand::rngs::StdRng,
    next_session_id: u64,
    policy: ConfigPolicy,
    txs: Vec<crossbeam::channel::UnboundedSender<ShardRequest>>,
    rx: crossbeam::channel::Receiver<WorkerReply>,
    /// Sending half of the shared reply channel, kept so
    /// [`ShardedVpnServer::resize_workers`] can spawn new worker threads
    /// at runtime (each worker holds its own clone).
    reply_tx: crossbeam::channel::UnboundedSender<WorkerReply>,
    joins: Vec<JoinHandle<()>>,
    /// Front-end registry: which sessions exist and which shard *currently*
    /// owns each (home shard at placement; load-aware migration may move
    /// a session later).
    session_shard: HashMap<u64, usize>,
    next_seq: u64,
    dispatch: DispatchPolicy,
    /// EWMA of dispatched payload bytes per shard.
    shard_load: Vec<f64>,
    /// EWMA of dispatched payload bytes per session.
    session_load: HashMap<u64, f64>,
    migrations: u64,
    /// The subset of `migrations` performed by the adaptive work-stealing
    /// pass (idle workers pulling steal-safe sessions).
    steals: u64,
}

impl std::fmt::Debug for ShardedVpnServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedVpnServer")
            .field("workers", &self.txs.len())
            .field("sessions", &self.session_shard.len())
            .field("required_version", &self.policy.required_version)
            .finish()
    }
}

impl ShardedVpnServer {
    /// Creates a server with `workers` shard threads (minimum 1) and the
    /// default [`DispatchPolicy::load_aware`] dispatcher.
    pub fn new(
        handshake: HandshakeConfig,
        suite: CipherSuite,
        meter: CycleMeter,
        cost: CostModel,
        rng_seed: u64,
        workers: usize,
    ) -> Self {
        Self::with_dispatch(
            handshake,
            suite,
            meter,
            cost,
            rng_seed,
            workers,
            DispatchPolicy::default(),
        )
    }

    /// Creates a server with an explicit dispatch policy.
    #[allow(clippy::too_many_arguments)]
    pub fn with_dispatch(
        handshake: HandshakeConfig,
        suite: CipherSuite,
        meter: CycleMeter,
        cost: CostModel,
        rng_seed: u64,
        workers: usize,
        dispatch: DispatchPolicy,
    ) -> Self {
        use rand::SeedableRng;
        let workers = workers.max(1);
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let mut txs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, join) = Self::spawn_worker(i, &reply_tx);
            txs.push(tx);
            joins.push(join);
        }
        ShardedVpnServer {
            handshake,
            suite,
            meter,
            cost,
            rng: rand::rngs::StdRng::seed_from_u64(rng_seed),
            next_session_id: 1,
            policy: ConfigPolicy::default(),
            txs,
            rx: reply_rx,
            reply_tx,
            joins,
            session_shard: HashMap::new(),
            next_seq: 0,
            dispatch,
            shard_load: vec![0.0; workers],
            session_load: HashMap::new(),
            migrations: 0,
            steals: 0,
        }
    }

    /// Spawns one worker thread feeding the shared reply channel.
    fn spawn_worker(
        index: usize,
        reply_tx: &crossbeam::channel::UnboundedSender<WorkerReply>,
    ) -> (
        crossbeam::channel::UnboundedSender<ShardRequest>,
        JoinHandle<()>,
    ) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let reply_tx = reply_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("vpn-shard-{index}"))
            .spawn(move || worker_loop(VpnShard::new(), rx, reply_tx))
            .expect("spawn shard worker");
        (tx, join)
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.txs.len()
    }

    /// Grows or shrinks the worker pool to `workers` threads online,
    /// returning how many sessions were migrated off retiring workers.
    ///
    /// Growing spawns fresh workers and replicates the current
    /// [`ConfigPolicy`] to each before any record can route there, so a
    /// new worker never sees a stale policy. Shrinking drains every
    /// session a retiring worker owns to its new home under the reduced
    /// count via the same blocking extract→install round-trip a
    /// load-aware migration uses (per-session record order is preserved),
    /// then shuts the retired threads down and joins them. Sessions on
    /// surviving workers keep their placement — the registry stays
    /// authoritative — so a resize never changes any record's outcome,
    /// only where it is computed.
    ///
    /// Must be called at a dispatch boundary (no batch in flight), which
    /// every front-end caller guarantees by construction.
    pub fn resize_workers(&mut self, workers: usize) -> usize {
        let new = workers.max(1);
        let old = self.txs.len();
        if new == old {
            return 0;
        }
        let mut moved = 0;
        if new > old {
            for i in old..new {
                let (tx, join) = Self::spawn_worker(i, &self.reply_tx);
                tx.send(ShardRequest::Policy(self.policy))
                    .expect("shard worker alive");
                self.txs.push(tx);
                self.joins.push(join);
            }
            self.shard_load.resize(new, 0.0);
        } else {
            // Retiring workers drain to their successors before exit: in
            // deterministic session order, move every session homed on a
            // doomed worker to its static home under the new count.
            let mut evicted: Vec<u64> = self
                .session_shard
                .iter()
                .filter(|&(_, &shard)| shard >= new)
                .map(|(&sid, _)| sid)
                .collect();
            evicted.sort_unstable();
            for sid in evicted {
                let from = self.session_shard[&sid];
                let to = (sid.wrapping_sub(1) % new as u64) as usize;
                if self.migrate(sid, from, to) {
                    moved += 1;
                }
            }
            for tx in self.txs.drain(new..) {
                let _ = tx.send(ShardRequest::Shutdown);
            }
            for join in self.joins.drain(new..) {
                let _ = join.join();
            }
            self.shard_load.truncate(new);
        }
        moved
    }

    /// The dispatch policy in force.
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// Sessions migrated by the dispatcher so far (load-aware imbalance
    /// moves **plus** adaptive steals — every steal is a migration).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Sessions pulled by idle workers in the adaptive work-stealing
    /// pass — always a subset of [`ShardedVpnServer::migrations`].
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// A session's *home* shard, `(s - 1) mod N` — its initial placement.
    fn home_shard(&self, session_id: u64) -> usize {
        (session_id.wrapping_sub(1) % self.txs.len() as u64) as usize
    }

    /// The shard *currently* owning `session_id` (invariant 1). Unknown
    /// sessions route to their home shard, which reports
    /// [`VpnError::UnknownSession`] — the same verdict the single-threaded
    /// server gives.
    pub fn shard_of(&self, session_id: u64) -> usize {
        self.session_shard
            .get(&session_id)
            .copied()
            .unwrap_or_else(|| self.home_shard(session_id))
    }

    fn send(&self, shard: usize, request: ShardRequest) {
        self.txs[shard].send(request).expect("shard worker alive");
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Blocks until `expect` replies arrived, returning them unordered
    /// (callers match on `seq` / embedded indices).
    fn collect_replies(&mut self, expect: usize) -> Vec<WorkerReply> {
        (0..expect)
            .map(|_| self.rx.recv().expect("shard worker alive"))
            .collect()
    }

    /// One blocking round-trip expecting a sealed record back.
    fn sealed_round_trip(
        &mut self,
        shard: usize,
        seq: u64,
        request: ShardRequest,
    ) -> Result<Record, VpnError> {
        self.send(shard, request);
        match self.collect_replies(1).pop() {
            Some(WorkerReply {
                seq: reply_seq,
                body: ReplyBody::Sealed(result),
            }) => {
                debug_assert_eq!(reply_seq, seq, "round-trips are strictly serialised");
                result
            }
            _ => unreachable!("seal requests produce sealed replies"),
        }
    }

    /// Dispatches every non-empty per-shard group and slots the replies
    /// back into `results` by input index.
    fn flush_groups(
        &mut self,
        groups: &mut [Vec<(u32, Record)>],
        now_secs: u64,
        results: &mut [Option<Result<ShardEvent, VpnError>>],
    ) {
        let mut outstanding = 0usize;
        for (shard, group) in groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            let seq = self.next_seq();
            let records = std::mem::take(group);
            self.send(
                shard,
                ShardRequest::Records {
                    seq,
                    now_secs,
                    records,
                },
            );
            outstanding += 1;
        }
        for reply in self.collect_replies(outstanding) {
            let ReplyBody::Records(items) = reply.body else {
                unreachable!("record requests produce record replies");
            };
            for (idx, result) in items {
                if let Ok(ShardEvent::Disconnected { session_id }) = &result {
                    self.session_shard.remove(session_id);
                    self.session_load.remove(session_id);
                }
                results[idx as usize] = Some(result);
            }
        }
    }

    /// Folds one dispatch's per-shard / per-session payload bytes into the
    /// load EWMAs (all entries decay, the dispatched ones gain).
    fn note_dispatch_loads(&mut self, shard_bytes: &[u64], session_bytes: &HashMap<u64, u64>) {
        for (load, &bytes) in self.shard_load.iter_mut().zip(shard_bytes) {
            *load = *load * (1.0 - LOAD_EWMA_ALPHA) + bytes as f64 * LOAD_EWMA_ALPHA;
        }
        for load in self.session_load.values_mut() {
            *load *= 1.0 - LOAD_EWMA_ALPHA;
        }
        for (&sid, &bytes) in session_bytes {
            // Only live sessions accrue load: a session disconnected in
            // this very dispatch was just dropped from the registry, and
            // records with bogus session ids (rejected as UnknownSession)
            // must not grow the map — it would otherwise leak one entry
            // per spoofed id.
            if self.session_shard.contains_key(&sid) {
                *self.session_load.entry(sid).or_insert(0.0) += bytes as f64 * LOAD_EWMA_ALPHA;
            }
        }
    }

    /// Load-aware rebalancing at a dispatch boundary: migrate up to the
    /// policy's budget of heavy sessions from the hottest shard to the
    /// coldest while the EWMA gap exceeds the imbalance threshold. A
    /// candidate must satisfy `2 * load <= gap`, which guarantees the gap
    /// strictly shrinks and the hot shard stays at least as loaded as the
    /// cold one — so a single dominant session (load == gap) never moves,
    /// and the dispatcher cannot ping-pong it between shards.
    fn rebalance(&mut self) {
        let (imbalance_bytes, max_migrations, adaptive) = match self.dispatch {
            DispatchPolicy::Static => return,
            DispatchPolicy::LoadAware {
                imbalance_bytes,
                max_migrations_per_dispatch,
            } => (imbalance_bytes as f64, max_migrations_per_dispatch, false),
            // The adaptive threshold is the measured mean per-shard
            // service rate (the byte EWMAs *are* the rate proxy: bytes
            // per dispatch with exponential decay), floored at one MTU
            // packet; the migration budget is one per worker —
            // structural, not tuned.
            DispatchPolicy::Adaptive => {
                let mean =
                    self.shard_load.iter().sum::<f64>() / self.shard_load.len().max(1) as f64;
                (mean.max(ADAPTIVE_MIN_IMBALANCE), self.txs.len(), true)
            }
        };
        if self.txs.len() < 2 {
            return;
        }
        for _ in 0..max_migrations {
            let (mut hot, mut cold) = (0usize, 0usize);
            for s in 1..self.shard_load.len() {
                if self.shard_load[s] > self.shard_load[hot] {
                    hot = s;
                }
                if self.shard_load[s] < self.shard_load[cold] {
                    cold = s;
                }
            }
            let gap = self.shard_load[hot] - self.shard_load[cold];
            if gap <= imbalance_bytes {
                break;
            }
            // Heaviest movable session on the hot shard; deterministic
            // tie-break on the lowest session id.
            let candidate = self
                .session_shard
                .iter()
                .filter(|&(_, &shard)| shard == hot)
                .map(|(&sid, _)| (sid, self.session_load.get(&sid).copied().unwrap_or(0.0)))
                .filter(|&(_, load)| load > 0.0 && 2.0 * load <= gap)
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
            let Some((sid, load)) = candidate else {
                break;
            };
            if self.migrate(sid, hot, cold) {
                self.shard_load[hot] -= load;
                self.shard_load[cold] += load;
            }
        }
        if adaptive {
            self.steal_idle();
        }
    }

    /// The adaptive work-stealing pass, run after the migration pass at
    /// the same dispatch boundary: while some worker is idle (its byte
    /// EWMA has decayed to nothing) and the busiest worker holds more
    /// sessions, the idle worker pulls one *steal-safe* session — one
    /// that has never accepted a data packet, so no replay-window or
    /// re-ordering state moves with it. The front-end nominates fresh
    /// sessions (zero load EWMA, deterministic lowest-id tie-break) and
    /// the owning shard confirms the predicate authoritatively
    /// ([`ShardRequest::ExtractIfIdle`]): a session the shard has
    /// already fed stays put and the nomination is dropped. At most one
    /// steal per worker per dispatch — a structural bound, not a knob.
    fn steal_idle(&mut self) {
        if self.txs.len() < 2 {
            return;
        }
        let mut counts = vec![0usize; self.txs.len()];
        for &shard in self.session_shard.values() {
            counts[shard] += 1;
        }
        let mut rejected: Vec<u64> = Vec::new();
        let mut stole = vec![false; self.txs.len()];
        for _ in 0..self.txs.len() {
            let max_count = counts.iter().copied().max().unwrap_or(0);
            let Some(thief) = (0..self.txs.len()).find(|&s| {
                !stole[s] && self.shard_load[s] < ADAPTIVE_IDLE_EWMA && counts[s] < max_count
            }) else {
                return;
            };
            let victim = (0..self.txs.len())
                .max_by(|&a, &b| {
                    counts[a]
                        .cmp(&counts[b])
                        .then(self.shard_load[a].total_cmp(&self.shard_load[b]))
                })
                .expect("at least two shards");
            if victim == thief
                || counts[victim] <= counts[thief] + 1
                || self.shard_load[victim] < ADAPTIVE_IDLE_EWMA
            {
                return;
            }
            let candidate = self
                .session_shard
                .iter()
                .filter(|&(sid, &shard)| shard == victim && !rejected.contains(sid))
                .map(|(&sid, _)| sid)
                .filter(|sid| self.session_load.get(sid).copied().unwrap_or(0.0) == 0.0)
                .min();
            let Some(sid) = candidate else {
                return;
            };
            let seq = self.next_seq();
            self.send(
                victim,
                ShardRequest::ExtractIfIdle {
                    seq,
                    session_id: sid,
                },
            );
            match self.collect_replies(1).pop() {
                Some(WorkerReply {
                    body: ReplyBody::Extracted(Some(session)),
                    ..
                }) => {
                    self.send(
                        thief,
                        ShardRequest::Install {
                            session_id: sid,
                            session,
                        },
                    );
                    self.session_shard.insert(sid, thief);
                    counts[victim] -= 1;
                    counts[thief] += 1;
                    stole[thief] = true;
                    self.migrations += 1;
                    self.steals += 1;
                }
                Some(WorkerReply {
                    body: ReplyBody::Extracted(None),
                    ..
                }) => {
                    // The shard vetoed the steal (the session already
                    // accepted traffic the front-end has not accounted
                    // yet); never re-nominate it this pass.
                    rejected.push(sid);
                }
                _ => unreachable!("extract requests produce extracted replies"),
            }
        }
    }

    /// Moves one session's state from `from` to `to`: a blocking extract
    /// round-trip (so the old shard has drained every earlier record of
    /// the session) followed by an install enqueued ahead of any later
    /// one. Per-session record order is therefore preserved across the
    /// migration. Returns whether the session actually moved (callers
    /// must not shift load accounting otherwise).
    fn migrate(&mut self, session_id: u64, from: usize, to: usize) -> bool {
        let seq = self.next_seq();
        self.send(from, ShardRequest::Extract { seq, session_id });
        match self.collect_replies(1).pop() {
            Some(WorkerReply {
                body: ReplyBody::Extracted(Some(session)),
                ..
            }) => {
                self.send(
                    to,
                    ShardRequest::Install {
                        session_id,
                        session,
                    },
                );
                self.session_shard.insert(session_id, to);
                self.migrations += 1;
                true
            }
            Some(WorkerReply {
                body: ReplyBody::Extracted(None),
                ..
            }) => {
                // The registry said the session lived here; it is gone on
                // the shard too, so drop it from the front-end maps.
                self.session_shard.remove(&session_id);
                self.session_load.remove(&session_id);
                false
            }
            _ => unreachable!("extract requests produce extracted replies"),
        }
    }

    /// Handles a whole batch of wire records — from any mix of clients —
    /// and returns one result per record **in input order** (the re-merge
    /// guarantee in the module docs).
    pub fn handle_records(
        &mut self,
        records: Vec<Record>,
        now_secs: u64,
    ) -> Vec<Result<ShardEvent, VpnError>> {
        // Dispatch boundary: rebalance before any of this batch's records
        // are assigned, so a session's whole batch lands on one shard.
        self.rebalance();
        let n = records.len();
        let mut results: Vec<Option<Result<ShardEvent, VpnError>>> = (0..n).map(|_| None).collect();
        let mut groups: Vec<Vec<(u32, Record)>> = vec![Vec::new(); self.txs.len()];
        let mut shard_bytes = vec![0u64; self.txs.len()];
        let mut session_bytes: HashMap<u64, u64> = HashMap::new();
        for (i, record) in records.into_iter().enumerate() {
            match record.opcode {
                Opcode::HandshakeInit => {
                    // Invariant 3: drain shard work queued so far, then
                    // run the handshake on the front-end.
                    self.flush_groups(&mut groups, now_secs, &mut results);
                    results[i] = Some(self.handle_handshake(&record, now_secs));
                }
                Opcode::HandshakeResp => {
                    results[i] = Some(Err(VpnError::Malformed("server received HandshakeResp")));
                }
                _ => {
                    let shard = self.shard_of(record.session_id);
                    shard_bytes[shard] += record.payload.len() as u64;
                    *session_bytes.entry(record.session_id).or_insert(0) +=
                        record.payload.len() as u64;
                    groups[shard].push((i as u32, record));
                }
            }
        }
        self.flush_groups(&mut groups, now_secs, &mut results);
        self.note_dispatch_loads(&shard_bytes, &session_bytes);
        results
            .into_iter()
            .map(|r| r.expect("every record produces a result"))
            .collect()
    }

    /// Handles one wire record (the single-record convenience over
    /// [`ShardedVpnServer::handle_records`]).
    ///
    /// # Errors
    ///
    /// All authentication/policy failures; the caller drops the traffic.
    pub fn handle_record(
        &mut self,
        record: &Record,
        now_secs: u64,
    ) -> Result<ShardEvent, VpnError> {
        self.handle_records(vec![record.clone()], now_secs)
            .pop()
            .expect("one result for one record")
    }

    fn handle_handshake(&mut self, record: &Record, now_secs: u64) -> Result<ShardEvent, VpnError> {
        let hello = ClientHello::from_bytes(&record.payload)?;
        let session_id = self.next_session_id;
        let (server_hello, keys, info) = server_respond(
            &self.handshake,
            &hello,
            session_id,
            self.policy.required_version,
            now_secs,
            &mut self.rng,
        )?;
        self.next_session_id += 1;
        let channel = DataChannel::server(&keys, self.suite, self.meter.clone(), self.cost.clone());
        let shard = self.shard_of(session_id);
        self.send(
            shard,
            ShardRequest::Install {
                session_id,
                session: Box::new(ServerSession {
                    info: info.clone(),
                    reported_config_version: info.config_version,
                    channel,
                }),
            },
        );
        self.session_shard.insert(session_id, shard);
        Ok(ShardEvent::Established {
            session_id,
            response: Record {
                opcode: Opcode::HandshakeResp,
                session_id,
                packet_id: 0,
                payload: server_hello.to_bytes(),
            },
            info,
        })
    }

    /// Announces a new required configuration version with a grace period
    /// (§III-E); the policy is replicated to every shard.
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32, now_secs: u64) {
        self.policy = ConfigPolicy {
            previous_ok_version: self.policy.required_version,
            required_version: version,
            grace_deadline_secs: now_secs + grace_period_secs as u64,
            grace_period_secs,
        };
        let policy = self.policy;
        for shard in 0..self.txs.len() {
            self.send(shard, ShardRequest::Policy(policy));
        }
    }

    /// The currently required configuration version.
    pub fn required_config_version(&self) -> u64 {
        self.policy.required_version
    }

    /// Seals a payload to a client (routed to the owning shard).
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_to_client(
        &mut self,
        session_id: u64,
        opcode: Opcode,
        payload: Vec<u8>,
    ) -> Result<Record, VpnError> {
        let shard = self.shard_of(session_id);
        let seq = self.next_seq();
        self.sealed_round_trip(
            shard,
            seq,
            ShardRequest::Seal {
                seq,
                session_id,
                opcode,
                payload,
            },
        )
    }

    /// Seals several payloads to a client as one `DataBatch` record.
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn seal_batch_to_client(
        &mut self,
        session_id: u64,
        payloads: Vec<Vec<u8>>,
    ) -> Result<Record, VpnError> {
        let shard = self.shard_of(session_id);
        let seq = self.next_seq();
        self.sealed_round_trip(
            shard,
            seq,
            ShardRequest::SealBatch {
                seq,
                session_id,
                payloads,
            },
        )
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`VpnError::UnknownSession`] for bad ids.
    pub fn make_ping(&mut self, session_id: u64, now_ns: u64) -> Result<Record, VpnError> {
        let msg = PingMessage {
            config_version: self.policy.required_version,
            grace_period_secs: self.policy.grace_period_secs,
            timestamp_ns: now_ns,
        };
        self.seal_to_client(session_id, Opcode::Ping, msg.to_bytes())
    }

    /// Fetches a snapshot of one session from its owning shard.
    pub fn session_snapshot(&mut self, session_id: u64) -> Option<SessionSnapshot> {
        if !self.session_shard.contains_key(&session_id) {
            return None;
        }
        let shard = self.shard_of(session_id);
        let seq = self.next_seq();
        self.send(shard, ShardRequest::Query { seq, session_id });
        match self.collect_replies(1).pop() {
            Some(WorkerReply {
                body: ReplyBody::Session(snapshot),
                ..
            }) => snapshot,
            _ => unreachable!("query requests produce session replies"),
        }
    }

    /// Active session ids, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.session_shard.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of connected clients.
    pub fn session_count(&self) -> usize {
        self.session_shard.len()
    }
}

impl Drop for ShardedVpnServer {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(ShardRequest::Shutdown);
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::Certificate;
    use crate::channel::SessionKeys;
    use crate::handshake::{client_complete, client_start};
    use crate::PROTOCOL_V1;
    use endbox_crypto::schnorr::SigningKey;
    use rand::SeedableRng;

    struct Harness {
        server: ShardedVpnServer,
        client_cfg: HandshakeConfig,
        rng: rand::rngs::StdRng,
    }

    fn harness(workers: usize) -> Harness {
        harness_with(workers, DispatchPolicy::default())
    }

    fn harness_with(workers: usize, dispatch: DispatchPolicy) -> Harness {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let ca = SigningKey::generate(&mut rng);
        let server_key = SigningKey::generate(&mut rng);
        let client_key = SigningKey::generate(&mut rng);
        let server_cert =
            Certificate::issue("server", server_key.verifying_key(), 1 << 40, &ca, &mut rng);
        let client_cert = Certificate::issue(
            "client-1",
            client_key.verifying_key(),
            1 << 40,
            &ca,
            &mut rng,
        );
        let server = ShardedVpnServer::with_dispatch(
            HandshakeConfig {
                identity: server_key,
                certificate: server_cert,
                ca_public: ca.verifying_key(),
                min_version: PROTOCOL_V1,
            },
            CipherSuite::Aes128CbcHmac,
            CycleMeter::new(),
            CostModel::calibrated(),
            1,
            workers,
            dispatch,
        );
        let client_cfg = HandshakeConfig {
            identity: client_key,
            certificate: client_cert,
            ca_public: ca.verifying_key(),
            min_version: PROTOCOL_V1,
        };
        Harness {
            server,
            client_cfg,
            rng,
        }
    }

    fn connect(h: &mut Harness, config_version: u64) -> (u64, DataChannel) {
        let (hello, state) = client_start(&h.client_cfg, PROTOCOL_V1, config_version, &mut h.rng);
        let record = Record {
            opcode: Opcode::HandshakeInit,
            session_id: 0,
            packet_id: 0,
            payload: hello.to_bytes(),
        };
        let event = h.server.handle_record(&record, 0).unwrap();
        let ShardEvent::Established {
            session_id,
            response,
            ..
        } = event
        else {
            panic!("expected Established");
        };
        let shello = crate::handshake::ServerHello::from_bytes(&response.payload).unwrap();
        let keys: SessionKeys = client_complete(&h.client_cfg, &state, &shello, 0).unwrap();
        let channel = DataChannel::client(
            &keys,
            CipherSuite::Aes128CbcHmac,
            CycleMeter::new(),
            CostModel::calibrated(),
        );
        (session_id, channel)
    }

    #[test]
    fn sessions_round_robin_across_shards() {
        let mut h = harness(4);
        let mut sids = Vec::new();
        for _ in 0..8 {
            sids.push(connect(&mut h, 1).0);
        }
        assert_eq!(h.server.session_count(), 8);
        let shards: Vec<usize> = sids.iter().map(|&s| h.server.shard_of(s)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn data_roundtrip_and_replay_on_any_worker_count() {
        for workers in [1, 2, 4] {
            let mut h = harness(workers);
            let (sid, mut chan) = connect(&mut h, 1);
            // A well-formed tunnelled IP packet.
            let pkt = Packet::udp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                std::net::Ipv4Addr::new(10, 0, 1, 1),
                1,
                2,
                b"tunnelled",
            );
            let rec = chan.seal(Opcode::Data, sid, pkt.bytes());
            match h.server.handle_record(&rec, 1).unwrap() {
                ShardEvent::Packet { session_id, packet } => {
                    assert_eq!(session_id, sid);
                    assert_eq!(packet.bytes(), pkt.bytes());
                }
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(
                h.server.handle_record(&rec, 1).unwrap_err(),
                VpnError::Replay,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn batched_records_from_many_clients_remerge_in_input_order() {
        let mut h = harness(4);
        let mut clients: Vec<(u64, DataChannel)> = (0..6).map(|_| connect(&mut h, 1)).collect();
        let mk = |i: u8| {
            Packet::udp(
                std::net::Ipv4Addr::new(10, 0, 0, i),
                std::net::Ipv4Addr::new(10, 0, 1, 1),
                1,
                2,
                &[i; 8],
            )
        };
        // Interleave batches from all clients in one call.
        let mut records = Vec::new();
        let mut expected_sids = Vec::new();
        for round in 0..3u8 {
            for (sid, chan) in clients.iter_mut() {
                let pkts = [mk(round * 2 + 1), mk(round * 2 + 2)];
                let refs: Vec<&[u8]> = pkts.iter().map(Packet::bytes).collect();
                records.push(chan.seal_batch(*sid, &refs));
                expected_sids.push(*sid);
            }
        }
        let results = h.server.handle_records(records, 1);
        assert_eq!(results.len(), expected_sids.len());
        for (result, want_sid) in results.into_iter().zip(expected_sids) {
            match result.unwrap() {
                ShardEvent::Batch { session_id, batch } => {
                    assert_eq!(session_id, want_sid, "results must stay in input order");
                    assert_eq!(batch.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn policy_broadcast_blocks_stale_clients_on_all_shards() {
        let mut h = harness(3);
        let mut clients: Vec<(u64, DataChannel)> = (0..3).map(|_| connect(&mut h, 1)).collect();
        h.server.announce_config(2, 0, 100);
        assert_eq!(h.server.required_config_version(), 2);
        for (sid, chan) in clients.iter_mut() {
            let rec = chan.seal(Opcode::Data, *sid, b"stale");
            assert!(matches!(
                h.server.handle_record(&rec, 101),
                Err(VpnError::StaleConfiguration { .. })
            ));
        }
    }

    #[test]
    fn ping_updates_snapshot_and_reenables_traffic() {
        let mut h = harness(2);
        let (sid, mut chan) = connect(&mut h, 1);
        h.server.announce_config(2, 0, 100);
        let ping = PingMessage {
            config_version: 2,
            grace_period_secs: 0,
            timestamp_ns: 0,
        };
        let rec = chan.seal(Opcode::Ping, sid, &ping.to_bytes());
        match h.server.handle_record(&rec, 101).unwrap() {
            ShardEvent::Ping { message, .. } => assert_eq!(message.config_version, 2),
            other => panic!("unexpected {other:?}"),
        }
        let snap = h.server.session_snapshot(sid).unwrap();
        assert_eq!(snap.reported_config_version, 2);
        let pkt = Packet::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"fresh",
        );
        let rec = chan.seal(Opcode::Data, sid, pkt.bytes());
        assert!(matches!(
            h.server.handle_record(&rec, 102),
            Ok(ShardEvent::Packet { .. })
        ));
    }

    #[test]
    fn disconnect_updates_front_end_registry() {
        let mut h = harness(2);
        let (sid, _) = connect(&mut h, 1);
        let rec = Record {
            opcode: Opcode::Disconnect,
            session_id: sid,
            packet_id: 0,
            payload: vec![],
        };
        h.server.handle_record(&rec, 1).unwrap();
        assert_eq!(h.server.session_count(), 0);
        assert!(h.server.session_snapshot(sid).is_none());
    }

    #[test]
    fn server_sealed_ping_opens_at_client() {
        let mut h = harness(2);
        let (sid, mut chan) = connect(&mut h, 1);
        h.server.announce_config(7, 60, 0);
        let rec = h.server.make_ping(sid, 42).unwrap();
        let payload = chan.open(&rec).unwrap();
        let msg = PingMessage::from_bytes(&payload).unwrap();
        assert_eq!(msg.config_version, 7);
        assert_eq!(msg.grace_period_secs, 60);
    }

    /// Drives `rounds` of skewed traffic: each `(client, batch)` entry in
    /// `heavy` seals a `batch`-packet record per round, every other client
    /// one small record, all through one `handle_records` dispatch.
    fn skewed_rounds(
        h: &mut Harness,
        clients: &mut [(u64, DataChannel)],
        heavy: &[(usize, usize)],
        rounds: usize,
    ) {
        for round in 0..rounds {
            let mut records = Vec::new();
            for (i, (sid, chan)) in clients.iter_mut().enumerate() {
                let pkt = Packet::udp(
                    std::net::Ipv4Addr::new(10, 0, 0, (i + 1) as u8),
                    std::net::Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    2,
                    &[round as u8; 64],
                );
                if let Some(&(_, batch)) = heavy.iter().find(|&&(c, _)| c == i) {
                    let refs: Vec<&[u8]> = (0..batch).map(|_| pkt.bytes()).collect();
                    records.push(chan.seal_batch(*sid, &refs));
                } else {
                    records.push(chan.seal(Opcode::Data, *sid, pkt.bytes()));
                }
            }
            for result in h.server.handle_records(records, 1) {
                result.expect("all traffic is well-formed");
            }
        }
    }

    #[test]
    fn load_aware_dispatcher_migrates_colliding_heavy_sessions() {
        // Sessions 1 and 5 both live on shard 0 of a 4-worker server
        // (home shard (sid-1) mod 4 = 0). Both are heavy: the dispatcher
        // must move one of them off the hot shard — and the session keeps
        // working (channel state, replay window) after the move.
        let mut h = harness_with(
            4,
            DispatchPolicy::LoadAware {
                imbalance_bytes: 2_000,
                max_migrations_per_dispatch: 2,
            },
        );
        let mut clients: Vec<(u64, DataChannel)> = (0..8).map(|_| connect(&mut h, 1)).collect();
        assert_eq!(h.server.shard_of(1), 0);
        assert_eq!(h.server.shard_of(5), 0);
        skewed_rounds(&mut h, &mut clients, &[(0, 24), (4, 12)], 6);
        assert!(h.server.migrations() > 0, "sustained skew must migrate");
        assert!(
            h.server.shard_of(1) != 0 || h.server.shard_of(5) != 0,
            "one of the colliding heavy sessions must have moved off shard 0"
        );
        // The migrated session's replay window travelled with it.
        let (sid, chan) = &mut clients[if h.server.shard_of(1) != 0 { 0 } else { 4 }];
        let pkt = Packet::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"post-migration",
        );
        let rec = chan.seal(Opcode::Data, *sid, pkt.bytes());
        assert!(matches!(
            h.server.handle_record(&rec, 1),
            Ok(ShardEvent::Packet { .. })
        ));
        assert_eq!(
            h.server.handle_record(&rec, 1).unwrap_err(),
            VpnError::Replay
        );
    }

    #[test]
    fn static_policy_never_migrates() {
        let mut h = harness_with(4, DispatchPolicy::Static);
        let mut clients: Vec<(u64, DataChannel)> = (0..8).map(|_| connect(&mut h, 1)).collect();
        skewed_rounds(&mut h, &mut clients, &[(0, 24), (4, 12)], 6);
        assert_eq!(h.server.migrations(), 0);
        for (i, (sid, _)) in clients.iter().enumerate() {
            assert_eq!(h.server.shard_of(*sid), i % 4, "affinity must be fixed");
        }
    }

    #[test]
    fn uniform_load_does_not_migrate_under_load_aware_dispatch() {
        let mut h = harness_with(4, DispatchPolicy::default());
        let mut clients: Vec<(u64, DataChannel)> = (0..8).map(|_| connect(&mut h, 1)).collect();
        skewed_rounds(&mut h, &mut clients, &[], 6);
        assert_eq!(h.server.migrations(), 0, "balanced shards must stay put");
    }

    #[test]
    fn single_dominant_session_never_ping_pongs() {
        // One session carries essentially all traffic: migrating it can
        // never reduce the imbalance (it just swaps hot and cold), so the
        // `2 * load <= gap` filter must keep it pinned — no per-dispatch
        // extract/install churn.
        let mut h = harness_with(
            4,
            DispatchPolicy::LoadAware {
                imbalance_bytes: 500,
                max_migrations_per_dispatch: 2,
            },
        );
        let mut clients: Vec<(u64, DataChannel)> = (0..8).map(|_| connect(&mut h, 1)).collect();
        skewed_rounds(&mut h, &mut clients, &[(0, 24)], 6);
        // Co-located light sessions may rebalance away once, then the
        // assignment must be stable: further rounds add no migrations.
        let settled = h.server.migrations();
        skewed_rounds(&mut h, &mut clients, &[(0, 24)], 6);
        assert_eq!(
            h.server.migrations(),
            settled,
            "a dominant session must not ping-pong between shards"
        );
        assert_eq!(h.server.shard_of(1), 0, "it stays on its home shard");
    }

    #[test]
    fn bogus_and_disconnected_sessions_leave_no_load_entries() {
        let mut h = harness_with(2, DispatchPolicy::default());
        let (sid, mut chan) = connect(&mut h, 1);
        let pkt = Packet::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"traffic",
        );
        // A record for a session that never existed is rejected — and must
        // not grow the dispatcher's load map (one entry per spoofed id
        // would be an unbounded leak).
        let bogus = Record {
            opcode: Opcode::Data,
            session_id: 999,
            packet_id: 1,
            payload: vec![0xee; 120],
        };
        let data = chan.seal(Opcode::Data, sid, pkt.bytes());
        let disconnect = Record {
            opcode: Opcode::Disconnect,
            session_id: sid,
            packet_id: 0,
            payload: vec![],
        };
        // Data + Disconnect for the same session in ONE dispatch: the load
        // accounting after the flush must not resurrect the removed entry.
        let results = h.server.handle_records(vec![bogus, data, disconnect], 1);
        assert_eq!(
            results[0].as_ref().unwrap_err(),
            &VpnError::UnknownSession(999)
        );
        assert!(matches!(results[1], Ok(ShardEvent::Packet { .. })));
        assert!(matches!(results[2], Ok(ShardEvent::Disconnected { .. })));
        assert!(
            !h.server.session_load.contains_key(&999),
            "spoofed session ids must not leak load entries"
        );
        assert!(
            !h.server.session_load.contains_key(&sid),
            "disconnect in the same dispatch must not resurrect the entry"
        );
    }

    #[test]
    fn materialize_frames_is_one_copy_and_recycles() {
        let pool = BufferPool::new();
        let keys = SessionKeys::derive(&[7u8; 32], &[1u8; 32], &[2u8; 32]);
        let meter = CycleMeter::new();
        let cost = CostModel::calibrated();
        let mut c = DataChannel::client(
            &keys,
            CipherSuite::Aes128CbcHmac,
            meter.clone(),
            cost.clone(),
        );
        let mut s = DataChannel::server(&keys, CipherSuite::Aes128CbcHmac, meter, cost);
        let pkts: Vec<Packet> = (0..4)
            .map(|i| {
                Packet::udp(
                    std::net::Ipv4Addr::new(10, 0, 0, 1),
                    std::net::Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    i + 1,
                    &[i as u8; 100],
                )
            })
            .collect();
        let refs: Vec<&[u8]> = pkts.iter().map(Packet::bytes).collect();
        let rec = c.seal_batch(5, &refs);
        let frames = s.open_batch_frames(&rec).unwrap();
        let batch = materialize_frames(&pool, frames).unwrap();
        assert_eq!(batch.len(), 4);
        for (got, want) in batch.iter().zip(&pkts) {
            assert_eq!(got.bytes(), want.bytes());
        }
        let stats = pool.stats();
        assert_eq!(stats.batched_ops, 1, "one take_many for the whole batch");
        // Dropping the batch returns every buffer (plus the adopted blob
        // was already given).
        drop(batch);
        assert_eq!(pool.stats().returned, 5);
    }

    #[test]
    fn malformed_frame_rejects_whole_batch() {
        let pool = BufferPool::new();
        let keys = SessionKeys::derive(&[7u8; 32], &[1u8; 32], &[2u8; 32]);
        let meter = CycleMeter::new();
        let cost = CostModel::calibrated();
        let mut c = DataChannel::client(
            &keys,
            CipherSuite::Aes128CbcHmac,
            meter.clone(),
            cost.clone(),
        );
        let mut s = DataChannel::server(&keys, CipherSuite::Aes128CbcHmac, meter, cost);
        let good = Packet::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"ok",
        );
        let rec = c.seal_batch(5, &[good.bytes(), b"not an ip packet"]);
        let frames = s.open_batch_frames(&rec).unwrap();
        assert_eq!(
            materialize_frames(&pool, frames),
            Err(VpnError::Malformed("bad tunnelled packet"))
        );
    }
}
