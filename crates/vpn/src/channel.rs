//! The data channel: authenticated encryption of tunnel payloads.
//!
//! Suite choices reproduce the paper's options: AES-128-CBC + HMAC-SHA256
//! (OpenVPN's configuration in the evaluation), integrity-only protection
//! for the ISP scenario ("AES-128-CBC packet encryption is optional …
//! the fact that egress traffic is analysed by Click needs to be ensured
//! by applying integrity protection", §IV-A), and a payload-sampled mode
//! used by bulk scalability simulations (full cycle cost charged, payload
//! bytes not individually encrypted — see DESIGN.md §4).

use crate::error::VpnError;
use crate::proto::{Opcode, Record};
use crate::replay::ReplayWindow;
use endbox_crypto::aes::Aes128;
use endbox_crypto::hmac::{hkdf, HmacSha256};
use endbox_crypto::modes::{cbc_decrypt, cbc_encrypt};
use endbox_netsim::cost::{CostModel, CycleMeter};

/// Data-channel protection level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherSuite {
    /// AES-128-CBC encryption + HMAC-SHA256 (enterprise default).
    #[default]
    Aes128CbcHmac,
    /// HMAC-SHA256 only; payload travels in clear (ISP mode, §IV-A).
    IntegrityOnly,
    /// Simulation-only: MAC over a payload sample, full crypto cycle cost
    /// charged. Keeps bulk experiments fast without changing framing.
    SampledPayload,
}

/// Keys for one direction of a session.
#[derive(Clone)]
pub struct DirectionKeys {
    /// AES-128 encryption key.
    pub enc: [u8; 16],
    /// HMAC key.
    pub mac: [u8; 32],
}

impl std::fmt::Debug for DirectionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DirectionKeys { <redacted> }")
    }
}

/// Both directions of a session.
#[derive(Debug, Clone)]
pub struct SessionKeys {
    /// Client-to-server keys.
    pub client_to_server: DirectionKeys,
    /// Server-to-client keys.
    pub server_to_client: DirectionKeys,
}

impl SessionKeys {
    /// Derives directional keys from the X25519 shared secret and both
    /// handshake nonces.
    pub fn derive(shared: &[u8; 32], client_nonce: &[u8; 32], server_nonce: &[u8; 32]) -> Self {
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(client_nonce);
        salt.extend_from_slice(server_nonce);
        let c2s_enc: [u8; 16] = hkdf(&salt, shared, b"endbox c2s enc");
        let c2s_mac: [u8; 32] = hkdf(&salt, shared, b"endbox c2s mac");
        let s2c_enc: [u8; 16] = hkdf(&salt, shared, b"endbox s2c enc");
        let s2c_mac: [u8; 32] = hkdf(&salt, shared, b"endbox s2c mac");
        SessionKeys {
            client_to_server: DirectionKeys {
                enc: c2s_enc,
                mac: c2s_mac,
            },
            server_to_client: DirectionKeys {
                enc: s2c_enc,
                mac: s2c_mac,
            },
        }
    }
}

const TAG_LEN: usize = 32;
const IV_LEN: usize = 16;

/// The decoded view of a [`Opcode::DataBatch`] record: the decrypted blob
/// plus the byte range of each frame inside it.
///
/// Produced by [`DataChannel::open_batch_frames`] with **one copy total**
/// (the decrypt itself): frames are offset/length handles into the blob,
/// not per-frame `Vec`s, so callers materialise packets straight from the
/// slices (e.g. into pool-recycled buffers) in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFrames {
    blob: Vec<u8>,
    ranges: Vec<std::ops::Range<usize>>,
}

impl BatchFrames {
    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if the batch carries no frames.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The bytes of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn frame(&self, i: usize) -> &[u8] {
        &self.blob[self.ranges[i].clone()]
    }

    /// Iterates over the frames in batch order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.ranges.iter().map(|r| &self.blob[r.clone()])
    }

    /// Total frame bytes (excluding framing overhead).
    pub fn total_bytes(&self) -> usize {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Copies every frame out into owned vectors (test/diagnostic
    /// convenience; the datapath materialises straight from the frame
    /// slices instead).
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        self.iter().map(<[u8]>::to_vec).collect()
    }

    /// Consumes the view, returning the decrypted blob so callers can
    /// recycle its allocation (e.g. hand it to a buffer pool).
    pub fn into_blob(self) -> Vec<u8> {
        self.blob
    }
}

/// One endpoint's view of an established data channel.
///
/// The AES key schedules are expanded **once per direction** at channel
/// construction and cached (`send_aes`/`recv_aes`): the session keys are
/// fixed for the channel's lifetime, so `seal`/`open` must never re-run
/// the 10-round key expansion on the per-record hot path.
#[derive(Debug)]
pub struct DataChannel {
    suite: CipherSuite,
    send: DirectionKeys,
    recv: DirectionKeys,
    send_aes: Aes128,
    recv_aes: Aes128,
    next_send_id: u64,
    replay: ReplayWindow,
    meter: CycleMeter,
    cost: CostModel,
}

impl DataChannel {
    /// Client-side channel (sends with client-to-server keys).
    pub fn client(
        keys: &SessionKeys,
        suite: CipherSuite,
        meter: CycleMeter,
        cost: CostModel,
    ) -> Self {
        let send = keys.client_to_server.clone();
        let recv = keys.server_to_client.clone();
        DataChannel {
            suite,
            send_aes: Aes128::new(&send.enc),
            recv_aes: Aes128::new(&recv.enc),
            send,
            recv,
            next_send_id: 1,
            replay: ReplayWindow::new(),
            meter,
            cost,
        }
    }

    /// Server-side channel (sends with server-to-client keys).
    pub fn server(
        keys: &SessionKeys,
        suite: CipherSuite,
        meter: CycleMeter,
        cost: CostModel,
    ) -> Self {
        let send = keys.server_to_client.clone();
        let recv = keys.client_to_server.clone();
        DataChannel {
            suite,
            send_aes: Aes128::new(&send.enc),
            recv_aes: Aes128::new(&recv.enc),
            send,
            recv,
            next_send_id: 1,
            replay: ReplayWindow::new(),
            meter,
            cost,
        }
    }

    /// The suite in force.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// Seals `plaintext` into a record.
    pub fn seal(&mut self, opcode: Opcode, session_id: u64, plaintext: &[u8]) -> Record {
        let packet_id = self.next_send_id;
        self.next_send_id += 1;
        self.charge(plaintext.len());
        let payload = match self.suite {
            CipherSuite::Aes128CbcHmac => {
                let iv = self.derive_iv(packet_id);
                let ct = cbc_encrypt(&self.send_aes, &iv, plaintext);
                let mut body = Vec::with_capacity(IV_LEN + ct.len() + TAG_LEN);
                body.extend_from_slice(&iv);
                body.extend_from_slice(&ct);
                let tag = Self::tag(&self.send.mac, opcode, packet_id, &body);
                body.extend_from_slice(&tag);
                body
            }
            CipherSuite::IntegrityOnly => {
                let mut body = plaintext.to_vec();
                let tag = Self::tag(&self.send.mac, opcode, packet_id, &body);
                body.extend_from_slice(&tag);
                body
            }
            CipherSuite::SampledPayload => {
                let mut body = plaintext.to_vec();
                let tag = Self::sampled_tag(&self.send.mac, opcode, packet_id, &body);
                body.extend_from_slice(&tag);
                body
            }
        };
        Record {
            opcode,
            session_id,
            packet_id,
            payload,
        }
    }

    /// Opens a sealed record, enforcing authenticity and replay
    /// protection.
    ///
    /// # Errors
    ///
    /// [`VpnError::AuthenticationFailed`] on tag mismatch,
    /// [`VpnError::Replay`] for repeated packet ids,
    /// [`VpnError::Malformed`] on framing problems.
    pub fn open(&mut self, record: &Record) -> Result<Vec<u8>, VpnError> {
        if record.payload.len() < TAG_LEN {
            return Err(VpnError::Malformed("sealed payload too short"));
        }
        let (body, tag) = record.payload.split_at(record.payload.len() - TAG_LEN);
        let expected = match self.suite {
            CipherSuite::SampledPayload => {
                Self::sampled_tag(&self.recv.mac, record.opcode, record.packet_id, body)
            }
            _ => Self::tag(&self.recv.mac, record.opcode, record.packet_id, body),
        };
        if !endbox_crypto::ct_eq(&expected, tag) {
            return Err(VpnError::AuthenticationFailed);
        }
        if !self.replay.accept(record.packet_id) {
            return Err(VpnError::Replay);
        }
        self.charge(body.len());
        match self.suite {
            CipherSuite::Aes128CbcHmac => {
                if body.len() < IV_LEN + 16 {
                    return Err(VpnError::Malformed("ciphertext too short"));
                }
                let iv: [u8; IV_LEN] = body[..IV_LEN].try_into().unwrap();
                cbc_decrypt(&self.recv_aes, &iv, &body[IV_LEN..])
                    .map_err(|_| VpnError::AuthenticationFailed)
            }
            CipherSuite::IntegrityOnly | CipherSuite::SampledPayload => Ok(body.to_vec()),
        }
    }

    /// Seals several tunnel packets into **one** [`Opcode::DataBatch`]
    /// record (the §IV batching optimisation): one IV, one MAC and one
    /// fixed per-record crypto charge amortised across the whole batch,
    /// instead of one of each per packet.
    pub fn seal_batch(&mut self, session_id: u64, payloads: &[&[u8]]) -> Record {
        let blob = crate::proto::frame::encode(payloads);
        self.seal(Opcode::DataBatch, session_id, &blob)
    }

    /// Opens a [`Opcode::DataBatch`] record as frame handles into the
    /// decrypted blob — one copy total (the decrypt), no per-frame copy.
    ///
    /// # Errors
    ///
    /// Everything [`DataChannel::open`] raises, plus
    /// [`VpnError::Malformed`] for non-batch records or bad framing.
    pub fn open_batch_frames(&mut self, record: &Record) -> Result<BatchFrames, VpnError> {
        if record.opcode != Opcode::DataBatch {
            return Err(VpnError::Malformed("expected DataBatch record"));
        }
        let blob = self.open(record)?;
        let ranges = crate::proto::frame::decode(&blob)?;
        Ok(BatchFrames { blob, ranges })
    }

    /// Number of records sealed so far.
    pub fn sealed_count(&self) -> u64 {
        self.next_send_id - 1
    }

    /// True while the receive-side replay window has never accepted a
    /// packet (see [`ReplayWindow::is_empty`]) — the steal-safety
    /// predicate of the adaptive dispatcher.
    pub fn replay_is_empty(&self) -> bool {
        self.replay.is_empty()
    }

    fn charge(&self, bytes: usize) {
        let cycles = match self.suite {
            CipherSuite::IntegrityOnly => self.cost.integrity_only_cycles(bytes),
            // SampledPayload charges the full CBC+HMAC budget: it stands in
            // for the real suite in bulk runs.
            _ => self.cost.crypto_cycles(bytes),
        };
        self.meter.add(cycles);
    }

    /// Deterministic per-packet IV (unique per packet id; see module docs).
    fn derive_iv(&self, packet_id: u64) -> [u8; IV_LEN] {
        let mut m = HmacSha256::new(&self.send.enc);
        m.update(b"iv");
        m.update(&packet_id.to_be_bytes());
        let d = m.finalize();
        d[..IV_LEN].try_into().unwrap()
    }

    fn tag(key: &[u8; 32], opcode: Opcode, packet_id: u64, body: &[u8]) -> [u8; TAG_LEN] {
        let mut m = HmacSha256::new(key);
        m.update(&[opcode.to_u8()]);
        m.update(&packet_id.to_be_bytes());
        m.update(body);
        m.finalize()
    }

    /// MAC over a payload sample: first/last 32 bytes + length.
    fn sampled_tag(key: &[u8; 32], opcode: Opcode, packet_id: u64, body: &[u8]) -> [u8; TAG_LEN] {
        let mut m = HmacSha256::new(key);
        m.update(&[opcode.to_u8(), 0xfe]);
        m.update(&packet_id.to_be_bytes());
        m.update(&(body.len() as u64).to_be_bytes());
        let head = &body[..body.len().min(32)];
        let tail = &body[body.len().saturating_sub(32)..];
        m.update(head);
        m.update(tail);
        m.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SessionKeys {
        SessionKeys::derive(&[7u8; 32], &[1u8; 32], &[2u8; 32])
    }

    fn pair(suite: CipherSuite) -> (DataChannel, DataChannel) {
        let k = keys();
        let meter = CycleMeter::new();
        let cost = CostModel::calibrated();
        (
            DataChannel::client(&k, suite, meter.clone(), cost.clone()),
            DataChannel::server(&k, suite, meter, cost),
        )
    }

    #[test]
    fn directional_keys_differ() {
        let k = keys();
        assert_ne!(k.client_to_server.enc, k.server_to_client.enc);
        assert_ne!(k.client_to_server.mac, k.server_to_client.mac);
    }

    #[test]
    fn seal_open_roundtrip_all_suites() {
        for suite in [
            CipherSuite::Aes128CbcHmac,
            CipherSuite::IntegrityOnly,
            CipherSuite::SampledPayload,
        ] {
            let (mut c, mut s) = pair(suite);
            let rec = c.seal(Opcode::Data, 9, b"tunnelled ip packet");
            assert_eq!(rec.session_id, 9);
            let pt = s.open(&rec).unwrap();
            assert_eq!(pt, b"tunnelled ip packet", "{suite:?}");
            // And the reverse direction.
            let rec2 = s.seal(Opcode::Data, 9, b"reply");
            assert_eq!(c.open(&rec2).unwrap(), b"reply");
        }
    }

    #[test]
    fn cbc_hides_plaintext_integrity_only_does_not() {
        let (mut c, _) = pair(CipherSuite::Aes128CbcHmac);
        let rec = c.seal(Opcode::Data, 1, b"supersecretpayload");
        assert!(!rec
            .payload
            .windows(b"supersecretpayload".len())
            .any(|w| w == b"supersecretpayload"));

        let (mut c2, _) = pair(CipherSuite::IntegrityOnly);
        let rec2 = c2.seal(Opcode::Data, 1, b"supersecretpayload");
        assert!(rec2
            .payload
            .windows(b"supersecretpayload".len())
            .any(|w| w == b"supersecretpayload"));
    }

    #[test]
    fn tampering_detected() {
        for suite in [CipherSuite::Aes128CbcHmac, CipherSuite::IntegrityOnly] {
            let (mut c, mut s) = pair(suite);
            let mut rec = c.seal(Opcode::Data, 1, b"payload payload payload");
            rec.payload[3] ^= 0x40;
            assert_eq!(
                s.open(&rec),
                Err(VpnError::AuthenticationFailed),
                "{suite:?}"
            );
        }
    }

    #[test]
    fn opcode_is_bound_into_tag() {
        let (mut c, mut s) = pair(CipherSuite::IntegrityOnly);
        let mut rec = c.seal(Opcode::Data, 1, b"x");
        rec.opcode = Opcode::Ping; // confuse data with control traffic
        assert_eq!(s.open(&rec), Err(VpnError::AuthenticationFailed));
    }

    #[test]
    fn replayed_records_rejected() {
        let (mut c, mut s) = pair(CipherSuite::Aes128CbcHmac);
        let rec = c.seal(Opcode::Data, 1, b"once only");
        s.open(&rec).unwrap();
        assert_eq!(s.open(&rec), Err(VpnError::Replay));
    }

    #[test]
    fn packet_id_tampering_detected() {
        let (mut c, mut s) = pair(CipherSuite::Aes128CbcHmac);
        let mut rec = c.seal(Opcode::Data, 1, b"payload");
        rec.packet_id += 1; // try to evade replay window
        assert_eq!(s.open(&rec), Err(VpnError::AuthenticationFailed));
    }

    #[test]
    fn batch_seal_open_roundtrip() {
        for suite in [
            CipherSuite::Aes128CbcHmac,
            CipherSuite::IntegrityOnly,
            CipherSuite::SampledPayload,
        ] {
            let (mut c, mut s) = pair(suite);
            let payloads: Vec<&[u8]> = vec![b"first packet", b"", b"third tunnelled packet"];
            let rec = c.seal_batch(7, &payloads);
            assert_eq!(rec.opcode, Opcode::DataBatch);
            assert_eq!(
                s.open_batch_frames(&rec).unwrap().to_vecs(),
                payloads,
                "{suite:?}"
            );
        }
    }

    #[test]
    fn batch_record_amortises_fixed_crypto_cost() {
        let cost = CostModel::calibrated();
        let payloads = [[0u8; 500]; 8];
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();

        let k = keys();
        let meter_single = CycleMeter::new();
        let mut single = DataChannel::client(
            &k,
            CipherSuite::Aes128CbcHmac,
            meter_single.clone(),
            cost.clone(),
        );
        for p in &refs {
            single.seal(Opcode::Data, 1, p);
        }
        let single_cycles = meter_single.take();

        let meter_batch = CycleMeter::new();
        let mut batched = DataChannel::client(
            &k,
            CipherSuite::Aes128CbcHmac,
            meter_batch.clone(),
            cost.clone(),
        );
        batched.seal_batch(1, &refs);
        let batch_cycles = meter_batch.take();

        assert!(
            batch_cycles < single_cycles,
            "batched sealing must be cheaper: {batch_cycles} vs {single_cycles}"
        );
        // The saving is the per-packet fixed cost, (n-1) * crypto_per_packet,
        // minus the framing bytes the batch additionally protects.
        assert!(single_cycles - batch_cycles > cost.crypto_per_packet * 6);
        assert_eq!(batched.sealed_count(), 1, "one record for the whole batch");
    }

    #[test]
    fn batch_open_rejects_wrong_opcode_and_tampering() {
        let (mut c, mut s) = pair(CipherSuite::Aes128CbcHmac);
        let rec = c.seal(Opcode::Data, 1, b"plain data record");
        assert!(
            s.open_batch_frames(&rec).is_err(),
            "plain Data record is not a batch"
        );

        let mut rec = c.seal_batch(1, &[b"aaaa", b"bbbb"]);
        rec.payload[9] ^= 1;
        assert_eq!(
            s.open_batch_frames(&rec).unwrap_err(),
            VpnError::AuthenticationFailed
        );
    }

    #[test]
    fn integrity_only_is_cheaper_than_cbc() {
        let cost = CostModel::calibrated();
        assert!(cost.integrity_only_cycles(1500) < cost.crypto_cycles(1500));
    }

    #[test]
    fn cycle_charges_match_suite() {
        let k = keys();
        let cost = CostModel::calibrated();
        let meter = CycleMeter::new();
        let mut c =
            DataChannel::client(&k, CipherSuite::IntegrityOnly, meter.clone(), cost.clone());
        c.seal(Opcode::Data, 1, &[0u8; 1000]);
        assert_eq!(meter.take(), cost.integrity_only_cycles(1000));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any payload roundtrips through any suite.
            #[test]
            fn seal_open_roundtrip(
                payload in prop::collection::vec(any::<u8>(), 0..2048),
                suite_idx in 0usize..3,
            ) {
                let suite = [
                    CipherSuite::Aes128CbcHmac,
                    CipherSuite::IntegrityOnly,
                    CipherSuite::SampledPayload,
                ][suite_idx];
                let (mut c, mut s) = pair(suite);
                let rec = c.seal(Opcode::Data, 1, &payload);
                prop_assert_eq!(s.open(&rec).unwrap(), payload);
            }

            /// Bit flips anywhere in a CBC+HMAC record are rejected.
            #[test]
            fn any_bitflip_detected(
                payload in prop::collection::vec(any::<u8>(), 1..256),
                byte_idx in any::<prop::sample::Index>(),
                bit in 0u8..8,
            ) {
                let (mut c, mut s) = pair(CipherSuite::Aes128CbcHmac);
                let mut rec = c.seal(Opcode::Data, 1, &payload);
                let i = byte_idx.index(rec.payload.len());
                rec.payload[i] ^= 1 << bit;
                prop_assert!(s.open(&rec).is_err());
            }
        }
    }

    #[test]
    fn wrong_direction_keys_fail() {
        let k = keys();
        let meter = CycleMeter::new();
        let cost = CostModel::calibrated();
        let mut c1 =
            DataChannel::client(&k, CipherSuite::Aes128CbcHmac, meter.clone(), cost.clone());
        let mut c2 = DataChannel::client(&k, CipherSuite::Aes128CbcHmac, meter, cost);
        let rec = c1.seal(Opcode::Data, 1, b"hello");
        // A client cannot open another client's traffic (keys are
        // directional).
        assert!(c2.open(&rec).is_err());
    }
}
