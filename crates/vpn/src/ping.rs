//! The EndBox ping extension (§III-E): "We use in-band ping messages from
//! OpenVPN to notify ENDBOX clients about configuration updates and to
//! enforce them. … We extend the message format with two extra fields:
//! the version number of the latest configuration file and its grace
//! period."
//!
//! Ping messages travel sealed on the data channel, so "the authenticity
//! of all packets is validated inside the enclave" and crafted pings are
//! rejected by the MAC check.

use crate::error::VpnError;
use crate::wire::{Reader, Writer};

/// A keepalive message with the EndBox configuration extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingMessage {
    /// Version number of the latest configuration file.
    pub config_version: u64,
    /// Grace period in seconds during which older configs stay accepted.
    pub grace_period_secs: u32,
    /// Sender timestamp (simulated nanoseconds) for RTT accounting.
    pub timestamp_ns: u64,
}

impl PingMessage {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.config_version)
            .u32(self.grace_period_secs)
            .u64(self.timestamp_ns);
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] on truncation or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<PingMessage, VpnError> {
        let mut r = Reader::new(bytes);
        let msg = PingMessage {
            config_version: r.u64()?,
            grace_period_secs: r.u32()?,
            timestamp_ns: r.u64()?,
        };
        if !r.is_empty() {
            return Err(VpnError::Malformed("trailing bytes in ping"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = PingMessage {
            config_version: 17,
            grace_period_secs: 30,
            timestamp_ns: 12345,
        };
        assert_eq!(PingMessage::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let p = PingMessage {
            config_version: 1,
            grace_period_secs: 2,
            timestamp_ns: 3,
        };
        let mut b = p.to_bytes();
        assert!(PingMessage::from_bytes(&b[..10]).is_err());
        b.push(0);
        assert!(PingMessage::from_bytes(&b).is_err());
    }
}
