//! Certificates binding a subject (an attested EndBox enclave, or the VPN
//! server) to a Schnorr public key, signed by the network's certificate
//! authority (Fig. 4).

use crate::error::VpnError;
use crate::wire::{Reader, Writer};
use endbox_crypto::schnorr::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};

/// A CA-issued certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Subject identity (e.g. `"endbox-client-17"`).
    pub subject: String,
    /// The subject's public key.
    pub public_key: VerifyingKey,
    /// Expiry, in simulated seconds since epoch.
    pub not_after_secs: u64,
    signature: Signature,
}

fn tbs_bytes(subject: &str, public_key: &VerifyingKey, not_after_secs: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(b"endbox-cert-v1")
        .string(subject)
        .raw(&public_key.to_bytes())
        .u64(not_after_secs);
    w.finish()
}

impl Certificate {
    /// Issues a certificate signed by `ca`.
    pub fn issue(
        subject: &str,
        public_key: VerifyingKey,
        not_after_secs: u64,
        ca: &SigningKey,
        rng: &mut impl rand::RngCore,
    ) -> Certificate {
        let signature = ca.sign(&tbs_bytes(subject, &public_key, not_after_secs), rng);
        Certificate {
            subject: subject.to_string(),
            public_key,
            not_after_secs,
            signature,
        }
    }

    /// Verifies issuer signature and expiry.
    ///
    /// # Errors
    ///
    /// [`VpnError::BadCertificate`] on signature failure or expiry.
    pub fn verify(&self, ca_public: &VerifyingKey, now_secs: u64) -> Result<(), VpnError> {
        ca_public
            .verify(
                &tbs_bytes(&self.subject, &self.public_key, self.not_after_secs),
                &self.signature,
            )
            .map_err(|_| VpnError::BadCertificate("issuer signature invalid"))?;
        if now_secs > self.not_after_secs {
            return Err(VpnError::BadCertificate("expired"));
        }
        Ok(())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.string(&self.subject)
            .raw(&self.public_key.to_bytes())
            .u64(self.not_after_secs)
            .raw(&self.signature.to_bytes());
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] / [`VpnError::BadCertificate`] on bad input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Certificate, VpnError> {
        let mut r = Reader::new(bytes);
        let subject = r.string()?;
        let pk: [u8; 32] = r.array()?;
        let public_key = VerifyingKey::from_bytes(&pk)
            .map_err(|_| VpnError::BadCertificate("bad public key"))?;
        let not_after_secs = r.u64()?;
        let sig: [u8; SIGNATURE_LEN] = r.array()?;
        let signature =
            Signature::from_bytes(&sig).map_err(|_| VpnError::BadCertificate("bad signature"))?;
        Ok(Certificate {
            subject,
            public_key,
            not_after_secs,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn issue_verify_roundtrip() {
        let mut rng = rng();
        let ca = SigningKey::generate(&mut rng);
        let subject_key = SigningKey::generate(&mut rng);
        let cert = Certificate::issue(
            "client-1",
            subject_key.verifying_key(),
            1_000,
            &ca,
            &mut rng,
        );
        cert.verify(&ca.verifying_key(), 500).unwrap();
        assert_eq!(
            cert.verify(&ca.verifying_key(), 1_001),
            Err(VpnError::BadCertificate("expired"))
        );
    }

    #[test]
    fn wrong_ca_rejected() {
        let mut rng = rng();
        let ca = SigningKey::generate(&mut rng);
        let rogue_ca = SigningKey::generate(&mut rng);
        let key = SigningKey::generate(&mut rng);
        let cert = Certificate::issue("client-1", key.verifying_key(), 1_000, &rogue_ca, &mut rng);
        assert!(cert.verify(&ca.verifying_key(), 0).is_err());
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut rng = rng();
        let ca = SigningKey::generate(&mut rng);
        let key = SigningKey::generate(&mut rng);
        let cert = Certificate::issue("client-é", key.verifying_key(), 77, &ca, &mut rng);
        let parsed = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
        parsed.verify(&ca.verifying_key(), 0).unwrap();
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut rng = rng();
        let ca = SigningKey::generate(&mut rng);
        let key = SigningKey::generate(&mut rng);
        let mut cert = Certificate::issue("client-1", key.verifying_key(), 77, &ca, &mut rng);
        cert.subject = "client-2".into(); // privilege forgery attempt
        assert!(cert.verify(&ca.verifying_key(), 0).is_err());
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Certificate::from_bytes(&[]).is_err());
        assert!(Certificate::from_bytes(&[0u8; 40]).is_err());
    }
}
