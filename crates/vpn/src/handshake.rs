//! The control-channel handshake: X25519 key agreement authenticated with
//! CA-issued certificates.
//!
//! Downgrade defence (§V-A): "OpenVPN implements server-side checks that
//! ensure the minimal TLS version to be used. On the client-side, the
//! corresponding check happens within the enclave during connection
//! establishment and therefore cannot be circumvented." Both sides here
//! enforce `min_version`; the client-side check runs inside the enclave in
//! the `endbox` crate.

use crate::cert::Certificate;
use crate::channel::SessionKeys;
use crate::error::VpnError;
use crate::wire::{Reader, Writer};
use endbox_crypto::schnorr::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use endbox_crypto::x25519;

/// Identity and policy for one handshake endpoint.
#[derive(Debug, Clone)]
pub struct HandshakeConfig {
    /// This endpoint's long-term signing key (matches its certificate).
    pub identity: SigningKey,
    /// This endpoint's CA-issued certificate.
    pub certificate: Certificate,
    /// The CA public key pinned at build time ("The public key of the CA
    /// is pre-deployed into enclave binaries during system compilation",
    /// §III-C).
    pub ca_public: VerifyingKey,
    /// Lowest protocol version this endpoint accepts.
    pub min_version: u8,
}

/// First handshake message (client → server).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientHello {
    /// Protocol version the client wants to speak.
    pub offered_version: u8,
    /// Ephemeral X25519 public key.
    pub eph_pub: [u8; 32],
    /// Client nonce.
    pub nonce: [u8; 32],
    /// Client certificate.
    pub certificate: Certificate,
    /// Click configuration version the client currently runs (§III-E).
    pub config_version: u64,
    signature: Signature,
}

/// Second handshake message (server → client).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerHello {
    /// Version chosen by the server (>= both minimums).
    pub chosen_version: u8,
    /// Assigned session id.
    pub session_id: u64,
    /// Ephemeral X25519 public key.
    pub eph_pub: [u8; 32],
    /// Server nonce.
    pub nonce: [u8; 32],
    /// Server certificate.
    pub certificate: Certificate,
    /// Configuration version currently required by the server.
    pub required_config_version: u64,
    signature: Signature,
}

/// Pending client handshake state (keep private to the enclave).
pub struct ClientState {
    eph_secret: [u8; 32],
    nonce: [u8; 32],
    offered_version: u8,
}

impl std::fmt::Debug for ClientState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientState { <redacted> }")
    }
}

/// Information the server learns about an authenticated client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientInfo {
    /// Certificate subject.
    pub subject: String,
    /// Config version the client reported at connect time.
    pub config_version: u64,
    /// Negotiated protocol version.
    pub version: u8,
}

fn client_transcript(
    offered_version: u8,
    eph_pub: &[u8; 32],
    nonce: &[u8; 32],
    cert: &Certificate,
    config_version: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(b"endbox-hs-client")
        .u8(offered_version)
        .raw(eph_pub)
        .raw(nonce)
        .bytes(&cert.to_bytes())
        .u64(config_version);
    w.finish()
}

fn server_transcript(
    chosen_version: u8,
    session_id: u64,
    eph_pub: &[u8; 32],
    nonce: &[u8; 32],
    cert: &Certificate,
    required_config_version: u64,
    client_nonce: &[u8; 32],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(b"endbox-hs-server")
        .u8(chosen_version)
        .u64(session_id)
        .raw(eph_pub)
        .raw(nonce)
        .bytes(&cert.to_bytes())
        .u64(required_config_version)
        .raw(client_nonce);
    w.finish()
}

/// Starts a client handshake.
pub fn client_start(
    cfg: &HandshakeConfig,
    offered_version: u8,
    config_version: u64,
    rng: &mut impl rand::RngCore,
) -> (ClientHello, ClientState) {
    let (eph_secret, eph_pub) = x25519::keypair(rng);
    let mut nonce = [0u8; 32];
    rng.fill_bytes(&mut nonce);
    let transcript = client_transcript(
        offered_version,
        &eph_pub,
        &nonce,
        &cfg.certificate,
        config_version,
    );
    let signature = cfg.identity.sign(&transcript, rng);
    (
        ClientHello {
            offered_version,
            eph_pub,
            nonce,
            certificate: cfg.certificate.clone(),
            config_version,
            signature,
        },
        ClientState {
            eph_secret,
            nonce,
            offered_version,
        },
    )
}

/// Server side: validates a `ClientHello` and produces the response plus
/// session keys.
///
/// # Errors
///
/// Certificate, signature and version failures per [`VpnError`].
pub fn server_respond(
    cfg: &HandshakeConfig,
    hello: &ClientHello,
    session_id: u64,
    required_config_version: u64,
    now_secs: u64,
    rng: &mut impl rand::RngCore,
) -> Result<(ServerHello, SessionKeys, ClientInfo), VpnError> {
    if hello.offered_version < cfg.min_version {
        return Err(VpnError::VersionTooLow {
            offered: hello.offered_version,
            minimum: cfg.min_version,
        });
    }
    hello.certificate.verify(&cfg.ca_public, now_secs)?;
    let transcript = client_transcript(
        hello.offered_version,
        &hello.eph_pub,
        &hello.nonce,
        &hello.certificate,
        hello.config_version,
    );
    hello
        .certificate
        .public_key
        .verify(&transcript, &hello.signature)
        .map_err(|_| VpnError::BadSignature)?;

    let (eph_secret, eph_pub) = x25519::keypair(rng);
    let mut nonce = [0u8; 32];
    rng.fill_bytes(&mut nonce);
    let chosen_version = hello.offered_version;
    let transcript = server_transcript(
        chosen_version,
        session_id,
        &eph_pub,
        &nonce,
        &cfg.certificate,
        required_config_version,
        &hello.nonce,
    );
    let signature = cfg.identity.sign(&transcript, rng);

    let shared = x25519::shared_secret(&eph_secret, &hello.eph_pub);
    let keys = SessionKeys::derive(&shared, &hello.nonce, &nonce);
    Ok((
        ServerHello {
            chosen_version,
            session_id,
            eph_pub,
            nonce,
            certificate: cfg.certificate.clone(),
            required_config_version,
            signature,
        },
        keys,
        ClientInfo {
            subject: hello.certificate.subject.clone(),
            config_version: hello.config_version,
            version: chosen_version,
        },
    ))
}

/// Client side: validates the `ServerHello` and derives session keys.
/// This check runs inside the enclave in EndBox, so a compromised host
/// cannot skip the version or certificate validation.
///
/// # Errors
///
/// Certificate, signature and version failures per [`VpnError`].
pub fn client_complete(
    cfg: &HandshakeConfig,
    state: &ClientState,
    hello: &ServerHello,
    now_secs: u64,
) -> Result<SessionKeys, VpnError> {
    if hello.chosen_version < cfg.min_version {
        return Err(VpnError::VersionTooLow {
            offered: hello.chosen_version,
            minimum: cfg.min_version,
        });
    }
    if hello.chosen_version > state.offered_version {
        return Err(VpnError::Malformed("server chose unoffered version"));
    }
    hello.certificate.verify(&cfg.ca_public, now_secs)?;
    let transcript = server_transcript(
        hello.chosen_version,
        hello.session_id,
        &hello.eph_pub,
        &hello.nonce,
        &hello.certificate,
        hello.required_config_version,
        &state.nonce,
    );
    hello
        .certificate
        .public_key
        .verify(&transcript, &hello.signature)
        .map_err(|_| VpnError::BadSignature)?;
    let shared = x25519::shared_secret(&state.eph_secret, &hello.eph_pub);
    Ok(SessionKeys::derive(&shared, &state.nonce, &hello.nonce))
}

impl ClientHello {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.offered_version)
            .raw(&self.eph_pub)
            .raw(&self.nonce)
            .bytes(&self.certificate.to_bytes())
            .u64(self.config_version)
            .raw(&self.signature.to_bytes());
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] or certificate errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<ClientHello, VpnError> {
        let mut r = Reader::new(bytes);
        let offered_version = r.u8()?;
        let eph_pub = r.array()?;
        let nonce = r.array()?;
        let certificate = Certificate::from_bytes(r.bytes()?)?;
        let config_version = r.u64()?;
        let sig: [u8; SIGNATURE_LEN] = r.array()?;
        let signature =
            Signature::from_bytes(&sig).map_err(|_| VpnError::Malformed("bad signature"))?;
        Ok(ClientHello {
            offered_version,
            eph_pub,
            nonce,
            certificate,
            config_version,
            signature,
        })
    }
}

impl ServerHello {
    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.chosen_version)
            .u64(self.session_id)
            .raw(&self.eph_pub)
            .raw(&self.nonce)
            .bytes(&self.certificate.to_bytes())
            .u64(self.required_config_version)
            .raw(&self.signature.to_bytes());
        w.finish()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`VpnError::Malformed`] or certificate errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServerHello, VpnError> {
        let mut r = Reader::new(bytes);
        let chosen_version = r.u8()?;
        let session_id = r.u64()?;
        let eph_pub = r.array()?;
        let nonce = r.array()?;
        let certificate = Certificate::from_bytes(r.bytes()?)?;
        let required_config_version = r.u64()?;
        let sig: [u8; SIGNATURE_LEN] = r.array()?;
        let signature =
            Signature::from_bytes(&sig).map_err(|_| VpnError::Malformed("bad signature"))?;
        Ok(ServerHello {
            chosen_version,
            session_id,
            eph_pub,
            nonce,
            certificate,
            required_config_version,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PROTOCOL_V1, PROTOCOL_V2};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    fn configs(min_client: u8, min_server: u8) -> (HandshakeConfig, HandshakeConfig) {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let client_key = SigningKey::generate(&mut r);
        let server_key = SigningKey::generate(&mut r);
        let client_cert =
            Certificate::issue("client-1", client_key.verifying_key(), 10_000, &ca, &mut r);
        let server_cert = Certificate::issue(
            "endbox-server",
            server_key.verifying_key(),
            10_000,
            &ca,
            &mut r,
        );
        (
            HandshakeConfig {
                identity: client_key,
                certificate: client_cert,
                ca_public: ca.verifying_key(),
                min_version: min_client,
            },
            HandshakeConfig {
                identity: server_key,
                certificate: server_cert,
                ca_public: ca.verifying_key(),
                min_version: min_server,
            },
        )
    }

    #[test]
    fn full_handshake_derives_matching_keys() {
        let (ccfg, scfg) = configs(PROTOCOL_V1, PROTOCOL_V1);
        let mut r = rng();
        let (hello, state) = client_start(&ccfg, PROTOCOL_V2, 3, &mut r);
        let (shello, server_keys, info) = server_respond(&scfg, &hello, 1, 5, 100, &mut r).unwrap();
        let client_keys = client_complete(&ccfg, &state, &shello, 100).unwrap();
        assert_eq!(
            client_keys.client_to_server.enc,
            server_keys.client_to_server.enc
        );
        assert_eq!(
            client_keys.server_to_client.mac,
            server_keys.server_to_client.mac
        );
        assert_eq!(info.subject, "client-1");
        assert_eq!(info.config_version, 3);
        assert_eq!(shello.required_config_version, 5);
    }

    #[test]
    fn server_rejects_low_version() {
        let (ccfg, scfg) = configs(PROTOCOL_V1, PROTOCOL_V2);
        let mut r = rng();
        let (hello, _) = client_start(&ccfg, PROTOCOL_V1, 0, &mut r);
        let err = server_respond(&scfg, &hello, 1, 0, 0, &mut r).unwrap_err();
        assert_eq!(
            err,
            VpnError::VersionTooLow {
                offered: 1,
                minimum: 2
            }
        );
    }

    #[test]
    fn client_rejects_downgraded_response() {
        // A MITM rewrites the server's chosen version below the client's
        // enclave-enforced minimum: the signature check or version check
        // must fail.
        let (ccfg, scfg) = configs(PROTOCOL_V2, PROTOCOL_V1);
        let mut r = rng();
        let (hello, state) = client_start(&ccfg, PROTOCOL_V2, 0, &mut r);
        let (mut shello, _, _) = server_respond(&scfg, &hello, 1, 0, 0, &mut r).unwrap();
        shello.chosen_version = PROTOCOL_V1;
        let err = client_complete(&ccfg, &state, &shello, 0).unwrap_err();
        assert_eq!(
            err,
            VpnError::VersionTooLow {
                offered: 1,
                minimum: 2
            }
        );
    }

    #[test]
    fn forged_server_identity_rejected() {
        let (ccfg, scfg) = configs(PROTOCOL_V1, PROTOCOL_V1);
        let mut r = rng();
        // An attacker without a CA-signed cert crafts their own.
        let attacker_key = SigningKey::generate(&mut r);
        let attacker_ca = SigningKey::generate(&mut r);
        let attacker_cert = Certificate::issue(
            "endbox-server",
            attacker_key.verifying_key(),
            10_000,
            &attacker_ca,
            &mut r,
        );
        let attacker_cfg = HandshakeConfig {
            identity: attacker_key,
            certificate: attacker_cert,
            ca_public: scfg.ca_public,
            min_version: PROTOCOL_V1,
        };
        let (hello, state) = client_start(&ccfg, PROTOCOL_V1, 0, &mut r);
        let (shello, _, _) = server_respond(&attacker_cfg, &hello, 1, 0, 0, &mut r).unwrap();
        assert!(matches!(
            client_complete(&ccfg, &state, &shello, 0),
            Err(VpnError::BadCertificate(_))
        ));
    }

    #[test]
    fn unattested_client_without_cert_cannot_connect() {
        // A client whose certificate was not issued by the network CA is
        // rejected — "unattested clients cannot establish connections
        // because of missing certificates" (§III-C).
        let (_, scfg) = configs(PROTOCOL_V1, PROTOCOL_V1);
        let mut r = rng();
        let rogue_key = SigningKey::generate(&mut r);
        let rogue_ca = SigningKey::generate(&mut r);
        let rogue_cert = Certificate::issue(
            "intruder",
            rogue_key.verifying_key(),
            10_000,
            &rogue_ca,
            &mut r,
        );
        let rogue_cfg = HandshakeConfig {
            identity: rogue_key,
            certificate: rogue_cert,
            ca_public: scfg.ca_public,
            min_version: PROTOCOL_V1,
        };
        let (hello, _) = client_start(&rogue_cfg, PROTOCOL_V1, 0, &mut r);
        assert!(matches!(
            server_respond(&scfg, &hello, 1, 0, 0, &mut r),
            Err(VpnError::BadCertificate(_))
        ));
    }

    #[test]
    fn tampered_hello_signature_rejected() {
        let (ccfg, scfg) = configs(PROTOCOL_V1, PROTOCOL_V1);
        let mut r = rng();
        let (mut hello, _) = client_start(&ccfg, PROTOCOL_V2, 0, &mut r);
        hello.config_version = 99; // tamper with the signed config version
        assert_eq!(
            server_respond(&scfg, &hello, 1, 0, 0, &mut r).unwrap_err(),
            VpnError::BadSignature
        );
    }

    #[test]
    fn hello_serialisation_roundtrips() {
        let (ccfg, scfg) = configs(PROTOCOL_V1, PROTOCOL_V1);
        let mut r = rng();
        let (hello, state) = client_start(&ccfg, PROTOCOL_V2, 1, &mut r);
        let parsed = ClientHello::from_bytes(&hello.to_bytes()).unwrap();
        assert_eq!(parsed, hello);
        let (shello, _, _) = server_respond(&scfg, &parsed, 4, 2, 0, &mut r).unwrap();
        let sparsed = ServerHello::from_bytes(&shello.to_bytes()).unwrap();
        assert_eq!(sparsed, shello);
        client_complete(&ccfg, &state, &sparsed, 0).unwrap();
    }
}
