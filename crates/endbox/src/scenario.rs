//! Scenario builders wiring up a complete EndBox deployment: IAS, CA,
//! config server, VPN server and N clients (§II-A's enterprise and ISP
//! scenarios).

use crate::ca::CertificateAuthority;
use crate::client::{EndBoxClient, EndBoxClientConfig, TrustLevel};
use crate::config_update::{ConfigServer, SignedConfig};
use crate::error::EndBoxError;
use crate::server::{
    AsyncFrontEnd, AsyncIngressStats, Delivery, EndBoxServer, EndBoxServerConfig,
    ShardedEndBoxServer, TxBatchStats, TxBatcher,
};
use crate::use_cases::UseCase;
use endbox_crypto::schnorr::SigningKey;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::net::{OsWire, RingWire, Transport, TransportKind, VirtualWire, XdpWire};
use endbox_netsim::time::SharedClock;
use endbox_netsim::{BufferPool, Packet};
use endbox_sgx::attestation::{CpuIdentity, IasSimulator};
use endbox_vpn::channel::CipherSuite;
use endbox_vpn::endpoint::FramedSender;
use endbox_vpn::handshake::HandshakeConfig;
use endbox_vpn::shard::DispatchPolicy;
use endbox_vpn::{PROTOCOL_V1, PROTOCOL_V2};
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Which §II-A scenario a deployment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Enterprise network: encrypted configs (IDPS rules hidden from
    /// employees), full packet encryption.
    Enterprise,
    /// ISP network: plaintext configs (customers may inspect rules),
    /// integrity-only traffic protection (§IV-A).
    Isp,
}

/// Builder for [`Scenario`] (entry points:
/// [`Scenario::enterprise`] / [`Scenario::isp`]).
///
/// Knobs chain; [`ScenarioBuilder::build`] produces a single-threaded
/// deployment, [`ScenarioBuilder::build_sharded`] the pipelined
/// multi-worker one. See `examples/quickstart.rs` and
/// `examples/enterprise_network.rs` for the long-form versions of these
/// snippets.
///
/// # Example
///
/// ```
/// use endbox::scenario::Scenario;
/// use endbox::use_cases::UseCase;
/// use endbox_vpn::shard::DispatchPolicy;
///
/// // Single-threaded reference deployment: one client, one firewall.
/// let mut s = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
/// let delivered = s.send_from_client(0, b"hello").unwrap();
/// assert_eq!(delivered.app_payload(), b"hello");
///
/// // Fully-knobbed sharded pipeline: 2 RX framing shards, static
/// // dispatch, 2 crypto workers, event-driven socket ingress.
/// let s = Scenario::enterprise(2, UseCase::Nop)
///     .seed(42)
///     .rx_shards(2)
///     .dispatch(DispatchPolicy::Static)
///     .async_ingress(true)
///     .build_sharded(2)
///     .unwrap();
/// assert_eq!(s.server.worker_count(), 2);
/// assert!(s.async_ingress_enabled());
/// ```
#[derive(Debug)]
pub struct ScenarioBuilder {
    kind: ScenarioKind,
    n_clients: usize,
    use_case: UseCase,
    trust: TrustLevel,
    c2c_flagging: bool,
    batched_ecalls: bool,
    seed: u64,
    suite_override: Option<CipherSuite>,
    server_click: Option<String>,
    custom_client_click: Option<String>,
    dispatch: DispatchPolicy,
    rx_shards: usize,
    async_ingress: bool,
    adaptive_control: bool,
    elastic: bool,
    transport: TransportKind,
}

impl ScenarioBuilder {
    /// Protection level for the clients (default hardware).
    pub fn trust(mut self, trust: TrustLevel) -> Self {
        self.trust = trust;
        self
    }

    /// Enables the client-to-client QoS flagging optimisation.
    pub fn c2c_flagging(mut self, on: bool) -> Self {
        self.c2c_flagging = on;
        self
    }

    /// Toggles the one-ecall-per-packet optimisation (§IV-A).
    pub fn batched_ecalls(mut self, on: bool) -> Self {
        self.batched_ecalls = on;
        self
    }

    /// Deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the data-channel suite (the default follows the
    /// scenario kind).
    pub fn suite(mut self, suite: CipherSuite) -> Self {
        self.suite_override = Some(suite);
        self
    }

    /// Attaches a server-side Click instance (the OpenVPN+Click baseline).
    pub fn server_click(mut self, config: &str) -> Self {
        self.server_click = Some(config.to_string());
        self
    }

    /// Replaces the use case's client Click configuration with a custom
    /// one (e.g. a TLSDecrypt + IDS chain for the encrypted-DPI tests).
    pub fn custom_client_click(mut self, config: &str) -> Self {
        self.custom_client_click = Some(config.to_string());
        self
    }

    /// Shard dispatch policy of a sharded build (default: load-aware with
    /// bounded migration; `DispatchPolicy::Static` restores the fixed
    /// session-id affinity baseline).
    pub fn dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// RX framing shards of a sharded build (default 1): datagram
    /// reassembly and record framing run on `k` threads sharded by
    /// `peer_id mod k` in front of the worker shards.
    pub fn rx_shards(mut self, k: usize) -> Self {
        self.rx_shards = k.max(1);
        self
    }

    /// Event-driven socket ingress for a sharded build (default off):
    /// every peer gets a virtual server-side UDP socket registered with
    /// an [`AsyncFrontEnd`] poll group (one group per RX shard), and the
    /// data-path drivers route wire datagrams through the event loop
    /// instead of calling `receive_datagrams` directly. The
    /// handshake/control path stays call-driven — it is off the fast
    /// path. See [`ShardedScenario::pump_async`].
    pub fn async_ingress(mut self, on: bool) -> Self {
        self.async_ingress = on;
        self
    }

    /// Zero-knob self-tuning datapath (default off). Sugar that turns
    /// the whole closed-loop control plane on in one call: implies
    /// [`ScenarioBuilder::async_ingress`], switches the dispatch policy
    /// to [`DispatchPolicy::Adaptive`] (rate-derived migration
    /// thresholds plus idle-worker work stealing) and arms the
    /// front-end's budget/remap controller
    /// ([`AsyncFrontEnd::set_adaptive`]). Every decision lands at a
    /// round boundary, so results stay byte-identical to the static
    /// configurations — only scheduling moves.
    pub fn adaptive_control(mut self, on: bool) -> Self {
        self.adaptive_control = on;
        if on {
            self.async_ingress = true;
            self.dispatch = DispatchPolicy::Adaptive;
        }
        self
    }

    /// Structural elasticity (default off). Implies
    /// [`ScenarioBuilder::adaptive_control`]: on top of the budget/remap
    /// loop, the control round may grow or shrink the RX shard pool and
    /// worker pool themselves from the demand EWMAs
    /// ([`AsyncFrontEnd::set_elastic`] documents the law's hysteresis and
    /// cooldown). The builder's `rx_shards`/`workers` become the
    /// *starting* geometry rather than a fixed one.
    pub fn elastic(mut self, on: bool) -> Self {
        self.elastic = on;
        if on {
            self = self.adaptive_control(true);
        }
        self
    }

    /// Runs the async wire over the real OS-socket backend
    /// ([`OsWire`]: loopback UDP sockets) instead of the in-process
    /// [`VirtualWire`] (default off; only meaningful together with
    /// [`ScenarioBuilder::async_ingress`]). Application-level results
    /// are byte-identical across backends — the stamp-carrying wire
    /// header preserves the re-merge ordering contract — which the
    /// parity tests assert. Check [`OsWire::available`] first in
    /// environments that may forbid socket creation. Sugar for
    /// [`ScenarioBuilder::transport`] with
    /// [`TransportKind::OsSocket`].
    pub fn os_transport(mut self, on: bool) -> Self {
        self.transport = if on {
            TransportKind::OsSocket
        } else {
            TransportKind::Virtual
        };
        self
    }

    /// Selects the async wire backend (default
    /// [`TransportKind::Virtual`]; only meaningful together with
    /// [`ScenarioBuilder::async_ingress`]). Application-level results
    /// are byte-identical across all four backends; only the metered
    /// boundary costs differ ([`TransportKind::profile`]). For the
    /// [`TransportKind::Ring`] and [`TransportKind::XdpFrame`] backends
    /// the client links' egress buffers come from the backend's
    /// pre-registered arena ([`RingWire::pool`] / [`XdpWire::umem`]),
    /// so egress frames are ring-registered from birth.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Builds everything both server flavours share: RNG, clock, IAS, CA,
    /// suite selection, the server configuration and the published
    /// initial Click configuration.
    fn setup(&self) -> Result<(ScenarioSetup, EndBoxServerConfig), EndBoxError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let clock = SharedClock::new();
        let cost = CostModel::calibrated();
        let ias = IasSimulator::new(&mut rng);
        let mut ca = CertificateAuthority::new(ias.public_key(), &mut rng);

        let suite = self.suite_override.unwrap_or(match self.kind {
            ScenarioKind::Enterprise => CipherSuite::Aes128CbcHmac,
            ScenarioKind::Isp => CipherSuite::IntegrityOnly,
        });
        let client_click = self
            .custom_client_click
            .clone()
            .unwrap_or_else(|| self.use_case.click_config());

        // VPN server (trusted machine; certificate issued directly).
        let server_meter = CycleMeter::new();
        let server_key = SigningKey::generate(&mut rng);
        let now_secs = clock.now().as_secs_f64() as u64;
        let server_cert = ca.issue_server_certificate(
            "endbox-server",
            server_key.verifying_key(),
            now_secs,
            &mut rng,
        );
        let server_config = EndBoxServerConfig {
            handshake: HandshakeConfig {
                identity: server_key,
                certificate: server_cert,
                ca_public: ca.public_key(),
                min_version: PROTOCOL_V1,
            },
            suite,
            server_click: self.server_click.clone(),
            cost: cost.clone(),
            meter: server_meter.clone(),
            clock: clock.clone(),
            rng_seed: self.seed ^ 0x5e44eu64,
        };

        // Publish the initial configuration (version 1).
        let mut config_server = ConfigServer::new();
        let encrypt = match self.kind {
            ScenarioKind::Enterprise => Some(ca.config_key()),
            ScenarioKind::Isp => None,
        };
        let initial = SignedConfig::publish(
            &client_click,
            1,
            ca.signing_key(),
            encrypt.as_ref(),
            &mut rng,
        );
        config_server.upload(initial);

        Ok((
            ScenarioSetup {
                rng,
                clock,
                cost,
                ias,
                ca,
                suite,
                client_click,
                server_meter,
                config_server,
            },
            server_config,
        ))
    }

    /// Enrolls client `i` (Fig. 4) and drives its handshake through
    /// `receive` (whichever server flavour is behind it). Returns the
    /// connected client and its session id.
    fn connect_client(
        &self,
        i: usize,
        setup: &mut ScenarioSetup,
        mut receive: impl FnMut(u64, &[u8]) -> Result<Delivery, EndBoxError>,
    ) -> Result<(EndBoxClient, u64), EndBoxError> {
        let mut cpu_seed = [0u8; 32];
        cpu_seed[..8].copy_from_slice(&(self.seed ^ i as u64).to_be_bytes());
        cpu_seed[8] = 0xcc;
        let cpu = CpuIdentity::from_seed(cpu_seed);
        setup.ias.register_platform(cpu.attestation_public());

        let subject = format!("endbox-client-{i}");
        let mut cfg = EndBoxClientConfig::new(&subject, setup.ca.public_key(), cpu);
        cfg.trust = self.trust;
        cfg.suite = setup.suite;
        cfg.click_config = Some(setup.client_click.clone());
        cfg.config_version = 1;
        cfg.offered_version = PROTOCOL_V2;
        cfg.min_version = PROTOCOL_V1;
        cfg.c2c_flagging = self.c2c_flagging;
        cfg.batched_ecalls = self.batched_ecalls;
        cfg.cost = setup.cost.clone();
        cfg.clock = setup.clock.clone();
        cfg.rng_seed = self.seed ^ (i as u64) << 8;
        let mut client = EndBoxClient::new(cfg)?;

        // Whitelist this build's measurement once.
        if i == 0 {
            setup
                .ca
                .allow_measurement(client.enclave_app().measurement());
        }
        client.enroll(&subject, &mut setup.ca, &setup.ias, &mut setup.rng)?;

        // Connect through the server.
        let hello_frags = client.connect_start()?;
        let mut established = None;
        for frag in &hello_frags {
            match receive(i as u64, frag)? {
                Delivery::Pending => {}
                Delivery::Established {
                    session_id,
                    response,
                } => {
                    established = Some((session_id, response));
                }
                other => {
                    let _ = other;
                    return Err(EndBoxError::NotReady("unexpected handshake reply"));
                }
            }
        }
        let (session_id, response) =
            established.ok_or(EndBoxError::NotReady("handshake did not complete"))?;
        for frag in &response {
            client.connect_complete(frag)?;
        }
        Ok((client, session_id))
    }

    /// Builds the scenario: creates the IAS/CA, enrolls and connects every
    /// client.
    ///
    /// # Errors
    ///
    /// Propagates enrollment/handshake failures.
    pub fn build(self) -> Result<Scenario, EndBoxError> {
        let (mut setup, server_config) = self.setup()?;
        let mut server = EndBoxServer::new(server_config)?;

        let mut clients = Vec::with_capacity(self.n_clients);
        let mut session_ids = Vec::with_capacity(self.n_clients);
        for i in 0..self.n_clients {
            let (client, session_id) = self.connect_client(i, &mut setup, |peer, frag| {
                server.receive_datagram(peer, frag)
            })?;
            session_ids.push(session_id);
            clients.push(client);
        }

        Ok(Scenario {
            kind: self.kind,
            use_case: self.use_case,
            ias: setup.ias,
            ca: setup.ca,
            server,
            server_meter: setup.server_meter,
            config_server: setup.config_server,
            clients,
            session_ids,
            clock: setup.clock,
            rng: setup.rng,
            next_version: 1,
        })
    }

    /// Builds the scenario around a [`ShardedEndBoxServer`] with `workers`
    /// shard threads — the multi-client sharded deployment driven by the
    /// Fig. 10 scalability harness.
    ///
    /// # Errors
    ///
    /// Propagates enrollment/handshake failures, plus
    /// [`EndBoxError::NotReady`] if a server-side Click was requested
    /// (the sharded server replaces that baseline).
    ///
    /// # Example
    ///
    /// Four clients through a 2-worker / 2-RX-shard pipeline, all batches
    /// in one multi-client dispatch (see also `examples/enterprise_network.rs`):
    ///
    /// ```
    /// use endbox::scenario::Scenario;
    /// use endbox::use_cases::UseCase;
    ///
    /// let mut s = Scenario::enterprise(4, UseCase::Firewall)
    ///     .rx_shards(2)
    ///     .build_sharded(2)
    ///     .unwrap();
    /// let payloads: Vec<Vec<Vec<u8>>> = (0..4)
    ///     .map(|c| (0..3).map(|i| format!("client {c} pkt {i}").into_bytes()).collect())
    ///     .collect();
    /// let delivered = s.send_batches_from_all(&payloads).unwrap();
    /// assert_eq!(delivered.len(), 4);
    /// assert!(delivered.iter().all(|per_client| per_client.len() == 3));
    /// ```
    pub fn build_sharded(self, workers: usize) -> Result<ShardedScenario, EndBoxError> {
        let (mut setup, server_config) = self.setup()?;
        let mut server = ShardedEndBoxServer::with_pipeline(
            server_config,
            workers,
            self.dispatch,
            self.rx_shards,
        )?;

        let mut clients = Vec::with_capacity(self.n_clients);
        let mut session_ids = Vec::with_capacity(self.n_clients);
        for i in 0..self.n_clients {
            let (client, session_id) = self.connect_client(i, &mut setup, |peer, frag| {
                server.receive_datagram(peer, frag)
            })?;
            session_ids.push(session_id);
            clients.push(client);
        }

        let front_end = self.async_ingress.then(|| {
            let mut fe = AsyncFrontEnd::new(server.rx_shard_count());
            fe.set_adaptive(self.adaptive_control);
            fe.set_elastic(self.elastic);
            fe
        });
        // Ring/XDP backends share their pre-registered arena with the
        // client links' egress pool, so every egress fragment buffer is
        // arena-registered from birth (the zero-copy loop closes:
        // arena → wire → drain → recycle).
        let mut egress_pool = BufferPool::new();
        let wire: Option<Arc<dyn Transport>> = self.async_ingress.then(|| match self.transport {
            TransportKind::Virtual => Arc::new(VirtualWire::new()) as Arc<dyn Transport>,
            TransportKind::OsSocket => Arc::new(OsWire::new()) as Arc<dyn Transport>,
            TransportKind::Ring => {
                let w = RingWire::new();
                egress_pool = w.pool().clone();
                Arc::new(w) as Arc<dyn Transport>
            }
            TransportKind::XdpFrame => {
                let w = XdpWire::new();
                egress_pool = w.umem().clone();
                Arc::new(w) as Arc<dyn Transport>
            }
        });
        // The server's dedicated TX socket: all egress towards clients
        // goes through the TX-batching stage (one bulk send per flush)
        // rather than per-datagram writes. Metered like every other
        // server-side socket.
        let tx = wire.as_ref().map(|w| {
            TxBatcher::new(
                w.bind_metered(SERVER_TX_PORT, setup.server_meter.clone(), &setup.cost)
                    .expect("TX port unique"),
            )
        });
        Ok(ShardedScenario {
            kind: self.kind,
            use_case: self.use_case,
            ias: setup.ias,
            ca: setup.ca,
            server,
            server_meter: setup.server_meter,
            config_server: setup.config_server,
            clients,
            session_ids,
            clock: setup.clock,
            cost: setup.cost,
            wire,
            front_end,
            tx,
            links: HashMap::new(),
            egress_pool,
        })
    }
}

/// Shared pieces produced by [`ScenarioBuilder::setup`].
struct ScenarioSetup {
    rng: rand::rngs::StdRng,
    clock: SharedClock,
    cost: CostModel,
    ias: IasSimulator,
    ca: CertificateAuthority,
    suite: CipherSuite,
    client_click: String,
    server_meter: CycleMeter,
    config_server: ConfigServer,
}

/// A running deployment: server + clients + management plane.
pub struct Scenario {
    /// Scenario flavour.
    pub kind: ScenarioKind,
    /// Middlebox function deployed.
    pub use_case: UseCase,
    /// Attestation service.
    pub ias: IasSimulator,
    /// Certificate authority.
    pub ca: CertificateAuthority,
    /// The VPN server.
    pub server: EndBoxServer,
    /// Server machine meter.
    pub server_meter: CycleMeter,
    /// Configuration file server.
    pub config_server: ConfigServer,
    /// Connected clients.
    pub clients: Vec<EndBoxClient>,
    session_ids: Vec<u64>,
    /// Shared simulation clock.
    pub clock: SharedClock,
    rng: rand::rngs::StdRng,
    next_version: u64,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("kind", &self.kind)
            .field("use_case", &self.use_case)
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl Scenario {
    /// Starts building an enterprise scenario (Fig. 2a).
    pub fn enterprise(n_clients: usize, use_case: UseCase) -> ScenarioBuilder {
        ScenarioBuilder {
            kind: ScenarioKind::Enterprise,
            n_clients,
            use_case,
            trust: TrustLevel::Hardware,
            c2c_flagging: false,
            batched_ecalls: true,
            seed: 0xe17e4,
            suite_override: None,
            server_click: None,
            custom_client_click: None,
            dispatch: DispatchPolicy::default(),
            rx_shards: 1,
            async_ingress: false,
            adaptive_control: false,
            elastic: false,
            transport: TransportKind::Virtual,
        }
    }

    /// Starts building an ISP scenario (Fig. 2b).
    pub fn isp(n_clients: usize, use_case: UseCase) -> ScenarioBuilder {
        ScenarioBuilder {
            kind: ScenarioKind::Isp,
            n_clients,
            use_case,
            trust: TrustLevel::Hardware,
            c2c_flagging: false,
            batched_ecalls: true,
            seed: 0x15b,
            suite_override: None,
            server_click: None,
            custom_client_click: None,
            dispatch: DispatchPolicy::default(),
            rx_shards: 1,
            async_ingress: false,
            adaptive_control: false,
            elastic: false,
            transport: TransportKind::Virtual,
        }
    }

    /// IP address of client `idx`.
    pub fn client_addr(idx: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, (idx / 250) as u8, (idx % 250 + 1) as u8)
    }

    /// A server-side address inside the managed network.
    pub fn network_addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 0, 1)
    }

    /// The session id of client `idx`.
    pub fn session_id(&self, idx: usize) -> u64 {
        self.session_ids[idx]
    }

    /// Sends an application payload from a client into the managed
    /// network; returns the packet as delivered by the server.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::PacketDropped`] when the middlebox rejects it.
    pub fn send_from_client(&mut self, idx: usize, payload: &[u8]) -> Result<Packet, EndBoxError> {
        let packet = Packet::tcp(
            Self::client_addr(idx),
            Self::network_addr(),
            40_000 + idx as u16,
            5001,
            0,
            payload,
        );
        self.send_packet_from_client(idx, packet)
    }

    /// Sends a pre-built IP packet from a client through the tunnel.
    ///
    /// # Errors
    ///
    /// See [`Scenario::send_from_client`].
    pub fn send_packet_from_client(
        &mut self,
        idx: usize,
        packet: Packet,
    ) -> Result<Packet, EndBoxError> {
        let datagrams = self.clients[idx].send_packet(packet)?;
        if datagrams.is_empty() {
            return Err(EndBoxError::PacketDropped);
        }
        let mut delivered = None;
        for d in &datagrams {
            match self.server.receive_datagram(idx as u64, d)? {
                Delivery::Pending => {}
                Delivery::Packet { packet, .. } => delivered = Some(packet),
                other => {
                    let _ = other;
                    return Err(EndBoxError::NotReady("unexpected delivery type"));
                }
            }
        }
        delivered.ok_or(EndBoxError::PacketDropped)
    }

    /// Sends several application payloads from a client as **one** batch:
    /// one enclave transition, one Click traversal and one sealed record
    /// on the client; one batched delivery at the server. Returns the
    /// packets the server delivered (middlebox-dropped packets are
    /// omitted).
    ///
    /// # Errors
    ///
    /// VPN failures; unlike [`Scenario::send_from_client`], a middlebox
    /// drop of *some* packets is not an error — the survivors are
    /// returned.
    pub fn send_batch_from_client(
        &mut self,
        idx: usize,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Packet>, EndBoxError> {
        let packets: Vec<Packet> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Packet::tcp(
                    Self::client_addr(idx),
                    Self::network_addr(),
                    40_000 + idx as u16,
                    5_001,
                    i as u32,
                    p,
                )
            })
            .collect();
        self.send_packet_batch_from_client(idx, packets)
    }

    /// Sends pre-built IP packets from a client through the tunnel as one
    /// batch.
    ///
    /// # Errors
    ///
    /// See [`Scenario::send_batch_from_client`].
    pub fn send_packet_batch_from_client(
        &mut self,
        idx: usize,
        packets: Vec<Packet>,
    ) -> Result<Vec<Packet>, EndBoxError> {
        let datagrams = self.clients[idx].send_batch(packets)?;
        let mut delivered = Vec::new();
        for d in &datagrams {
            match self.server.receive_datagram(idx as u64, d)? {
                Delivery::Pending => {}
                Delivery::PacketBatch { packets, .. } => delivered.extend(packets),
                Delivery::Packet { packet, .. } => delivered.push(packet),
                other => {
                    let _ = other;
                    return Err(EndBoxError::NotReady("unexpected delivery type"));
                }
            }
        }
        Ok(delivered)
    }

    /// Sends a payload from one client to another through the server
    /// (client-to-client path, §IV-A).
    ///
    /// # Errors
    ///
    /// Middlebox drops and VPN failures.
    pub fn client_to_client(
        &mut self,
        from: usize,
        to: usize,
        payload: &[u8],
    ) -> Result<Option<Packet>, EndBoxError> {
        let packet = Packet::tcp(
            Self::client_addr(from),
            Self::client_addr(to),
            40_000 + from as u16,
            40_000 + to as u16,
            0,
            payload,
        );
        let forwarded = self.send_packet_from_client(from, packet)?;
        let datagrams = self
            .server
            .send_to_client(self.session_ids[to], &forwarded)?;
        let mut delivered = None;
        for d in &datagrams {
            if let Some(p) = self.clients[to].receive_datagram(d)? {
                delivered = Some(p);
            }
        }
        Ok(delivered)
    }

    /// Publishes a configuration update and runs the full Fig. 5 cycle:
    /// upload, announce, ping, fetch, hot-swap, proof ping. Returns the
    /// new version number.
    ///
    /// # Errors
    ///
    /// Any verification failure along the way.
    pub fn update_config(
        &mut self,
        click_text: &str,
        grace_period_secs: u32,
    ) -> Result<u64, EndBoxError> {
        self.next_version += 1;
        let version = self.next_version;
        let encrypt = match self.kind {
            ScenarioKind::Enterprise => Some(self.ca.config_key()),
            ScenarioKind::Isp => None,
        };
        // Step 1: admin uploads to the config server.
        let signed = SignedConfig::publish(
            click_text,
            version,
            self.ca.signing_key(),
            encrypt.as_ref(),
            &mut self.rng,
        );
        self.config_server.upload(signed);
        // Steps 2–3: announce at the VPN server, grace timer starts.
        self.server.announce_config(version, grace_period_secs);
        // Steps 4–9 per client: ping, fetch, apply, proof.
        for idx in 0..self.clients.len() {
            self.ping_and_update_client(idx)?;
        }
        Ok(version)
    }

    /// Runs the ping/fetch/apply/proof cycle for one client.
    ///
    /// # Errors
    ///
    /// Verification failures.
    pub fn ping_and_update_client(&mut self, idx: usize) -> Result<(), EndBoxError> {
        // Step 4: server ping announces the version.
        let ping = self.server.make_ping(self.session_ids[idx])?;
        for frag in &ping {
            self.clients[idx].receive_datagram(frag)?;
        }
        // Steps 5–8: client fetches and applies.
        self.clients[idx].fetch_and_apply_update(&self.config_server)?;
        // Step 9: client proves the new version.
        let proof = self.clients[idx].build_ping()?;
        for frag in &proof {
            self.server.receive_datagram(idx as u64, frag)?;
        }
        Ok(())
    }

    /// Current config version of client `idx`.
    pub fn client_version(&mut self, idx: usize) -> u64 {
        self.clients[idx].config_version()
    }
}

/// A running sharded deployment: [`ShardedEndBoxServer`] + clients +
/// management plane, with multi-client batched drivers for the Fig. 10
/// scalability experiments.
pub struct ShardedScenario {
    /// Scenario flavour.
    pub kind: ScenarioKind,
    /// Middlebox function deployed.
    pub use_case: UseCase,
    /// Attestation service.
    pub ias: IasSimulator,
    /// Certificate authority.
    pub ca: CertificateAuthority,
    /// The sharded VPN server.
    pub server: ShardedEndBoxServer,
    /// Server machine meter (shared with every shard worker).
    pub server_meter: CycleMeter,
    /// Configuration file server.
    pub config_server: ConfigServer,
    /// Connected clients.
    pub clients: Vec<EndBoxClient>,
    session_ids: Vec<u64>,
    /// Shared simulation clock.
    pub clock: SharedClock,
    cost: CostModel,
    /// The pluggable wire behind the sockets: [`VirtualWire`] by
    /// default, [`OsWire`] with [`ScenarioBuilder::os_transport`]
    /// (`Some` iff built with [`ScenarioBuilder::async_ingress`]).
    wire: Option<Arc<dyn Transport>>,
    /// The event-driven socket front-end
    /// (`Some` iff built with [`ScenarioBuilder::async_ingress`]).
    front_end: Option<AsyncFrontEnd>,
    /// The TX-batching egress stage over the server's dedicated TX
    /// socket (`Some` iff built with
    /// [`ScenarioBuilder::async_ingress`]).
    tx: Option<TxBatcher>,
    /// Per-peer client-side sending halves, bound lazily on first send.
    links: HashMap<u64, FramedSender>,
    /// Egress fragment buffers of the client links (pool-backed — no
    /// fresh allocation per datagram once warm).
    egress_pool: BufferPool,
}

impl std::fmt::Debug for ShardedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScenario")
            .field("kind", &self.kind)
            .field("use_case", &self.use_case)
            .field("clients", &self.clients.len())
            .field("workers", &self.server.worker_count())
            .finish()
    }
}

/// Folds the next `n` datagram results of `results` into the packets
/// they delivered (`Pending` contributes nothing; middlebox-dropped
/// packets are already absent from batch deliveries). Shared by the
/// call-driven and event-driven batch drivers so the two regroupings
/// cannot drift apart.
fn collect_delivered(
    results: &mut impl Iterator<Item = Result<Delivery, EndBoxError>>,
    n: usize,
) -> Result<Vec<Packet>, EndBoxError> {
    let mut delivered = Vec::new();
    for _ in 0..n {
        match results.next().expect("one result per datagram")? {
            Delivery::Pending => {}
            Delivery::PacketBatch { packets, .. } => delivered.extend(packets),
            Delivery::Packet { packet, .. } => delivered.push(packet),
            _ => return Err(EndBoxError::NotReady("unexpected delivery type")),
        }
    }
    Ok(delivered)
}

/// Port bit distinguishing client-side sockets from server-side ones on
/// the scenario's virtual wire (server port for peer `p` is `p` itself).
const CLIENT_PORT_BIT: u64 = 1 << 63;

/// The server's dedicated TX socket (all egress towards clients leaves
/// through the [`TxBatcher`] bound here). Disjoint from both the
/// server-side per-peer ports (small integers) and the client-side ones
/// ([`CLIENT_PORT_BIT`]).
const SERVER_TX_PORT: u64 = 1 << 62;

impl ShardedScenario {
    /// The session id of client `idx`.
    pub fn session_id(&self, idx: usize) -> u64 {
        self.session_ids[idx]
    }

    /// Whether this scenario routes data-path ingress through the
    /// event-driven socket front-end
    /// ([`ScenarioBuilder::async_ingress`]).
    pub fn async_ingress_enabled(&self) -> bool {
        self.front_end.is_some()
    }

    /// Ensures `peer` has a server-side socket registered with the
    /// front-end and a client-side sending half, binding both lazily.
    /// The server socket is metered: socket receives charge the server
    /// meter like every other server-side cost.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    fn ensure_async_peer(&mut self, peer: u64) {
        let wire = self.wire.as_ref().expect("async ingress enabled");
        let front_end = self.front_end.as_mut().expect("async ingress enabled");
        if self.links.contains_key(&peer) {
            return;
        }
        let server_ep = wire
            .bind_metered(peer, self.server_meter.clone(), &self.cost)
            .expect("unique server port per peer");
        front_end.register_peer(peer, server_ep);
        let client_ep = wire
            .bind(CLIENT_PORT_BIT | peer)
            .expect("unique client port per peer");
        self.links.insert(
            peer,
            FramedSender::with_pool(client_ep, self.cost.mtu_payload, self.egress_pool.clone()),
        );
    }

    /// Ships already-sealed wire datagrams from `peer`'s client-side
    /// socket to the server-side socket the front-end polls for that
    /// peer. Nothing is processed until [`ShardedScenario::pump_async`]
    /// runs the event loop.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn send_wire_datagrams(&mut self, peer: u64, datagrams: Vec<Vec<u8>>) {
        self.ensure_async_peer(peer);
        self.links
            .get(&peer)
            .expect("just ensured")
            .forward(peer, datagrams)
            .expect("server socket bound");
    }

    /// Runs the event loop until every registered socket is drained,
    /// returning one `(peer, result)` per datagram in dispatch order
    /// (see [`AsyncFrontEnd::run_until_idle`]).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn pump_async(&mut self) -> Vec<(u64, Result<Delivery, EndBoxError>)> {
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .run_until_idle(&mut self.server)
    }

    /// One event-loop round only (budget-bounded) — the knob the
    /// backpressure tests turn. See [`AsyncFrontEnd::pump`].
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn pump_async_round(&mut self) -> Vec<(u64, Result<Delivery, EndBoxError>)> {
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .pump(&mut self.server)
    }

    /// Front-end counters (wakeups, rounds, datagrams, deferrals).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn async_stats(&self) -> AsyncIngressStats {
        self.front_end
            .as_ref()
            .expect("async ingress enabled")
            .stats()
    }

    /// Datagrams queued in server-side sockets, not yet drained by the
    /// event loop (see [`AsyncFrontEnd::backlog`]).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn backlog(&self) -> usize {
        self.front_end
            .as_ref()
            .expect("async ingress enabled")
            .backlog()
    }

    /// Tightens the event loop's fairness quota / per-shard budget
    /// (defaults: [`crate::server::DEFAULT_DRAIN_QUOTA`],
    /// [`crate::server::DEFAULT_SHARD_BUDGET`]).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn set_async_budget(&mut self, drain_quota: usize, shard_budget: usize) {
        let fe = self.front_end.as_mut().expect("async ingress enabled");
        fe.set_drain_quota(drain_quota);
        fe.set_shard_budget(shard_budget);
    }

    /// Switches the closed-loop controller on or off at runtime (see
    /// [`AsyncFrontEnd::set_adaptive`]; the builder-time equivalent is
    /// [`ScenarioBuilder::adaptive_control`], which also selects the
    /// adaptive dispatch policy — this runtime toggle moves only the
    /// front-end's budget/remap loop).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn set_adaptive_control(&mut self, on: bool) {
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .set_adaptive(on);
    }

    /// Snapshot of the control plane's actions so far (budget grants,
    /// remaps with their drained partial records, steals, migrations) —
    /// see [`crate::server::ControllerStats`] for the reconciliation
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn controller_stats(&self) -> crate::server::ControllerStats {
        self.front_end
            .as_ref()
            .expect("async ingress enabled")
            .controller_stats(&self.server)
    }

    /// Re-homes `peer` onto RX shard / poll group `to` by hand: the RX
    /// reassembly state moves first (quiesced and drained, see
    /// [`ShardedEndBoxServer::remap_rx_peer`]), then the socket
    /// registration follows ([`AsyncFrontEnd::rehome_peer`]). Returns
    /// the drained partial-record count. The controller performs exactly
    /// this pair on its own; the manual hook exists for the adversarial
    /// remap schedules in `tests/`.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn remap_peer(&mut self, peer: u64, to: usize) -> usize {
        // Clamp against the *live* shard count: a resize may have shrunk
        // the pool since the caller captured its target index, and
        // `rehome_peer` (deliberately) panics on stale group indices.
        let to = to % self.server.rx_shard_count();
        let drained = self.server.remap_rx_peer(peer, to);
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .rehome_peer(peer, to);
        drained
    }

    /// Resizes the RX framing pool to `shards` threads online (see
    /// [`ShardedEndBoxServer::resize_rx_shards`] for the
    /// quiesce/drain/install discipline), then — when the event-driven
    /// front-end is attached — rebuilds the poll groups so every socket
    /// is registered with its peer's new owning shard
    /// ([`AsyncFrontEnd::resize_groups`]). Returns `(peers rehashed,
    /// in-flight partials drained)`. Works in both the call-driven and
    /// event-driven modes; the resize law performs exactly this pair on
    /// its own — the manual hook exists for the `Step::Resize` schedules
    /// in `tests/`.
    pub fn resize_rx_shards(&mut self, shards: usize) -> (usize, usize) {
        let moved = self.server.resize_rx_shards(shards);
        if let Some(fe) = self.front_end.as_mut() {
            fe.resize_groups(&self.server);
        }
        moved
    }

    /// Resizes the worker pool to `workers` shard threads online (see
    /// [`ShardedEndBoxServer::resize_workers`]); retiring workers drain
    /// their sessions to survivors before exit. Returns the sessions
    /// moved.
    pub fn resize_workers(&mut self, workers: usize) -> usize {
        self.server.resize_workers(workers)
    }

    /// Structural-elasticity counters accumulated so far (see
    /// [`crate::server::ResizeStats`]).
    pub fn resize_stats(&self) -> crate::server::ResizeStats {
        self.server.resize_stats()
    }

    /// Arms or disarms the resize law at runtime (see
    /// [`AsyncFrontEnd::set_elastic`]; the builder-time equivalent is
    /// [`ScenarioBuilder::elastic`]).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn set_elastic_control(&mut self, on: bool) {
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .set_elastic(on);
    }

    /// Sets the bulk size of ingress `recv_many` calls (see
    /// [`AsyncFrontEnd::set_recv_bulk`]; `1` = per-datagram transport
    /// shape). Results are identical at every setting; only
    /// [`AsyncIngressStats::io_calls`] moves.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn set_recv_bulk(&mut self, bulk: usize) {
        self.front_end
            .as_mut()
            .expect("async ingress enabled")
            .set_recv_bulk(bulk);
    }

    /// The wire backend name (`"virtual"`, `"os-socket"`, `"ring"` or
    /// `"xdp-frame"` — see [`TransportKind::name`]).
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn wire_backend(&self) -> &'static str {
        self.wire.as_ref().expect("async ingress enabled").backend()
    }

    /// Recycling counters of the client links' egress buffer pool.
    pub fn egress_pool_stats(&self) -> endbox_netsim::PoolStats {
        self.egress_pool.stats()
    }

    /// Counters of the TX-batching egress stage.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn tx_stats(&self) -> TxBatchStats {
        self.tx.as_ref().expect("async ingress enabled").stats()
    }

    /// Seals `packets` towards client `idx` as one `DataBatch` record
    /// and ships the fragments through the TX-batching egress stage
    /// (enqueue → one bulk `send_many` per flush), then drains the
    /// client-side socket and returns the wire datagrams it received,
    /// in wire order — the egress mirror of the bulk ingress path.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    ///
    /// # Panics
    ///
    /// Panics if async ingress is off.
    pub fn egress_batch_to_client(
        &mut self,
        idx: usize,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let peer = idx as u64;
        self.ensure_async_peer(peer);
        let session_id = self.session_ids[idx];
        let fragments = self.server.send_batch_to_client(session_id, packets)?;
        let expected = fragments.len();
        let tx = self.tx.as_mut().expect("async ingress enabled");
        tx.enqueue(CLIENT_PORT_BIT | peer, fragments);
        tx.flush().expect("client socket bound");
        // Drain the client side. The OS backend crosses the kernel, so
        // give delivery a bounded moment; the virtual wire is immediate.
        let client_ep = self.links.get(&peer).expect("just ensured").endpoint();
        let mut got = Vec::with_capacity(expected);
        for _ in 0..100_000 {
            client_ep.recv_many(expected - got.len(), &mut got);
            if got.len() >= expected {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), expected, "egress datagrams all delivered");
        // Wire order (one TX socket → stamps are its send order).
        got.sort_by_key(|d| d.seq);
        Ok(got.into_iter().map(|d| d.payload).collect())
    }

    /// Sends several application payloads from one client as a batch
    /// through the sharded server (the counterpart of
    /// [`Scenario::send_batch_from_client`]).
    ///
    /// # Errors
    ///
    /// VPN failures; middlebox drops of *some* packets are not an error.
    pub fn send_batch_from_client(
        &mut self,
        idx: usize,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Packet>, EndBoxError> {
        let packets: Vec<Packet> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    40_000 + idx as u16,
                    5_001,
                    i as u32,
                    p,
                )
            })
            .collect();
        self.send_packet_batch_from_client(idx, packets)
    }

    /// Sends pre-built IP packets from one client through the tunnel as a
    /// batch.
    ///
    /// # Errors
    ///
    /// See [`ShardedScenario::send_batch_from_client`].
    pub fn send_packet_batch_from_client(
        &mut self,
        idx: usize,
        packets: Vec<Packet>,
    ) -> Result<Vec<Packet>, EndBoxError> {
        let mut per_client = self.send_packet_batches_from_all(vec![(idx, packets)])?;
        Ok(per_client.pop().expect("one batch in, one batch out"))
    }

    /// The multi-client driver: every `(client idx, packets)` entry is
    /// sealed by its client, then **all** resulting wire datagrams go
    /// through the server in one
    /// [`ShardedEndBoxServer::receive_datagrams`] dispatch. Returns the
    /// delivered packets per input entry, in input order (middlebox drops
    /// are omitted).
    ///
    /// # Errors
    ///
    /// The first client-side or server-side failure.
    pub fn send_packet_batches_from_all(
        &mut self,
        batches: Vec<(usize, Vec<Packet>)>,
    ) -> Result<Vec<Vec<Packet>>, EndBoxError> {
        if self.async_ingress_enabled() {
            return self.send_packet_batches_async(batches);
        }
        // Client side: each client seals its own batch.
        let mut datagrams: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut slices: Vec<usize> = Vec::with_capacity(batches.len());
        for (idx, packets) in batches {
            let sealed = self.clients[idx].send_batch(packets)?;
            slices.push(sealed.len());
            datagrams.extend(sealed.into_iter().map(|d| (idx as u64, d)));
        }
        // Server side: one pipelined dispatch for the whole interleaving
        // (ownership of the wire bytes moves into the RX stage).
        let results = self.server.receive_datagrams(datagrams);
        // Re-split the input-ordered results back per entry.
        let mut out = Vec::with_capacity(slices.len());
        let mut cursor = results.into_iter();
        for n in slices {
            out.push(collect_delivered(&mut cursor, n)?);
        }
        Ok(out)
    }

    /// The event-driven flavour of
    /// [`ShardedScenario::send_packet_batches_from_all`]: sealed
    /// datagrams ride the virtual wire into per-peer server sockets and
    /// the [`AsyncFrontEnd`] drains them through the same pipelined
    /// dispatch. Results are regrouped **per peer** (per-peer order is
    /// exact for any backpressure setting; see [`AsyncFrontEnd`]).
    fn send_packet_batches_async(
        &mut self,
        batches: Vec<(usize, Vec<Packet>)>,
    ) -> Result<Vec<Vec<Packet>>, EndBoxError> {
        // A backlog from an earlier budget-bounded pump would be drained
        // first and mis-attributed to this batch's datagrams; callers
        // mixing manual pump rounds with the batch drivers must drain
        // (`pump_async`) before sealing new traffic.
        assert_eq!(
            self.backlog(),
            0,
            "drain the socket backlog with pump_async() before sending a new batch"
        );
        let mut expected: Vec<(u64, usize)> = Vec::with_capacity(batches.len());
        for (idx, packets) in batches {
            let peer = idx as u64;
            let sealed = self.clients[idx].send_batch(packets)?;
            expected.push((peer, sealed.len()));
            self.send_wire_datagrams(peer, sealed);
        }
        let mut by_peer: HashMap<u64, VecDeque<Result<Delivery, EndBoxError>>> = HashMap::new();
        for (peer, result) in self.pump_async() {
            by_peer.entry(peer).or_default().push_back(result);
        }
        let mut out = Vec::with_capacity(expected.len());
        for (peer, n) in expected {
            // Take exactly this entry's results, leaving the remainder for
            // a later entry of the same client (per-peer order is the
            // order the entries sealed in).
            let queue = by_peer.entry(peer).or_default();
            assert!(queue.len() >= n, "one result per datagram");
            out.push(collect_delivered(&mut queue.drain(..n), n)?);
        }
        Ok(out)
    }

    /// Per-client packet counts for one round of a heavy-tailed load mix:
    /// client `i` contributes `ceil(weights[i] * base_batch)` packets
    /// (minimum 1, so every session stays active). With the Zipf weights
    /// of `eval::scalability::heavy_tail_weights`, a few elephant clients
    /// seal deep batches while the mice send single packets — the skew
    /// the load-aware dispatcher is measured against.
    pub fn heavy_tail_batch_sizes(weights: &[f64], base_batch: usize) -> Vec<usize> {
        let max = weights.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        weights
            .iter()
            .map(|w| ((w / max) * base_batch as f64).ceil().max(1.0) as usize)
            .collect()
    }

    /// Drives one round of a heavy-tailed multi-client load mix: every
    /// client seals a batch sized by its weight, and the whole skewed
    /// interleaving goes through the server in one pipelined dispatch.
    /// Returns the delivered packets per client.
    ///
    /// # Errors
    ///
    /// See [`ShardedScenario::send_packet_batches_from_all`].
    pub fn send_heavy_tailed_round(
        &mut self,
        weights: &[f64],
        base_batch: usize,
        payload_len: usize,
        round: usize,
    ) -> Result<Vec<Vec<Packet>>, EndBoxError> {
        assert_eq!(weights.len(), self.clients.len(), "one weight per client");
        let sizes = Self::heavy_tail_batch_sizes(weights, base_batch);
        let payloads: Vec<Vec<Vec<u8>>> = sizes
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..n)
                    .map(|i| {
                        let mut p = format!("ht round {round} client {c} pkt {i} ").into_bytes();
                        p.resize(payload_len.max(p.len()), b'x');
                        p.truncate(payload_len.max(1));
                        p
                    })
                    .collect()
            })
            .collect();
        self.send_batches_from_all(&payloads)
    }

    /// Convenience over [`ShardedScenario::send_packet_batches_from_all`]:
    /// client `i` sends `payloads_per_client[i]` as one batch each, all in
    /// one server dispatch.
    ///
    /// # Errors
    ///
    /// See [`ShardedScenario::send_packet_batches_from_all`].
    pub fn send_batches_from_all(
        &mut self,
        payloads_per_client: &[Vec<Vec<u8>>],
    ) -> Result<Vec<Vec<Packet>>, EndBoxError> {
        let batches = payloads_per_client
            .iter()
            .enumerate()
            .map(|(idx, payloads)| {
                (
                    idx,
                    payloads
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            Packet::tcp(
                                Scenario::client_addr(idx),
                                Scenario::network_addr(),
                                40_000 + idx as u16,
                                5_001,
                                i as u32,
                                p,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        self.send_packet_batches_from_all(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_scenario_end_to_end() {
        let mut s = Scenario::enterprise(2, UseCase::Firewall).build().unwrap();
        assert_eq!(s.server.session_count(), 2);
        let delivered = s.send_from_client(0, b"hello from client zero").unwrap();
        assert_eq!(delivered.app_payload(), b"hello from client zero");
        let delivered = s.send_from_client(1, b"hello from client one").unwrap();
        assert_eq!(delivered.app_payload(), b"hello from client one");
    }

    #[test]
    fn isp_scenario_uses_integrity_only() {
        let mut s = Scenario::isp(1, UseCase::Nop).build().unwrap();
        let delivered = s.send_from_client(0, b"isp traffic").unwrap();
        assert_eq!(delivered.app_payload(), b"isp traffic");
    }

    #[test]
    fn idps_scenario_blocks_malicious_payloads() {
        let mut s = Scenario::enterprise(1, UseCase::Idps).build().unwrap();
        // Benign passes.
        s.send_from_client(0, b"innocuous lowercase payload")
            .unwrap();
        // Rule 0 (sid 1000000) is a drop rule matching EB-MAL-0000 on
        // tcp dst port 80.
        let evil = Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            80,
            0,
            b"xx EB-MAL-0000 xx",
        );
        let err = s.send_packet_from_client(0, evil).unwrap_err();
        assert_eq!(err, EndBoxError::PacketDropped);
        assert_eq!(s.clients[0].stats.dropped_egress, 1);
    }

    #[test]
    fn batched_send_delivers_everything_in_order() {
        let mut s = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
        let payloads: Vec<Vec<u8>> = (0..10)
            .map(|i| format!("batched payload {i}").into_bytes())
            .collect();
        let datagrams_before = s.clients[0].stats.datagrams_out;
        let delivered = s.send_batch_from_client(0, &payloads).unwrap();
        assert_eq!(delivered.len(), 10);
        for (i, pkt) in delivered.iter().enumerate() {
            assert_eq!(pkt.app_payload(), payloads[i].as_slice());
        }
        assert_eq!(s.clients[0].stats.sent, 10);
        assert_eq!(
            s.clients[0].stats.datagrams_out - datagrams_before,
            1,
            "one record for the whole batch"
        );
    }

    #[test]
    fn batched_send_filters_malicious_packets_only() {
        let mut s = Scenario::enterprise(1, UseCase::Idps).build().unwrap();
        let packets = vec![
            Packet::tcp(
                Scenario::client_addr(0),
                Scenario::network_addr(),
                40_000,
                80,
                0,
                b"benign one",
            ),
            Packet::tcp(
                Scenario::client_addr(0),
                Scenario::network_addr(),
                40_000,
                80,
                1,
                b"xx EB-MAL-0000 xx",
            ),
            Packet::tcp(
                Scenario::client_addr(0),
                Scenario::network_addr(),
                40_000,
                80,
                2,
                b"benign two",
            ),
        ];
        let delivered = s.send_packet_batch_from_client(0, packets).unwrap();
        assert_eq!(delivered.len(), 2, "malicious middle packet dropped");
        assert_eq!(delivered[0].app_payload(), b"benign one");
        assert_eq!(delivered[1].app_payload(), b"benign two");
        assert_eq!(s.clients[0].stats.dropped_egress, 1);
    }

    #[test]
    fn batched_path_is_cheaper_per_packet_than_single() {
        let payloads: Vec<Vec<u8>> = (0..16).map(|_| vec![0xa5u8; 1000]).collect();

        let mut single = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
        let meter = single.clients[0].meter().clone();
        single.send_from_client(0, &payloads[0]).unwrap(); // warm-up
        meter.take();
        for p in &payloads {
            single.send_from_client(0, p).unwrap();
        }
        let single_cycles = meter.take();

        let mut batched = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
        let meter = batched.clients[0].meter().clone();
        batched.send_from_client(0, &payloads[0]).unwrap(); // warm-up
        meter.take();
        let delivered = batched.send_batch_from_client(0, &payloads).unwrap();
        assert_eq!(delivered.len(), 16);
        let batch_cycles = meter.take();

        assert!(
            batch_cycles < single_cycles,
            "batched client path must be cheaper: {batch_cycles} vs {single_cycles}"
        );
    }

    #[test]
    fn batched_ingress_to_client_roundtrips() {
        let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
        // Client 0 sends a batch addressed to client 1; the server relays
        // it as one batched record.
        let packets: Vec<Packet> = (0..5)
            .map(|i| {
                Packet::tcp(
                    Scenario::client_addr(0),
                    Scenario::client_addr(1),
                    40_000,
                    40_001,
                    i as u32,
                    format!("c2c batch {i}").as_bytes(),
                )
            })
            .collect();
        let forwarded = s.send_packet_batch_from_client(0, packets).unwrap();
        assert_eq!(forwarded.len(), 5);
        let sid = s.session_id(1);
        let datagrams = s.server.send_batch_to_client(sid, &forwarded).unwrap();
        let mut delivered = Vec::new();
        for d in &datagrams {
            delivered.extend(s.clients[1].receive_datagram_batch(d).unwrap());
        }
        assert_eq!(delivered.len(), 5);
        for (i, pkt) in delivered.iter().enumerate() {
            assert_eq!(pkt.app_payload(), format!("c2c batch {i}").as_bytes());
        }
        assert_eq!(s.clients[1].stats.received, 5);
    }

    #[test]
    fn client_ingress_reuses_pooled_buffers_like_the_server() {
        // Ingress is now symmetric: both ends open batch records as frame
        // handles and materialise pool-backed packets, so the client's
        // in-enclave pool must show steady-state reuse just like the
        // server shards' pools.
        let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
        let sid = s.session_id(1);
        let rounds = 6u32;
        let per_round = 8u32;
        for round in 0..rounds {
            let pkts: Vec<Packet> = (0..per_round)
                .map(|i| {
                    Packet::tcp(
                        Scenario::network_addr(),
                        Scenario::client_addr(1),
                        5_001,
                        40_001,
                        round * per_round + i,
                        &[0x5a; 300],
                    )
                })
                .collect();
            let datagrams = s.server.send_batch_to_client(sid, &pkts).unwrap();
            let mut delivered = Vec::new();
            for d in &datagrams {
                delivered.extend(s.clients[1].receive_datagram_batch(d).unwrap());
            }
            assert_eq!(delivered.len(), per_round as usize);
            // `delivered` drops here, returning the pooled buffers.
        }
        let stats = s.clients[1].ingress_pool_stats();
        assert!(
            stats.batched_ops >= rounds as u64,
            "one take_many per ingress batch: {stats:?}"
        );
        assert_eq!(
            stats.fresh_allocs, per_round as u64,
            "only the first round may allocate: {stats:?}"
        );
        assert!(
            stats.reuse_fraction() > 0.7,
            "steady-state ingress must recycle: {stats:?}"
        );
    }

    #[test]
    fn heavy_tailed_round_skews_batches_and_triggers_migration() {
        use endbox_vpn::shard::DispatchPolicy;
        let mut s = Scenario::enterprise(8, UseCase::Nop)
            .dispatch(DispatchPolicy::LoadAware {
                imbalance_bytes: 2_000,
                max_migrations_per_dispatch: 2,
            })
            .build_sharded(4)
            .unwrap();
        let weights = crate::eval::scalability::heavy_tail_weights(8);
        let sizes = ShardedScenario::heavy_tail_batch_sizes(&weights, 16);
        assert_eq!(sizes[0], 16, "the heaviest client seals a full batch");
        assert!(sizes.iter().all(|&n| n >= 1), "mice stay active: {sizes:?}");
        assert!(sizes[0] > sizes[1], "the mix must actually skew: {sizes:?}");
        for round in 0..4 {
            let delivered = s.send_heavy_tailed_round(&weights, 16, 600, round).unwrap();
            for (c, per_client) in delivered.iter().enumerate() {
                assert_eq!(per_client.len(), sizes[c], "round {round} client {c}");
            }
        }
        assert!(
            s.server.migrations() > 0,
            "colliding elephants (sessions 1 and 5 on shard 0) must migrate"
        );
    }

    #[test]
    fn sharded_scenario_end_to_end() {
        let mut s = Scenario::enterprise(4, UseCase::Firewall)
            .build_sharded(2)
            .unwrap();
        assert_eq!(s.server.session_count(), 4);
        assert_eq!(s.server.worker_count(), 2);
        // Every client sends one batch; all batches go through the server
        // in one multi-client dispatch.
        let payloads: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|c| {
                (0..5)
                    .map(|i| format!("client {c} payload {i}").into_bytes())
                    .collect()
            })
            .collect();
        let delivered = s.send_batches_from_all(&payloads).unwrap();
        assert_eq!(delivered.len(), 4);
        for (c, per_client) in delivered.iter().enumerate() {
            assert_eq!(per_client.len(), 5, "client {c}");
            for (i, pkt) in per_client.iter().enumerate() {
                assert_eq!(pkt.app_payload(), payloads[c][i].as_slice());
            }
        }
        let (served, rejected) = s.server.counters();
        assert_eq!(served, 20);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn duplicate_client_entries_regroup_identically_in_both_modes() {
        // One client may appear in several batch entries of one driver
        // call; both ingress modes must split its results back per entry.
        let build = |async_ingress: bool| {
            Scenario::enterprise(2, UseCase::Nop)
                .seed(0xd0b1)
                .rx_shards(2)
                .async_ingress(async_ingress)
                .build_sharded(2)
                .unwrap()
        };
        let mk = |idx: usize, tag: &str, n: usize| -> Vec<Packet> {
            (0..n)
                .map(|i| {
                    Packet::tcp(
                        Scenario::client_addr(idx),
                        Scenario::network_addr(),
                        40_000 + idx as u16,
                        5_001,
                        i as u32,
                        format!("{tag} {i}").as_bytes(),
                    )
                })
                .collect()
        };
        let batches = || {
            vec![
                (0, mk(0, "first", 2)),
                (1, mk(1, "other", 1)),
                (0, mk(0, "second", 3)),
            ]
        };
        let mut sync = build(false);
        let mut async_ = build(true);
        let a = sync.send_packet_batches_from_all(batches()).unwrap();
        let b = async_.send_packet_batches_from_all(batches()).unwrap();
        let bytes = |v: &Vec<Vec<Packet>>| -> Vec<Vec<Vec<u8>>> {
            v.iter()
                .map(|ps| ps.iter().map(|p| p.bytes().to_vec()).collect())
                .collect()
        };
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 2);
        assert_eq!(a[1].len(), 1);
        assert_eq!(a[2].len(), 3);
        assert_eq!(bytes(&a), bytes(&b));
    }

    #[test]
    fn async_ingress_delivers_identically_to_call_driven_ingress() {
        let payloads: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|c| {
                (0..5)
                    .map(|i| format!("async client {c} payload {i}").into_bytes())
                    .collect()
            })
            .collect();
        let mut sync = Scenario::enterprise(4, UseCase::Firewall)
            .rx_shards(2)
            .build_sharded(2)
            .unwrap();
        let mut async_ = Scenario::enterprise(4, UseCase::Firewall)
            .rx_shards(2)
            .async_ingress(true)
            .build_sharded(2)
            .unwrap();
        assert!(!sync.async_ingress_enabled());
        assert!(async_.async_ingress_enabled());
        for round in 0..3 {
            let a = sync.send_batches_from_all(&payloads).unwrap();
            let b = async_.send_batches_from_all(&payloads).unwrap();
            let bytes = |v: &Vec<Vec<Packet>>| -> Vec<Vec<Vec<u8>>> {
                v.iter()
                    .map(|ps| ps.iter().map(|p| p.bytes().to_vec()).collect())
                    .collect()
            };
            assert_eq!(bytes(&a), bytes(&b), "round {round}");
        }
        let stats = async_.async_stats();
        assert_eq!(stats.datagrams, 4 * 3, "one record datagram per batch");
        assert!(stats.wakeups >= stats.rounds, "every round polls");
        assert_eq!(stats.deferred_rounds, 0, "no backpressure at this load");
        assert_eq!(sync.server.counters(), async_.server.counters());
    }

    #[test]
    fn sharded_scenario_filters_malicious_per_packet() {
        let mut s = Scenario::enterprise(2, UseCase::Idps)
            .build_sharded(4)
            .unwrap();
        let packets = vec![
            Packet::tcp(
                Scenario::client_addr(0),
                Scenario::network_addr(),
                40_000,
                80,
                0,
                b"benign one",
            ),
            Packet::tcp(
                Scenario::client_addr(0),
                Scenario::network_addr(),
                40_000,
                80,
                1,
                b"xx EB-MAL-0000 xx",
            ),
        ];
        let delivered = s.send_packet_batch_from_client(0, packets).unwrap();
        assert_eq!(delivered.len(), 1, "client-side Click drops the attack");
        assert_eq!(delivered[0].app_payload(), b"benign one");
    }

    #[test]
    fn sharded_server_ingress_and_ping_roundtrip() {
        let mut s = Scenario::enterprise(2, UseCase::Nop)
            .build_sharded(2)
            .unwrap();
        // Server ping (config announcement) reaches the client.
        s.server.announce_config(3, 30);
        let sid = s.session_id(1);
        let ping = s.server.make_ping(sid).unwrap();
        for frag in &ping {
            s.clients[1].receive_datagram(frag).unwrap();
        }
        // Ingress: server seals a batch towards client 1.
        let pkts: Vec<Packet> = (0..3)
            .map(|i| {
                Packet::tcp(
                    Scenario::network_addr(),
                    Scenario::client_addr(1),
                    5_001,
                    40_001,
                    i as u32,
                    format!("ingress {i}").as_bytes(),
                )
            })
            .collect();
        let datagrams = s.server.send_batch_to_client(sid, &pkts).unwrap();
        let mut delivered = Vec::new();
        for d in &datagrams {
            delivered.extend(s.clients[1].receive_datagram_batch(d).unwrap());
        }
        assert_eq!(delivered.len(), 3);
    }

    #[test]
    fn config_update_cycle() {
        let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
        assert_eq!(s.client_version(0), 1);
        let v = s
            .update_config(&UseCase::Firewall.click_config(), 30)
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(s.client_version(0), 2);
        assert_eq!(s.client_version(1), 2);
        assert_eq!(s.server.client_config_version(s.session_id(0)), Some(2));
        // Traffic still flows after the swap.
        s.send_from_client(0, b"post-update traffic").unwrap();
    }

    #[test]
    fn client_to_client_delivery() {
        let mut s = Scenario::enterprise(2, UseCase::Nop).build().unwrap();
        let delivered = s.client_to_client(0, 1, b"hi neighbour").unwrap().unwrap();
        assert_eq!(delivered.app_payload(), b"hi neighbour");
    }

    #[test]
    fn c2c_flagging_bypasses_second_click() {
        let mut s = Scenario::enterprise(2, UseCase::Idps)
            .c2c_flagging(true)
            .build()
            .unwrap();
        s.client_to_client(0, 1, b"flagged once-processed packet")
            .unwrap()
            .unwrap();
        let (_, _, bypassed) = s.clients[1].enclave_app().packet_counters();
        assert_eq!(bypassed, 1, "receiver must skip Click for flagged packets");
    }
}
