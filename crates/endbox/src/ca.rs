//! The certificate authority and the remote-attestation enrollment
//! workflow of Fig. 4.
//!
//! Steps: (1) the enclave generates a key pair; (2) it creates a report
//! carrying the public keys and has the Quoting Enclave turn it into a
//! quote; (3) the quote is forwarded to the CA; (4) the CA relays it to
//! the IAS and receives a signed verification report; (5) if the verdict
//! is positive and the measurement is known, the CA signs the public key,
//! creating a certificate; (6) the certificate and a symmetric shared key
//! encrypted with the enclave's public key are provisioned to the enclave;
//! (7) the enclave seals the result.

use crate::error::EndBoxError;
use endbox_crypto::hmac::{hkdf, hmac_sha256};
use endbox_crypto::schnorr::{SigningKey, VerifyingKey};
use endbox_crypto::x25519;
use endbox_sgx::attestation::{IasSimulator, Quote, QuoteStatus};
use endbox_sgx::Measurement;
use endbox_vpn::Certificate;
use std::collections::HashSet;

/// What the CA returns to a successfully attested enclave (step 6).
#[derive(Debug, Clone)]
pub struct EnrollmentResponse {
    /// The CA-signed certificate over the enclave's signing key.
    pub certificate: Certificate,
    /// Ephemeral X25519 public key of the KEM wrapping the config key.
    pub kem_public: [u8; 32],
    /// The symmetric configuration key, XOR-wrapped under the KEM secret.
    pub wrapped_config_key: [u8; 32],
    /// MAC over the wrapped key.
    pub wrap_mac: [u8; 32],
}

impl EnrollmentResponse {
    /// Unwraps the config key inside the enclave using its X25519 secret.
    /// Returns `None` if the MAC fails.
    pub fn unwrap_config_key(&self, enclave_secret: &[u8; 32]) -> Option<[u8; 32]> {
        let shared = x25519::shared_secret(enclave_secret, &self.kem_public);
        let wrap: [u8; 32] = hkdf(b"endbox-kem", &shared, b"config-key-wrap");
        let mac_key: [u8; 32] = hkdf(b"endbox-kem", &shared, b"config-key-mac");
        if !endbox_crypto::ct_eq(
            &hmac_sha256(&mac_key, &self.wrapped_config_key),
            &self.wrap_mac,
        ) {
            return None;
        }
        let mut key = [0u8; 32];
        for i in 0..32 {
            key[i] = self.wrapped_config_key[i] ^ wrap[i];
        }
        Some(key)
    }
}

/// The network operator's certificate authority.
pub struct CertificateAuthority {
    signing: SigningKey,
    ias_public: VerifyingKey,
    known_measurements: HashSet<[u8; 32]>,
    config_key: [u8; 32],
    cert_validity_secs: u64,
    issued: u64,
}

impl std::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("known_measurements", &self.known_measurements.len())
            .field("issued", &self.issued)
            .finish()
    }
}

impl CertificateAuthority {
    /// Creates a CA trusting `ias_public` for attestation verdicts.
    pub fn new(ias_public: VerifyingKey, rng: &mut impl rand::RngCore) -> Self {
        let mut config_key = [0u8; 32];
        rng.fill_bytes(&mut config_key);
        CertificateAuthority {
            signing: SigningKey::generate(rng),
            ias_public,
            known_measurements: HashSet::new(),
            config_key,
            cert_validity_secs: 365 * 24 * 3600,
            issued: 0,
        }
    }

    /// The CA public key, pre-deployed into enclave binaries (§III-C).
    pub fn public_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// The symmetric key used to encrypt configuration files (shared with
    /// every attested enclave).
    pub fn config_key(&self) -> [u8; 32] {
        self.config_key
    }

    /// Signing key reference for issuing server certificates and signing
    /// configurations (the admin holds the CA).
    pub fn signing_key(&self) -> &SigningKey {
        &self.signing
    }

    /// Whitelists an enclave measurement (the known-good EndBox build).
    pub fn allow_measurement(&mut self, m: Measurement) {
        self.known_measurements.insert(*m.as_bytes());
    }

    /// Number of certificates issued.
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Issues a certificate for a *trusted server* directly (servers are
    /// under central administrative control, §II-D — no attestation).
    pub fn issue_server_certificate(
        &mut self,
        subject: &str,
        public_key: VerifyingKey,
        now_secs: u64,
        rng: &mut impl rand::RngCore,
    ) -> Certificate {
        self.issued += 1;
        Certificate::issue(
            subject,
            public_key,
            now_secs + self.cert_validity_secs,
            &self.signing,
            rng,
        )
    }

    /// Steps 3–6 of Fig. 4: verify the quote via the IAS, check the
    /// measurement, issue a certificate and wrap the config key.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Enrollment`] on any attestation failure.
    pub fn enroll(
        &mut self,
        subject: &str,
        quote: &Quote,
        ias: &IasSimulator,
        now_secs: u64,
        rng: &mut impl rand::RngCore,
    ) -> Result<EnrollmentResponse, EndBoxError> {
        // Step 4: relay to IAS, receive signed verification report.
        let avr = ias.verify_quote(quote, rng);
        avr.verify(&self.ias_public)
            .map_err(|_| EndBoxError::Enrollment("IAS report signature invalid"))?;
        if avr.status != QuoteStatus::Ok {
            return Err(EndBoxError::Enrollment("IAS rejected the quote"));
        }
        // Step 5: only known (audited) EndBox builds get certificates.
        if !self.known_measurements.contains(avr.measurement.as_bytes()) {
            return Err(EndBoxError::Enrollment("unknown enclave measurement"));
        }
        // user_data binds the enclave's keys to the quote.
        let signing_pk_bytes: [u8; 32] = avr.user_data[..32].try_into().unwrap();
        let enc_pk: [u8; 32] = avr.user_data[32..].try_into().unwrap();
        let public_key = VerifyingKey::from_bytes(&signing_pk_bytes)
            .map_err(|_| EndBoxError::Enrollment("bad enclave public key"))?;

        let certificate = Certificate::issue(
            subject,
            public_key,
            now_secs + self.cert_validity_secs,
            &self.signing,
            rng,
        );
        self.issued += 1;

        // Step 6: wrap the config key to the enclave's X25519 key.
        let (eph_secret, kem_public) = x25519::keypair(rng);
        let shared = x25519::shared_secret(&eph_secret, &enc_pk);
        let wrap: [u8; 32] = hkdf(b"endbox-kem", &shared, b"config-key-wrap");
        let mac_key: [u8; 32] = hkdf(b"endbox-kem", &shared, b"config-key-mac");
        let mut wrapped_config_key = [0u8; 32];
        for i in 0..32 {
            wrapped_config_key[i] = self.config_key[i] ^ wrap[i];
        }
        let wrap_mac = hmac_sha256(&mac_key, &wrapped_config_key);
        Ok(EnrollmentResponse {
            certificate,
            kem_public,
            wrapped_config_key,
            wrap_mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use endbox_sgx::attestation::{CpuIdentity, QuotingEnclave, Report};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(404)
    }

    struct World {
        ias: IasSimulator,
        ca: CertificateAuthority,
        cpu: CpuIdentity,
        qe: QuotingEnclave,
        rng: rand::rngs::StdRng,
    }

    fn world() -> World {
        let mut r = rng();
        let cpu = CpuIdentity::from_seed([9u8; 32]);
        let mut ias = IasSimulator::new(&mut r);
        ias.register_platform(cpu.attestation_public());
        let ca = CertificateAuthority::new(ias.public_key(), &mut r);
        let qe = QuotingEnclave::new(cpu.clone());
        World {
            ias,
            ca,
            cpu,
            qe,
            rng: r,
        }
    }

    /// Simulates the enclave side: keys generated, report created.
    fn enclave_keys_and_report(
        w: &mut World,
        measurement: Measurement,
    ) -> (SigningKey, [u8; 32], Report) {
        let identity = SigningKey::generate(&mut w.rng);
        let (enc_secret, enc_public) = x25519::keypair(&mut w.rng);
        let mut user_data = [0u8; 64];
        user_data[..32].copy_from_slice(&identity.verifying_key().to_bytes());
        user_data[32..].copy_from_slice(&enc_public);
        // Only the platform can create valid reports; tests use the
        // crate-internal constructor indirectly via a real enclave in the
        // integration tests. Here we go through a scratch enclave.
        let report = endbox_sgx::EnclaveBuilder::new(b"scratch")
            .cpu(w.cpu.clone())
            .declare_ecalls(["r"])
            .build(|_| ())
            .ecall("r", |_, svc| svc.create_report(user_data))
            .unwrap();
        let _ = measurement;
        (identity, enc_secret, report)
    }

    #[test]
    fn full_enrollment_flow() {
        let mut w = world();
        let (identity, enc_secret, report) =
            enclave_keys_and_report(&mut w, Measurement::of(b"scratch", b""));
        w.ca.allow_measurement(report.measurement);
        let quote = w.qe.quote(&report, &mut w.rng).unwrap();
        let resp =
            w.ca.enroll("client-1", &quote, &w.ias, 0, &mut w.rng)
                .unwrap();
        assert_eq!(resp.certificate.subject, "client-1");
        assert_eq!(resp.certificate.public_key, identity.verifying_key());
        resp.certificate.verify(&w.ca.public_key(), 0).unwrap();
        // Enclave unwraps the config key.
        let key = resp.unwrap_config_key(&enc_secret).unwrap();
        assert_eq!(key, w.ca.config_key());
        assert_eq!(w.ca.issued_count(), 1);
    }

    #[test]
    fn unknown_measurement_rejected() {
        let mut w = world();
        let (_, _, report) = enclave_keys_and_report(&mut w, Measurement::of(b"scratch", b""));
        // Measurement NOT whitelisted.
        let quote = w.qe.quote(&report, &mut w.rng).unwrap();
        assert_eq!(
            w.ca.enroll("client-1", &quote, &w.ias, 0, &mut w.rng)
                .unwrap_err(),
            EndBoxError::Enrollment("unknown enclave measurement")
        );
    }

    #[test]
    fn unregistered_platform_rejected() {
        let mut w = world();
        let rogue_cpu = CpuIdentity::from_seed([66u8; 32]);
        let rogue_qe = QuotingEnclave::new(rogue_cpu.clone());
        let report = endbox_sgx::EnclaveBuilder::new(b"scratch")
            .cpu(rogue_cpu)
            .declare_ecalls(["r"])
            .build(|_| ())
            .ecall("r", |_, svc| svc.create_report([1u8; 64]))
            .unwrap();
        w.ca.allow_measurement(report.measurement);
        let quote = rogue_qe.quote(&report, &mut w.rng).unwrap();
        assert!(w.ca.enroll("x", &quote, &w.ias, 0, &mut w.rng).is_err());
    }

    #[test]
    fn wrong_secret_cannot_unwrap_config_key() {
        let mut w = world();
        let (_, enc_secret, report) =
            enclave_keys_and_report(&mut w, Measurement::of(b"scratch", b""));
        w.ca.allow_measurement(report.measurement);
        let quote = w.qe.quote(&report, &mut w.rng).unwrap();
        let resp =
            w.ca.enroll("client-1", &quote, &w.ias, 0, &mut w.rng)
                .unwrap();
        let mut wrong = enc_secret;
        wrong[5] ^= 1;
        assert!(resp.unwrap_config_key(&wrong).is_none());
    }

    #[test]
    fn server_certificates_issued_directly() {
        let mut w = world();
        let server_key = SigningKey::generate(&mut w.rng);
        let cert = w.ca.issue_server_certificate(
            "endbox-server",
            server_key.verifying_key(),
            0,
            &mut w.rng,
        );
        cert.verify(&w.ca.public_key(), 100).unwrap();
    }
}
