//! The §V-A attack battery. Every function mounts one of the paper's
//! attacks against a live deployment and reports whether the system
//! defended itself; the test suite asserts every outcome is `Defended`.

use crate::config_update::SignedConfig;
use crate::error::EndBoxError;
use crate::scenario::Scenario;
use crate::use_cases::UseCase;
use endbox_netsim::packet::QOS_ENDBOX_PROCESSED;
use endbox_netsim::Packet;
use endbox_sgx::EnclaveError;
use endbox_vpn::handshake::ServerHello;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::{VpnError, PROTOCOL_V1};
use rand::SeedableRng;

/// Outcome of an attack attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack was blocked; explanation of the defending mechanism.
    Defended(&'static str),
    /// The attack succeeded — a reproduction bug if it ever happens.
    Breached(&'static str),
}

impl AttackOutcome {
    /// True if the system defended itself.
    pub fn defended(&self) -> bool {
        matches!(self, AttackOutcome::Defended(_))
    }
}

/// §V-A "Bypassing middlebox functions": a malicious client sends raw,
/// unsealed traffic straight at the server.
pub fn bypass_middlebox(scenario: &mut Scenario) -> AttackOutcome {
    let raw = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        b"traffic that skipped Click",
    );
    // Wrap it into a fake data record without valid keys.
    let record = Record {
        opcode: Opcode::Data,
        session_id: scenario.session_id(0),
        packet_id: 1_000_000,
        payload: {
            let mut p = raw.bytes().to_vec();
            p.extend_from_slice(&[0u8; 32]); // forged tag
            p
        },
    };
    let mut frag = endbox_vpn::frag::Fragmenter::new();
    let datagrams = frag.fragment(&record.to_bytes(), 8_960);
    for d in &datagrams {
        match scenario.server.receive_datagram(99, d) {
            Ok(crate::server::Delivery::Packet { .. }) => {
                return AttackOutcome::Breached("unsealed traffic delivered");
            }
            Ok(_) => {}
            Err(EndBoxError::Vpn(VpnError::AuthenticationFailed)) => {
                return AttackOutcome::Defended(
                    "server only accepts traffic sealed with keys held by a correct EndBox client",
                );
            }
            Err(_) => {
                return AttackOutcome::Defended("record rejected before decryption");
            }
        }
    }
    AttackOutcome::Defended("no fake fragment produced a delivery")
}

/// §V-A "Using old or invalid middlebox configurations": replaying a stale
/// config to the enclave, and running stale after the grace period.
pub fn config_rollback(scenario: &mut Scenario) -> AttackOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Craft an old-version config signed by the real CA (e.g. captured
    // from an earlier deployment).
    let old = SignedConfig::publish(
        &UseCase::Nop.click_config(),
        1, // same as the initial version -> not newer
        scenario.ca.signing_key(),
        None,
        &mut rng,
    );
    match scenario.clients[0].enclave_app().apply_config(&old) {
        Ok(()) => AttackOutcome::Breached("stale config accepted"),
        Err(EndBoxError::ConfigUpdate(_)) => AttackOutcome::Defended(
            "version numbers are embedded in the update and must increase monotonically",
        ),
        Err(_) => AttackOutcome::Defended("config rejected"),
    }
}

/// §V-A: after the grace period expires, a client that kept the old
/// configuration is blocked by the server.
pub fn stale_config_after_grace(scenario: &mut Scenario) -> AttackOutcome {
    // Admin publishes version 2 with zero grace; client 0 refuses to
    // update (malicious) — it never fetches.
    scenario.server.announce_config(2, 0);
    let datagrams = match scenario.clients[0].send_packet(Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        b"stale client traffic",
    )) {
        Ok(d) => d,
        Err(_) => return AttackOutcome::Defended("client-side rejection"),
    };
    for d in &datagrams {
        match scenario.server.receive_datagram(0, d) {
            Ok(crate::server::Delivery::Packet { .. }) => {
                return AttackOutcome::Breached("stale-config traffic delivered after grace");
            }
            Ok(_) => {}
            Err(EndBoxError::Vpn(VpnError::StaleConfiguration { .. })) => {
                return AttackOutcome::Defended(
                    "server blocks clients that did not apply the new configuration",
                );
            }
            Err(_) => return AttackOutcome::Defended("traffic rejected"),
        }
    }
    AttackOutcome::Defended("no stale packet delivered")
}

/// §V-A "Replaying traffic": capture a sealed datagram and replay it.
pub fn replay_traffic(scenario: &mut Scenario) -> AttackOutcome {
    let datagrams = scenario.clients[0]
        .send_packet(Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            0,
            b"legitimate packet",
        ))
        .expect("send");
    // First delivery is legitimate.
    for d in &datagrams {
        let _ = scenario.server.receive_datagram(0, d);
    }
    // Replay the captured datagrams.
    for d in &datagrams {
        match scenario.server.receive_datagram(0, d) {
            Ok(crate::server::Delivery::Packet { .. }) => {
                return AttackOutcome::Breached("replayed packet delivered");
            }
            Ok(_) => {}
            Err(EndBoxError::Vpn(VpnError::Replay)) => {
                return AttackOutcome::Defended(
                    "OpenVPN-style packet-id replay window rejects the duplicate",
                );
            }
            Err(EndBoxError::Vpn(VpnError::Fragmentation(_))) => {
                return AttackOutcome::Defended("duplicate fragments never reassemble twice");
            }
            Err(_) => return AttackOutcome::Defended("replay rejected"),
        }
    }
    AttackOutcome::Defended("replayed datagrams produced no delivery")
}

/// §V-A "Denial-of-service attacks": the host destroys the enclave; only
/// that client loses connectivity.
pub fn enclave_dos(scenario: &mut Scenario) -> AttackOutcome {
    scenario.clients[0].enclave_app().destroy();
    let send = scenario.clients[0].send_packet(Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        b"after dos",
    ));
    let self_harmed = matches!(send, Err(EndBoxError::Enclave(EnclaveError::Destroyed)));
    // Other clients are unaffected.
    let others_fine = if scenario.clients.len() > 1 {
        scenario
            .send_from_client(1, b"unaffected neighbour")
            .is_ok()
    } else {
        true
    };
    if self_harmed && others_fine {
        AttackOutcome::Defended("killing the enclave only disconnects the attacker's own machine")
    } else if !self_harmed {
        AttackOutcome::Breached("client kept network access without its enclave")
    } else {
        AttackOutcome::Breached("DoS on one client affected others")
    }
}

/// §V-A "Downgrade attacks": a MITM rewrites the server's chosen protocol
/// version; the in-enclave check must refuse it.
pub fn downgrade_attack() -> AttackOutcome {
    use crate::client::{EndBoxClient, EndBoxClientConfig};
    use crate::server::{Delivery, EndBoxServer, EndBoxServerConfig};
    use endbox_crypto::schnorr::SigningKey;
    use endbox_sgx::attestation::{CpuIdentity, IasSimulator};
    use endbox_vpn::handshake::HandshakeConfig;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut ias = IasSimulator::new(&mut rng);
    let mut ca = crate::ca::CertificateAuthority::new(ias.public_key(), &mut rng);
    let cpu = CpuIdentity::from_seed([0xd0; 32]);
    ias.register_platform(cpu.attestation_public());

    let mut cfg = EndBoxClientConfig::new("victim", ca.public_key(), cpu);
    cfg.min_version = endbox_vpn::PROTOCOL_V2; // enclave-enforced minimum
    cfg.offered_version = endbox_vpn::PROTOCOL_V2;
    let mut client = EndBoxClient::new(cfg).expect("client");
    ca.allow_measurement(client.enclave_app().measurement());
    client
        .enroll("victim", &mut ca, &ias, &mut rng)
        .expect("enroll");

    let server_key = SigningKey::generate(&mut rng);
    let server_cert =
        ca.issue_server_certificate("endbox-server", server_key.verifying_key(), 0, &mut rng);
    let mut server = EndBoxServer::new(EndBoxServerConfig {
        handshake: HandshakeConfig {
            identity: server_key,
            certificate: server_cert,
            ca_public: ca.public_key(),
            min_version: PROTOCOL_V1,
        },
        suite: endbox_vpn::CipherSuite::Aes128CbcHmac,
        server_click: None,
        cost: endbox_netsim::CostModel::calibrated(),
        meter: endbox_netsim::cost::CycleMeter::new(),
        clock: endbox_netsim::time::SharedClock::new(),
        rng_seed: 5,
    })
    .expect("server");

    let hello = client.connect_start().expect("hello");
    let mut response = None;
    for frag in &hello {
        if let Ok(Delivery::Established { response: r, .. }) = server.receive_datagram(0, frag) {
            response = Some(r);
        }
    }
    let response = response.expect("established");
    // MITM: reassemble, rewrite the chosen version to V1, re-fragment.
    let mut reasm = endbox_vpn::frag::Reassembler::new();
    let mut record_bytes = None;
    for frag in &response {
        if let Ok(Some(b)) = reasm.push(frag) {
            record_bytes = Some(b);
        }
    }
    let record = Record::from_bytes(&record_bytes.unwrap()).unwrap();
    let mut shello = ServerHello::from_bytes(&record.payload).unwrap();
    shello.chosen_version = PROTOCOL_V1;
    let tampered = Record {
        opcode: Opcode::HandshakeResp,
        session_id: record.session_id,
        packet_id: 0,
        payload: shello.to_bytes(),
    };
    let mut frag = endbox_vpn::frag::Fragmenter::new();
    for d in frag.fragment(&tampered.to_bytes(), 8_960) {
        match client.connect_complete(&d) {
            Ok(()) => return AttackOutcome::Breached("downgraded handshake accepted"),
            Err(EndBoxError::Vpn(VpnError::VersionTooLow { .. }))
            | Err(EndBoxError::Vpn(VpnError::BadSignature)) => {
                return AttackOutcome::Defended(
                    "the version check runs inside the enclave and the transcript is signed",
                );
            }
            Err(EndBoxError::NotReady(_)) => {} // more fragments
            Err(_) => return AttackOutcome::Defended("tampered response rejected"),
        }
    }
    AttackOutcome::Defended("handshake never completed on tampered input")
}

/// §V-A "Interface attacks": calling undeclared enclave entry points and
/// feeding malformed parameters.
pub fn interface_attack(scenario: &mut Scenario) -> AttackOutcome {
    // 1. Undeclared ecall (arbitrary code-path probing).
    match scenario.clients[0]
        .enclave_app()
        .try_raw_ecall("ecall_read_arbitrary_memory")
    {
        Err(EndBoxError::Enclave(EnclaveError::UndeclaredCall(_))) => {}
        _ => return AttackOutcome::Breached("undeclared ecall reachable"),
    }
    // 2. Malformed record with an oversized length field (Iago-style).
    let mut evil_payload = vec![0u8; 40];
    evil_payload[0] = 3; // Data opcode
    evil_payload[17] = 0xff; // absurd length field
    let record = Record {
        opcode: Opcode::Data,
        session_id: scenario.session_id(0),
        packet_id: 2,
        payload: evil_payload,
    };
    match scenario.clients[0].enclave_app().process_ingress(&record) {
        Ok(_) => AttackOutcome::Breached("malformed record processed"),
        Err(_) => AttackOutcome::Defended(
            "ecall parameters are sanity-checked; undeclared calls rejected",
        ),
    }
}

/// §IV-A: an external attacker sets the 0xeb QoS byte hoping receiving
/// clients skip their middlebox.
pub fn qos_spoofing(scenario: &mut Scenario) -> AttackOutcome {
    let mut external = Packet::tcp(
        std::net::Ipv4Addr::new(198, 51, 100, 7), // outside the network
        Scenario::client_addr(0),
        4444,
        40_000,
        0,
        b"external packet with spoofed flag",
    );
    external.set_tos(QOS_ENDBOX_PROCESSED);
    scenario.server.sanitize_external(&mut external);
    if external.tos() == QOS_ENDBOX_PROCESSED {
        AttackOutcome::Breached("spoofed QoS flag survived the server")
    } else {
        AttackOutcome::Defended("server strips 0xeb from packets entering the network")
    }
}

/// §III-E: a malicious host crafts a ping announcing a bogus config
/// version to its own enclave (e.g. to freeze updates).
pub fn crafted_ping(scenario: &mut Scenario) -> AttackOutcome {
    let msg = endbox_vpn::ping::PingMessage {
        config_version: u64::MAX,
        grace_period_secs: u32::MAX,
        timestamp_ns: 0,
    };
    let mut payload = msg.to_bytes();
    payload.extend_from_slice(&[0u8; 32]); // forged tag
    let record = Record {
        opcode: Opcode::Ping,
        session_id: scenario.session_id(0),
        packet_id: 77,
        payload,
    };
    match scenario.clients[0].enclave_app().process_ping(&record) {
        Ok(_) => AttackOutcome::Breached("crafted ping accepted"),
        Err(EndBoxError::Vpn(VpnError::AuthenticationFailed)) => {
            AttackOutcome::Defended("ping authenticity is validated inside the enclave")
        }
        Err(_) => AttackOutcome::Defended("crafted ping rejected"),
    }
}

/// Runs the whole battery, returning named outcomes. Attacks that mutate
/// global policy or destroy enclaves run on their own fresh deployments.
pub fn run_all() -> Vec<(&'static str, AttackOutcome)> {
    let mut results = Vec::new();
    let mut s = Scenario::enterprise(2, UseCase::Firewall)
        .build()
        .expect("scenario");
    results.push(("bypass_middlebox", bypass_middlebox(&mut s)));
    results.push(("replay_traffic", replay_traffic(&mut s)));
    results.push(("config_rollback", config_rollback(&mut s)));
    results.push(("qos_spoofing", qos_spoofing(&mut s)));
    results.push(("crafted_ping", crafted_ping(&mut s)));
    results.push(("interface_attack", interface_attack(&mut s)));

    let mut s2 = Scenario::enterprise(2, UseCase::Firewall)
        .seed(0xa77)
        .build()
        .expect("scenario");
    results.push((
        "stale_config_after_grace",
        stale_config_after_grace(&mut s2),
    ));

    let mut s3 = Scenario::enterprise(2, UseCase::Firewall)
        .seed(0xa78)
        .build()
        .expect("scenario");
    results.push(("enclave_dos", enclave_dos(&mut s3)));

    results.push(("downgrade_attack", downgrade_attack()));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_is_defended() {
        for (name, outcome) in run_all() {
            assert!(outcome.defended(), "attack `{name}` breached: {outcome:?}");
        }
    }
}
