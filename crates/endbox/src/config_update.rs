//! Signed, versioned, optionally encrypted Click configurations and the
//! configuration file server (Fig. 5).
//!
//! §III-E: "The CA's public key and the pre-shared key are used to sign
//! and optionally encrypt configuration files to, for example, hide IDPS
//! rules from employees in the enterprise scenario. … To prevent clients
//! from replaying old configuration files, the version number of the
//! update is incorporated inside the update itself. Version numbers
//! increase monotonically with each update."

use endbox_crypto::aes::Aes128;
use endbox_crypto::hmac::{hkdf, HmacSha256};
use endbox_crypto::modes::{cbc_decrypt, cbc_encrypt};
use endbox_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use endbox_crypto::CryptoError;
use std::collections::BTreeMap;

/// A published configuration: signed by the CA; payload optionally
/// encrypted under the shared config key.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedConfig {
    /// Version number (monotonically increasing).
    pub version: u64,
    /// True if `payload` is encrypted (enterprise scenario; the ISP
    /// scenario publishes plaintext so customers can inspect rules).
    pub encrypted: bool,
    /// The configuration body (or its ciphertext).
    pub payload: Vec<u8>,
    signature: Signature,
}

fn signing_bytes(version: u64, encrypted: bool, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(14 + 9 + payload.len());
    v.extend_from_slice(b"endbox-config");
    v.extend_from_slice(&version.to_be_bytes());
    v.push(encrypted as u8);
    v.extend_from_slice(payload);
    v
}

fn config_keys(shared: &[u8; 32]) -> ([u8; 16], [u8; 32]) {
    (
        hkdf(b"endbox-config", shared, b"enc"),
        hkdf(b"endbox-config", shared, b"mac"),
    )
}

impl SignedConfig {
    /// Builds the inner body: `version || click_text` — the version is
    /// "incorporated inside the update itself".
    fn inner_bytes(version: u64, click_text: &str) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + click_text.len());
        v.extend_from_slice(&version.to_be_bytes());
        v.extend_from_slice(click_text.as_bytes());
        v
    }

    /// Splits an inner body back into `(version, click_text)`.
    pub fn split_inner(inner: &[u8]) -> Option<(u64, &str)> {
        if inner.len() < 8 {
            return None;
        }
        let version = u64::from_be_bytes(inner[..8].try_into().unwrap());
        let text = std::str::from_utf8(&inner[8..]).ok()?;
        Some((version, text))
    }

    /// Publishes a new configuration: sign (and optionally encrypt) it.
    pub fn publish(
        click_text: &str,
        version: u64,
        admin_key: &SigningKey,
        encrypt_with: Option<&[u8; 32]>,
        rng: &mut impl rand::RngCore,
    ) -> SignedConfig {
        let inner = Self::inner_bytes(version, click_text);
        let (encrypted, payload) = match encrypt_with {
            None => (false, inner),
            Some(shared) => {
                let (enc_key, mac_key) = config_keys(shared);
                let mut iv = [0u8; 16];
                rng.fill_bytes(&mut iv);
                let aes = Aes128::new(&enc_key);
                let ct = cbc_encrypt(&aes, &iv, &inner);
                let mut body = Vec::with_capacity(16 + ct.len() + 32);
                body.extend_from_slice(&iv);
                body.extend_from_slice(&ct);
                let mut mac = HmacSha256::new(&mac_key);
                mac.update(&body);
                let tag = mac.finalize();
                body.extend_from_slice(&tag);
                (true, body)
            }
        };
        let signature = admin_key.sign(&signing_bytes(version, encrypted, &payload), rng);
        SignedConfig {
            version,
            encrypted,
            payload,
            signature,
        }
    }

    /// Verifies the CA signature.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidSignature`] if it does not verify.
    pub fn verify(&self, ca_public: &VerifyingKey) -> Result<(), CryptoError> {
        ca_public.verify(
            &signing_bytes(self.version, self.encrypted, &self.payload),
            &self.signature,
        )
    }

    /// Decrypts an encrypted payload with the shared config key; `None` on
    /// MAC/padding failure or if the config is not encrypted.
    pub fn decrypt(&self, shared: &[u8; 32]) -> Option<Vec<u8>> {
        if !self.encrypted || self.payload.len() < 16 + 16 + 32 {
            return None;
        }
        let (enc_key, mac_key) = config_keys(shared);
        let (body, tag) = self.payload.split_at(self.payload.len() - 32);
        let mut mac = HmacSha256::new(&mac_key);
        mac.update(body);
        if !mac.verify(tag) {
            return None;
        }
        let iv: [u8; 16] = body[..16].try_into().unwrap();
        let aes = Aes128::new(&enc_key);
        cbc_decrypt(&aes, &iv, &body[16..]).ok()
    }

    /// Convenience: the plaintext Click text for unencrypted configs.
    pub fn plaintext_click(&self) -> Option<&str> {
        if self.encrypted {
            return None;
        }
        Self::split_inner(&self.payload).map(|(_, text)| text)
    }
}

/// The trusted configuration file server ("The files are stored on a
/// trusted server located in the managed network that is publicly
/// accessible", §III-E).
#[derive(Debug, Default)]
pub struct ConfigServer {
    configs: BTreeMap<u64, SignedConfig>,
}

impl ConfigServer {
    /// Empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uploads a new configuration (Fig. 5 step 1).
    ///
    /// # Panics
    ///
    /// Panics if the version is not strictly newer than everything
    /// published (admin error).
    pub fn upload(&mut self, config: SignedConfig) {
        if let Some((&latest, _)) = self.configs.iter().next_back() {
            assert!(config.version > latest, "config versions must increase");
        }
        self.configs.insert(config.version, config);
    }

    /// Fetches a configuration by version (Fig. 5 steps 6–7).
    pub fn fetch(&self, version: u64) -> Option<&SignedConfig> {
        self.configs.get(&version)
    }

    /// The newest published version (0 if none).
    pub fn latest_version(&self) -> u64 {
        self.configs.keys().next_back().copied().unwrap_or(0)
    }

    /// Size in bytes of the stored config (for fetch-latency modelling).
    pub fn config_size(&self, version: u64) -> Option<usize> {
        self.configs.get(&version).map(|c| c.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3030)
    }

    #[test]
    fn plaintext_publish_verify() {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let cfg = SignedConfig::publish("FromDevice(t) -> ToDevice(t);", 3, &ca, None, &mut r);
        cfg.verify(&ca.verifying_key()).unwrap();
        assert_eq!(cfg.plaintext_click(), Some("FromDevice(t) -> ToDevice(t);"));
        let (v, text) = SignedConfig::split_inner(&cfg.payload).unwrap();
        assert_eq!(v, 3);
        assert_eq!(text, "FromDevice(t) -> ToDevice(t);");
    }

    #[test]
    fn encrypted_publish_roundtrip() {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let key = [0x55u8; 32];
        let cfg = SignedConfig::publish("secret ids rules", 9, &ca, Some(&key), &mut r);
        cfg.verify(&ca.verifying_key()).unwrap();
        assert!(cfg.encrypted);
        assert!(cfg.plaintext_click().is_none());
        // Rules are hidden from the employee (§III-E).
        assert!(!cfg.payload.windows(6).any(|w| w == b"secret"));
        let inner = cfg.decrypt(&key).unwrap();
        let (v, text) = SignedConfig::split_inner(&inner).unwrap();
        assert_eq!((v, text), (9, "secret ids rules"));
    }

    #[test]
    fn wrong_key_fails_decrypt() {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let cfg = SignedConfig::publish("x", 1, &ca, Some(&[1u8; 32]), &mut r);
        assert!(cfg.decrypt(&[2u8; 32]).is_none());
    }

    #[test]
    fn tampered_config_fails_verification() {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let mut cfg = SignedConfig::publish("benign", 1, &ca, None, &mut r);
        cfg.payload[9] ^= 1;
        assert!(cfg.verify(&ca.verifying_key()).is_err());
        // Version swap also breaks the signature.
        let mut cfg2 = SignedConfig::publish("benign", 1, &ca, None, &mut r);
        cfg2.version = 2;
        assert!(cfg2.verify(&ca.verifying_key()).is_err());
    }

    #[test]
    fn server_enforces_monotonic_uploads() {
        let mut r = rng();
        let ca = SigningKey::generate(&mut r);
        let mut server = ConfigServer::new();
        server.upload(SignedConfig::publish("a", 1, &ca, None, &mut r));
        server.upload(SignedConfig::publish("b", 2, &ca, None, &mut r));
        assert_eq!(server.latest_version(), 2);
        assert!(server.fetch(1).is_some());
        assert!(server.fetch(3).is_none());
        assert!(server.config_size(2).unwrap() > 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.upload(SignedConfig::publish("c", 2, &ca, None, &mut r));
        }));
        assert!(result.is_err(), "non-monotonic upload must panic");
    }
}
