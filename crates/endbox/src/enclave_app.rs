//! The trusted half of the EndBox client: everything inside the SGX
//! enclave.
//!
//! Per Fig. 3, the enclave contains the Click router, the VPN data-channel
//! cryptography and all key material; packet encapsulation, fragmentation
//! and socket I/O stay outside. The hot path performs **one ecall per
//! packet** ("ENDBOX performs only one ecall per sent or received packet",
//! §IV-A); the `batched_ecalls(false)` configuration reproduces the
//! unoptimised TaLoS-style variant (one boundary crossing per crypto
//! operation) for the §V-G ablation.

use crate::ca::EnrollmentResponse;
use crate::config_update::SignedConfig;
use crate::error::EndBoxError;
use crate::interface;
use endbox_click::element::{ElementEnv, FlowId, SessionKeyStore};
use endbox_click::Router;
use endbox_crypto::schnorr::{SigningKey, VerifyingKey};
use endbox_crypto::x25519;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::packet::QOS_ENDBOX_PROCESSED;
use endbox_netsim::time::SharedClock;
use endbox_netsim::{BufferPool, Packet, PacketBatch, PoolStats};
use endbox_sgx::attestation::{CpuIdentity, Report};
use endbox_sgx::{Enclave, EnclaveBuilder, SgxMode};
use endbox_vpn::channel::{CipherSuite, DataChannel};
use endbox_vpn::handshake::{
    client_complete, client_start, ClientState, HandshakeConfig, ServerHello,
};
use endbox_vpn::ping::PingMessage;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::{Certificate, VpnError};

/// Configuration for the enclave application.
#[derive(Debug, Clone)]
pub struct EnclaveAppConfig {
    /// Subject name used on the client certificate.
    pub subject: String,
    /// Execution mode (hardware vs SDK simulation).
    pub mode: SgxMode,
    /// Data-channel suite (enterprise: CBC+HMAC; ISP: integrity-only).
    pub suite: CipherSuite,
    /// Initial Click configuration.
    pub click_config: String,
    /// Version number of the initial configuration.
    pub click_config_version: u64,
    /// CA public key baked into the enclave binary (covered by the
    /// measurement, §III-C).
    pub ca_public: VerifyingKey,
    /// Protocol version offered in the handshake.
    pub offered_version: u8,
    /// Minimum protocol version accepted (checked *inside* the enclave).
    pub min_version: u8,
    /// Enable the client-to-client QoS flagging optimisation (§IV-A).
    pub c2c_flagging: bool,
    /// One ecall per packet (true, the EndBox optimisation) or one call
    /// per crypto operation (false, the naive baseline).
    pub batched_ecalls: bool,
    /// Cost model.
    pub cost: CostModel,
    /// Cycle meter of the client machine.
    pub meter: CycleMeter,
    /// Simulation clock.
    pub clock: SharedClock,
    /// Platform identity.
    pub cpu: CpuIdentity,
    /// Deterministic RNG seed for in-enclave randomness.
    pub rng_seed: u64,
}

/// Result of processing an egress packet.
#[derive(Debug)]
pub enum EgressResult {
    /// Packet accepted by the middlebox; sealed record ready for
    /// fragmentation and transmission.
    Sealed(Record),
    /// Packet rejected by the middlebox (firewall/IDS drop).
    Dropped,
}

/// Result of processing an egress batch in one enclave transition.
#[derive(Debug)]
pub struct EgressBatchResult {
    /// One sealed `DataBatch` record covering every accepted packet, or
    /// `None` when the middlebox dropped the whole batch.
    pub record: Option<Record>,
    /// Input packets accepted by the middlebox.
    pub accepted: usize,
    /// Input packets rejected by the middlebox.
    pub dropped: usize,
}

/// Result of processing an ingress batch record.
#[derive(Debug)]
pub struct IngressBatchResult {
    /// Packets delivered to the application, in batch order.
    pub packets: Vec<Packet>,
    /// Packets the record carried (delivered + middlebox-dropped).
    pub frames: usize,
}

/// Trusted state living inside the enclave.
struct TrustedState {
    subject: String,
    identity: Option<SigningKey>,
    enc_secret: Option<[u8; 32]>,
    certificate: Option<Certificate>,
    config_key: Option<[u8; 32]>,
    click: Router,
    config_version: u64,
    channel: Option<DataChannel>,
    session_id: u64,
    pending_handshake: Option<ClientState>,
    suite: CipherSuite,
    offered_version: u8,
    min_version: u8,
    ca_public: VerifyingKey,
    c2c_flagging: bool,
    tls_keys: SessionKeyStore,
    server_required_version: u64,
    accepted: u64,
    dropped: u64,
    c2c_bypassed: u64,
    /// In-enclave buffer pool backing ingress packet materialisation —
    /// the client-side mirror of the server shards' per-shard pools.
    pool: BufferPool,
}

impl std::fmt::Debug for TrustedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedState")
            .field("subject", &self.subject)
            .field("enrolled", &self.certificate.is_some())
            .field("config_version", &self.config_version)
            .finish()
    }
}

/// The enclave application: a typed wrapper around the raw enclave whose
/// methods correspond to the declared ecalls.
#[derive(Debug)]
pub struct EnclaveApp {
    enclave: Enclave<TrustedState>,
    batched: bool,
    cost: CostModel,
}

impl EnclaveApp {
    /// Creates and initialises the enclave (Click instance included).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] if the initial configuration is invalid.
    pub fn new(cfg: EnclaveAppConfig) -> Result<EnclaveApp, EndBoxError> {
        let tls_keys = SessionKeyStore::new();
        let click_env = ElementEnv {
            cost: cfg.cost.clone(),
            meter: cfg.meter.clone(),
            clock: cfg.clock.clone(),
            in_enclave: true,
            hardware_mode: cfg.mode == SgxMode::Hardware,
            device_io: false,
            tls_keys: tls_keys.clone(),
        };
        let click = Router::from_config(&cfg.click_config, click_env)?;
        let state = TrustedState {
            subject: cfg.subject,
            identity: None,
            enc_secret: None,
            certificate: None,
            config_key: None,
            click,
            config_version: cfg.click_config_version,
            channel: None,
            session_id: 0,
            pending_handshake: None,
            suite: cfg.suite,
            offered_version: cfg.offered_version,
            min_version: cfg.min_version,
            ca_public: cfg.ca_public,
            c2c_flagging: cfg.c2c_flagging,
            tls_keys,
            server_required_version: 0,
            accepted: 0,
            dropped: 0,
            c2c_bypassed: 0,
            pool: BufferPool::new(),
        };
        let enclave = EnclaveBuilder::new(b"endbox-client-enclave-v1")
            .embedded_config(&cfg.ca_public.to_bytes())
            .mode(cfg.mode)
            .declare_ecalls(interface::all_ecalls())
            .declare_ocalls(interface::OCALLS)
            .cost_model(cfg.cost.clone())
            .meter(cfg.meter.clone())
            .cpu(cfg.cpu)
            .clock(cfg.clock)
            .rng_seed(cfg.rng_seed)
            .build(|services| {
                // The trusted part of EndBox comprises ~320 kLOC of code
                // plus the IDS automaton and Click graph: account the
                // enclave's resident set against the EPC.
                services.epc_alloc(48 * 1024 * 1024);
                state
            });
        Ok(EnclaveApp {
            enclave,
            batched: cfg.batched_ecalls,
            cost: cfg.cost,
        })
    }

    // --- enrollment (Fig. 4) ----------------------------------------------

    /// Step 1–2: generate the key pair inside the enclave and produce a
    /// report binding the public keys.
    ///
    /// # Errors
    ///
    /// Enclave interface errors.
    pub fn begin_enrollment(&mut self) -> Result<Report, EndBoxError> {
        self.enclave
            .ecall("ecall_keypair_generate", |state, services| {
                let identity = SigningKey::generate(services.rng());
                let (enc_secret, enc_public) = x25519::keypair(services.rng());
                let mut user_data = [0u8; 64];
                user_data[..32].copy_from_slice(&identity.verifying_key().to_bytes());
                user_data[32..].copy_from_slice(&enc_public);
                state.identity = Some(identity);
                state.enc_secret = Some(enc_secret);
                user_data
            })?;
        let report = self
            .enclave
            .ecall("ecall_report_create", |state, services| {
                let identity = state.identity.as_ref().expect("generated above");
                let enc_public = x25519::public_key(state.enc_secret.as_ref().unwrap());
                let mut user_data = [0u8; 64];
                user_data[..32].copy_from_slice(&identity.verifying_key().to_bytes());
                user_data[32..].copy_from_slice(&enc_public);
                services.create_report(user_data)
            })?;
        Ok(report)
    }

    /// Step 6–7: install the CA-issued certificate and the wrapped config
    /// key; seal the enrollment state for persistence.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Enrollment`] if the certificate does not match the
    /// in-enclave keys or fails CA validation.
    pub fn finish_enrollment(
        &mut self,
        response: &EnrollmentResponse,
        now_secs: u64,
    ) -> Result<Vec<u8>, EndBoxError> {
        self.enclave
            .ecall("ecall_enrollment_finish", |state, services| {
                let identity = state
                    .identity
                    .as_ref()
                    .ok_or(EndBoxError::Enrollment("no key pair"))?;
                if response.certificate.public_key != identity.verifying_key() {
                    return Err(EndBoxError::Enrollment("certificate key mismatch"));
                }
                if response.certificate.subject != state.subject {
                    return Err(EndBoxError::Enrollment("certificate subject mismatch"));
                }
                response
                    .certificate
                    .verify(&state.ca_public, now_secs)
                    .map_err(|_| EndBoxError::Enrollment("CA signature invalid"))?;
                // Unwrap the symmetric config key (X25519 KEM).
                let enc_secret = *state
                    .enc_secret
                    .as_ref()
                    .ok_or(EndBoxError::Enrollment("no enc key"))?;
                let config_key = response
                    .unwrap_config_key(&enc_secret)
                    .ok_or(EndBoxError::Enrollment("config key unwrap failed"))?;
                state.certificate = Some(response.certificate.clone());
                state.config_key = Some(config_key);

                // Seal (identity secret, certificate, config key) — §III-C
                // step 7: "the enclave persistently stores the generated key
                // pair as well as the certificate using the SGX sealing
                // feature". The blob only unseals on the same CPU inside the
                // same enclave code.
                let mut blob = Vec::new();
                blob.extend_from_slice(&identity.to_bytes());
                blob.extend_from_slice(&enc_secret);
                blob.extend_from_slice(&config_key);
                let cert_bytes = response.certificate.to_bytes();
                blob.extend_from_slice(&(cert_bytes.len() as u32).to_be_bytes());
                blob.extend_from_slice(&cert_bytes);
                Ok(services.seal(&blob))
            })?
    }

    /// Restores enrollment state from a sealed blob produced by
    /// [`EnclaveApp::finish_enrollment`] — so "an enclave only has to be
    /// attested once" (§III-C): after a restart the client reconnects
    /// without talking to the CA or IAS again.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Enrollment`] if the blob fails to unseal (wrong CPU
    /// or different enclave code) or is malformed.
    pub fn restore_enrollment(&mut self, sealed: &[u8]) -> Result<(), EndBoxError> {
        self.enclave
            .ecall("ecall_sealed_state_restore", |state, services| {
                let blob = services
                    .unseal(sealed)
                    .map_err(|_| EndBoxError::Enrollment("sealed state failed to unseal"))?;
                if blob.len() < 32 + 32 + 32 + 4 {
                    return Err(EndBoxError::Enrollment("sealed state truncated"));
                }
                let identity = SigningKey::from_bytes(&blob[..32].try_into().unwrap())
                    .map_err(|_| EndBoxError::Enrollment("sealed identity invalid"))?;
                let enc_secret: [u8; 32] = blob[32..64].try_into().unwrap();
                let config_key: [u8; 32] = blob[64..96].try_into().unwrap();
                let cert_len = u32::from_be_bytes(blob[96..100].try_into().unwrap()) as usize;
                if blob.len() < 100 + cert_len {
                    return Err(EndBoxError::Enrollment("sealed state truncated"));
                }
                let certificate = Certificate::from_bytes(&blob[100..100 + cert_len])
                    .map_err(|_| EndBoxError::Enrollment("sealed certificate invalid"))?;
                if certificate.public_key != identity.verifying_key() {
                    return Err(EndBoxError::Enrollment("sealed state inconsistent"));
                }
                state.identity = Some(identity);
                state.enc_secret = Some(enc_secret);
                state.config_key = Some(config_key);
                state.certificate = Some(certificate);
                Ok(())
            })?
    }

    /// True once enrolled (certificate installed).
    pub fn is_enrolled(&mut self) -> bool {
        self.enclave
            .ecall("ecall_certificate_read", |state, _| {
                state.certificate.is_some()
            })
            .unwrap_or(false)
    }

    // --- handshake ----------------------------------------------------------

    /// Starts the VPN handshake, returning the ClientHello record.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before enrollment.
    pub fn handshake_start(&mut self) -> Result<Record, EndBoxError> {
        self.enclave
            .ecall("ecall_handshake_start", |state, services| {
                let identity = state
                    .identity
                    .clone()
                    .ok_or(EndBoxError::NotReady("not enrolled: no identity"))?;
                let certificate = state
                    .certificate
                    .clone()
                    .ok_or(EndBoxError::NotReady("not enrolled: no certificate"))?;
                let cfg = HandshakeConfig {
                    identity,
                    certificate,
                    ca_public: state.ca_public,
                    min_version: state.min_version,
                };
                let (hello, pending) = client_start(
                    &cfg,
                    state.offered_version,
                    state.config_version,
                    services.rng(),
                );
                state.pending_handshake = Some(pending);
                Ok(Record {
                    opcode: Opcode::HandshakeInit,
                    session_id: 0,
                    packet_id: 0,
                    payload: hello.to_bytes(),
                })
            })?
    }

    /// Completes the handshake from the server's response. The minimum
    /// protocol version check happens here, inside the enclave, so the
    /// untrusted host cannot downgrade the connection (§V-A).
    ///
    /// # Errors
    ///
    /// Handshake validation failures.
    pub fn handshake_complete(&mut self, response: &Record) -> Result<u64, EndBoxError> {
        let cost = self.cost.clone();
        self.enclave
            .ecall("ecall_handshake_complete", |state, services| {
                let hello = ServerHello::from_bytes(&response.payload)?;
                let pending = state
                    .pending_handshake
                    .take()
                    .ok_or(EndBoxError::NotReady("no handshake in progress"))?;
                let cfg = HandshakeConfig {
                    identity: state
                        .identity
                        .clone()
                        .ok_or(EndBoxError::NotReady("no identity"))?,
                    certificate: state
                        .certificate
                        .clone()
                        .ok_or(EndBoxError::NotReady("no certificate"))?,
                    ca_public: state.ca_public,
                    min_version: state.min_version,
                };
                let now_secs = services.trusted_now().as_secs_f64() as u64;
                let keys = client_complete(&cfg, &pending, &hello, now_secs)?;
                state.channel = Some(DataChannel::client(
                    &keys,
                    state.suite,
                    services_meter(services),
                    cost.clone(),
                ));
                state.session_id = hello.session_id;
                state.server_required_version = hello.required_config_version;
                Ok(hello.session_id)
            })?
    }

    // --- data path ----------------------------------------------------------

    /// Processes one egress IP packet: Click middlebox, then seal. One
    /// ecall in batched mode.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before the handshake completes.
    pub fn process_egress(&mut self, packet: Packet) -> Result<EgressResult, EndBoxError> {
        let result = self
            .enclave
            .ecall("ecall_packet_encrypt", |state, services| {
                if state.channel.is_none() {
                    return Err(EndBoxError::NotReady("no established channel"));
                }
                // Copying the packet across the boundary costs partition
                // overhead plus EPC traffic in hardware mode.
                services.charge(
                    services.cost_model().partition_per_packet
                        + (services.cost_model().partition_per_byte * packet.len() as f64) as u64,
                );
                services.charge_epc_traffic(packet.len());

                let out = state.click.process(packet);
                if !out.accepted {
                    state.dropped += 1;
                    return Ok(EgressResult::Dropped);
                }
                state.accepted += 1;
                let mut accepted_packet = out
                    .emitted
                    .into_iter()
                    .next()
                    .expect("accepted implies one emitted");
                if state.c2c_flagging {
                    // Mark as already-processed so a receiving EndBox client
                    // can skip Click (§IV-A).
                    accepted_packet.set_tos(QOS_ENDBOX_PROCESSED);
                }
                let channel = state.channel.as_mut().unwrap();
                let record = channel.seal(Opcode::Data, state.session_id, accepted_packet.bytes());
                Ok(EgressResult::Sealed(record))
            })?;
        if !self.batched {
            self.charge_unbatched_crypto_calls()?;
        }
        result
    }

    /// Processes a whole egress batch in **one** enclave transition: the
    /// batch crosses the boundary once (amortising the fixed partition
    /// cost), traverses Click as one [`PacketBatch`], and every accepted
    /// packet is sealed into a single `DataBatch` record (one IV/MAC and
    /// one fixed crypto charge for the whole batch — the §IV batching
    /// optimisation taken from "one ecall per packet" to "one ecall per
    /// batch").
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before the handshake completes.
    pub fn process_egress_batch(
        &mut self,
        batch: PacketBatch,
    ) -> Result<EgressBatchResult, EndBoxError> {
        let result = self
            .enclave
            .ecall("ecall_packet_encrypt", |state, services| {
                if state.channel.is_none() {
                    return Err(EndBoxError::NotReady("no established channel"));
                }
                let n = batch.len();
                let total_bytes = batch.total_bytes();
                // One boundary crossing for the whole batch: fixed partition
                // overhead paid once, the copy cost per byte as usual.
                services.charge(
                    services.cost_model().partition_per_packet
                        + (services.cost_model().partition_per_byte * total_bytes as f64) as u64,
                );
                services.charge_epc_traffic(total_bytes);

                let out = state.click.process_batch(batch);
                let accepted = out.accepted;
                let dropped = n - accepted;
                state.accepted += accepted as u64;
                state.dropped += dropped as u64;
                if accepted == 0 {
                    return Ok(EgressBatchResult {
                        record: None,
                        accepted,
                        dropped,
                    });
                }
                let mut emitted = out.into_first_emissions();
                if state.c2c_flagging {
                    for pkt in &mut emitted {
                        pkt.set_tos(QOS_ENDBOX_PROCESSED);
                    }
                }
                let payloads: Vec<&[u8]> = emitted.iter().map(Packet::bytes).collect();
                let channel = state.channel.as_mut().unwrap();
                let record = channel.seal_batch(state.session_id, &payloads);
                Ok(EgressBatchResult {
                    record: Some(record),
                    accepted,
                    dropped,
                })
            })?;
        if !self.batched {
            self.charge_unbatched_crypto_calls()?;
        }
        result
    }

    /// Processes one ingress record: open, then Click (unless the packet
    /// carries the client-to-client flag), then deliver.
    ///
    /// # Errors
    ///
    /// Authentication/replay failures from the channel.
    pub fn process_ingress(&mut self, record: &Record) -> Result<Option<Packet>, EndBoxError> {
        let result = self
            .enclave
            .ecall("ecall_packet_decrypt", |state, services| {
                let channel = state
                    .channel
                    .as_mut()
                    .ok_or(EndBoxError::NotReady("no established channel"))?;
                let payload = channel.open(record)?;
                services.charge(
                    services.cost_model().partition_per_packet
                        + (services.cost_model().partition_per_byte * payload.len() as f64) as u64,
                );
                services.charge_epc_traffic(payload.len());
                // Zero-copy adoption: the decrypt's own allocation becomes
                // the pool-managed packet backing store, mirroring the
                // server shards' single-record path.
                let packet = Packet::from_vec_in(&state.pool, payload)
                    .map_err(|_| EndBoxError::Vpn(VpnError::Malformed("bad tunnelled packet")))?;

                if state.c2c_flagging && packet.tos() == QOS_ENDBOX_PROCESSED {
                    // Flagged by the sending EndBox client: skip re-processing.
                    // The flag is trustworthy because all records are
                    // integrity-protected (§IV-A).
                    state.c2c_bypassed += 1;
                    return Ok(Some(packet));
                }
                let out = state.click.process(packet);
                if !out.accepted {
                    state.dropped += 1;
                    return Ok(None);
                }
                state.accepted += 1;
                Ok(out.emitted.into_iter().next())
            })?;
        if !self.batched {
            self.charge_unbatched_crypto_calls()?;
        }
        result
    }

    /// Processes an ingress `DataBatch` record in **one** enclave
    /// transition: open once into frame handles (no per-frame copy),
    /// materialise pool-backed packets in one pass — the same
    /// `open_batch_frames` + pooled-materialisation ingress the server
    /// shards use — then run every non-bypassed packet through Click as a
    /// single batch. Delivered packets keep the batch's original order.
    ///
    /// # Errors
    ///
    /// Authentication/replay/framing failures from the channel.
    pub fn process_ingress_batch(
        &mut self,
        record: &Record,
    ) -> Result<IngressBatchResult, EndBoxError> {
        let result = self
            .enclave
            .ecall("ecall_packet_decrypt", |state, services| {
                let channel = state
                    .channel
                    .as_mut()
                    .ok_or(EndBoxError::NotReady("no established channel"))?;
                let batch_frames = channel.open_batch_frames(record)?;
                let frames = batch_frames.len();
                let total_bytes = batch_frames.total_bytes();
                services.charge(
                    services.cost_model().partition_per_packet
                        + (services.cost_model().partition_per_byte * total_bytes as f64) as u64,
                );
                services.charge_epc_traffic(total_bytes);

                // One pass, one copy: frames go straight from the decrypted
                // blob into pool-recycled buffers, and a malformed frame
                // aborts the whole batch before any counters move.
                let packets = endbox_vpn::shard::materialize_frames(&state.pool, batch_frames)
                    .map_err(EndBoxError::Vpn)?;

                // Split the batch into flagged (client-to-client bypass) and
                // Click-bound packets, remembering each Click packet's
                // original position so delivery order is preserved.
                let mut delivered: Vec<Option<Packet>> = (0..frames).map(|_| None).collect();
                let mut to_click = PacketBatch::with_capacity(frames);
                let mut click_origin = Vec::with_capacity(frames);
                for (i, packet) in packets.into_iter().enumerate() {
                    if state.c2c_flagging && packet.tos() == QOS_ENDBOX_PROCESSED {
                        state.c2c_bypassed += 1;
                        delivered[i] = Some(packet);
                    } else {
                        click_origin.push(i);
                        to_click.push(packet);
                    }
                }
                let n_click = to_click.len();
                let out = state.click.process_batch(to_click);
                state.accepted += out.accepted as u64;
                state.dropped += (n_click - out.accepted) as u64;
                for (slot, pkt) in out.first_emissions_by_slot().into_iter().enumerate() {
                    if let Some(pkt) = pkt {
                        delivered[click_origin[slot]] = Some(pkt);
                    }
                }
                Ok(IngressBatchResult {
                    packets: delivered.into_iter().flatten().collect(),
                    frames,
                })
            })?;
        if !self.batched {
            self.charge_unbatched_crypto_calls()?;
        }
        result
    }

    /// The naive (pre-optimisation) boundary layout, i.e. linking OpenVPN
    /// against an in-enclave TLS library without restructuring: every
    /// libcrypto call crosses the boundary — cipher context set-up, IV
    /// generation, per-buffer encrypt update/final, HMAC init/update/
    /// final, packet-id bookkeeping and RNG reads. Twelve extra
    /// transitions per packet on top of the combined call (§IV-A / §V-G
    /// ablation; the paper reports the batched layout is 4.4x faster).
    fn charge_unbatched_crypto_calls(&mut self) -> Result<(), EndBoxError> {
        for _ in 0..6 {
            self.enclave.ecall("ecall_mac_generate", |_, _| ())?;
        }
        for _ in 0..5 {
            self.enclave.ecall("ecall_mac_verify", |_, _| ())?;
        }
        self.enclave.ecall("ecall_crypto_self_test", |_, _| ())?;
        Ok(())
    }

    // --- pings & configuration (Fig. 5) -------------------------------------

    /// Builds the client's periodic ping, proving its config version.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before the handshake completes.
    pub fn build_ping(&mut self) -> Result<Record, EndBoxError> {
        self.enclave.ecall("ecall_ping_build", |state, services| {
            let now = services.trusted_now().as_nanos();
            let msg = PingMessage {
                config_version: state.config_version,
                grace_period_secs: 0,
                timestamp_ns: now,
            };
            let session_id = state.session_id;
            let channel = state
                .channel
                .as_mut()
                .ok_or(EndBoxError::NotReady("no channel"))?;
            Ok(channel.seal(Opcode::Ping, session_id, &msg.to_bytes()))
        })?
    }

    /// Processes a server ping; authenticity is validated inside the
    /// enclave before the announcement is believed (§III-E).
    ///
    /// # Errors
    ///
    /// Authentication failures for crafted pings.
    pub fn process_ping(&mut self, record: &Record) -> Result<PingMessage, EndBoxError> {
        self.enclave.ecall("ecall_ping_process", |state, _| {
            let channel = state
                .channel
                .as_mut()
                .ok_or(EndBoxError::NotReady("no channel"))?;
            let payload = channel.open(record)?;
            let msg = PingMessage::from_bytes(&payload)?;
            if msg.config_version > state.server_required_version {
                state.server_required_version = msg.config_version;
            }
            Ok(msg)
        })?
    }

    /// Latest configuration version announced by the server.
    pub fn server_required_version(&mut self) -> u64 {
        self.enclave
            .ecall("ecall_config_version_read", |state, _| {
                state.server_required_version
            })
            .unwrap_or(0)
    }

    /// Verifies, decrypts and applies a configuration update, hot-swapping
    /// the in-enclave Click instance.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::ConfigUpdate`] on bad signatures, version replay, or
    /// undecryptable payloads.
    pub fn apply_config(&mut self, signed: &SignedConfig) -> Result<(), EndBoxError> {
        self.enclave
            .ecall("ecall_config_apply", |state, services| {
                services.charge(services.cost_model().sig_verify);
                signed
                    .verify(&state.ca_public)
                    .map_err(|_| EndBoxError::ConfigUpdate("signature invalid"))?;
                // Monotonic version check: rejecting old versions prevents
                // replaying stale configurations (§III-E).
                if signed.version <= state.config_version {
                    return Err(EndBoxError::ConfigUpdate("version not newer (replay?)"));
                }
                let inner = if signed.encrypted {
                    let key = state
                        .config_key
                        .as_ref()
                        .ok_or(EndBoxError::ConfigUpdate("no config key installed"))?;
                    services.charge(services.cost_model().crypto_cycles(signed.payload.len()));
                    signed
                        .decrypt(key)
                        .ok_or(EndBoxError::ConfigUpdate("decryption failed"))?
                } else {
                    signed.payload.clone()
                };
                // The version is also embedded *inside* the (possibly
                // encrypted) payload; both must agree.
                let (inner_version, click_text) = SignedConfig::split_inner(&inner)
                    .ok_or(EndBoxError::ConfigUpdate("malformed config body"))?;
                if inner_version != signed.version {
                    return Err(EndBoxError::ConfigUpdate("inner/outer version mismatch"));
                }
                state
                    .click
                    .hot_swap(click_text)
                    .map_err(|_| EndBoxError::ConfigUpdate("config rejected by Click"))?;
                state.config_version = signed.version;
                Ok(())
            })?
    }

    /// The config version currently applied.
    pub fn config_version(&mut self) -> u64 {
        self.enclave
            .ecall("ecall_config_version_read", |state, _| state.config_version)
            .unwrap_or(0)
    }

    // --- TLS key forwarding (§III-D) -----------------------------------------

    /// Registers a TLS session key forwarded by the client's patched TLS
    /// library over the management interface.
    ///
    /// # Errors
    ///
    /// Enclave interface errors.
    pub fn register_tls_key(&mut self, flow: FlowId, key: [u8; 16]) -> Result<(), EndBoxError> {
        self.enclave.ecall("ecall_tls_key_register", |state, _| {
            state.tls_keys.register(flow, key);
        })?;
        Ok(())
    }

    // --- introspection --------------------------------------------------------

    /// Reads a Click handler inside the enclave.
    pub fn click_read_handler(&mut self, element: &str, handler: &str) -> Option<String> {
        self.enclave
            .ecall("ecall_click_read_handler", |state, _| {
                state.click.read_handler(element, handler)
            })
            .ok()
            .flatten()
    }

    /// Recycling counters of the in-enclave ingress buffer pool (the
    /// client-side counterpart of the server shards' pool stats, so both
    /// ends of the tunnel report ingress reuse).
    ///
    /// Rides the `ecall_click_element_count` introspection transition —
    /// the same counters ecall [`EnclaveApp::packet_counters`] uses — so
    /// the declared interface keeps the paper's exact 70-call shape
    /// (§IV-B; the attack battery pins it). Like the other counter reads,
    /// a destroyed enclave yields default (all-zero) stats.
    pub fn ingress_pool_stats(&mut self) -> PoolStats {
        self.enclave
            .ecall("ecall_click_element_count", |state, _| state.pool.stats())
            .unwrap_or_default()
    }

    /// (accepted, dropped, c2c-bypassed) packet counters.
    pub fn packet_counters(&mut self) -> (u64, u64, u64) {
        self.enclave
            .ecall("ecall_click_element_count", |state, _| {
                (state.accepted, state.dropped, state.c2c_bypassed)
            })
            .unwrap_or((0, 0, 0))
    }

    /// The enclave measurement (for attestation tests).
    pub fn measurement(&self) -> endbox_sgx::Measurement {
        self.enclave.measurement()
    }

    /// Total transitions executed so far.
    pub fn transition_counters(&self) -> endbox_sgx::enclave::CallCounters {
        self.enclave.counters()
    }

    /// Destroys the enclave (the untrusted host can always do this — a
    /// self-inflicted DoS, §V-A).
    pub fn destroy(&mut self) {
        self.enclave.destroy();
    }

    /// Direct access to the raw enclave (attack tests poke at the
    /// interface).
    pub fn raw_enclave_ecall_names(&self) -> usize {
        self.enclave.declared_ecall_count()
    }

    /// Attempts an arbitrary named ecall — used by the interface-attack
    /// battery; undeclared names must fail.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Enclave`] for undeclared calls.
    pub fn try_raw_ecall(&mut self, name: &str) -> Result<(), EndBoxError> {
        self.enclave.ecall(name, |_, _| ())?;
        Ok(())
    }
}

/// All in-enclave work is charged to the same client-machine meter.
fn services_meter(services: &endbox_sgx::EnclaveServices) -> CycleMeter {
    services.meter_handle()
}
