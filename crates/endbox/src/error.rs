//! Unified error type for the EndBox crate.

use endbox_click::ClickError;
use endbox_sgx::EnclaveError;
use endbox_vpn::VpnError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by EndBox operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EndBoxError {
    /// VPN-layer failure.
    Vpn(VpnError),
    /// Enclave failure.
    Enclave(EnclaveError),
    /// Click failure.
    Click(ClickError),
    /// Attestation/enrollment failure.
    Enrollment(&'static str),
    /// Configuration update failure (bad signature, replayed version…).
    ConfigUpdate(&'static str),
    /// The client is not in the right state (e.g. sending before
    /// connecting).
    NotReady(&'static str),
    /// The middlebox dropped the packet (not an error per se; surfaced so
    /// callers can count drops).
    PacketDropped,
}

impl fmt::Display for EndBoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndBoxError::Vpn(e) => write!(f, "vpn: {e}"),
            EndBoxError::Enclave(e) => write!(f, "enclave: {e}"),
            EndBoxError::Click(e) => write!(f, "click: {e}"),
            EndBoxError::Enrollment(why) => write!(f, "enrollment failed: {why}"),
            EndBoxError::ConfigUpdate(why) => write!(f, "config update failed: {why}"),
            EndBoxError::NotReady(why) => write!(f, "not ready: {why}"),
            EndBoxError::PacketDropped => f.write_str("packet dropped by middlebox"),
        }
    }
}

impl Error for EndBoxError {}

impl From<VpnError> for EndBoxError {
    fn from(e: VpnError) -> Self {
        EndBoxError::Vpn(e)
    }
}

impl From<EnclaveError> for EndBoxError {
    fn from(e: EnclaveError) -> Self {
        EndBoxError::Enclave(e)
    }
}

impl From<ClickError> for EndBoxError {
    fn from(e: ClickError) -> Self {
        EndBoxError::Click(e)
    }
}
