//! The EndBox client: the untrusted half (tun I/O, fragmentation,
//! sockets, config fetching) wrapped around the trusted
//! [`crate::enclave_app::EnclaveApp`].
//!
//! The same type also models a *vanilla OpenVPN client*
//! ([`TrustLevel::Untrusted`]): identical protocol logic with no enclave
//! charges and no Click — the baseline of Fig. 8.

use crate::ca::CertificateAuthority;
use crate::config_update::ConfigServer;
use crate::enclave_app::{EgressResult, EnclaveApp, EnclaveAppConfig};
use crate::error::EndBoxError;
use endbox_click::element::FlowId;
use endbox_crypto::schnorr::VerifyingKey;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::time::SharedClock;
use endbox_netsim::Packet;
use endbox_netsim::PacketBatch;
use endbox_sgx::attestation::{CpuIdentity, IasSimulator, QuotingEnclave};
use endbox_sgx::SgxMode;
use endbox_vpn::channel::CipherSuite;
use endbox_vpn::frag::{Fragmenter, Reassembler};
use endbox_vpn::ping::PingMessage;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::{PROTOCOL_V1, PROTOCOL_V2};

/// How much hardware protection the client's middlebox gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustLevel {
    /// No enclave at all: a vanilla OpenVPN client (baseline).
    Untrusted,
    /// EndBox with the SDK simulation mode (EndBox-SIM).
    Simulation,
    /// EndBox with hardware SGX (EndBox-SGX).
    Hardware,
}

impl TrustLevel {
    fn sgx_mode(self) -> SgxMode {
        match self {
            // Untrusted reuses the simulation container with zeroed costs.
            TrustLevel::Untrusted | TrustLevel::Simulation => SgxMode::Simulation,
            TrustLevel::Hardware => SgxMode::Hardware,
        }
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct EndBoxClientConfig {
    /// Certificate subject for this client.
    pub subject: String,
    /// Protection level.
    pub trust: TrustLevel,
    /// Data-channel suite.
    pub suite: CipherSuite,
    /// Click configuration (`None` = vanilla client without middlebox).
    pub click_config: Option<String>,
    /// Initial configuration version.
    pub config_version: u64,
    /// Offered protocol version.
    pub offered_version: u8,
    /// Minimum accepted protocol version (enforced inside the enclave).
    pub min_version: u8,
    /// Client-to-client QoS flagging optimisation (§IV-A).
    pub c2c_flagging: bool,
    /// One ecall per packet (the §IV-A optimisation) vs one per crypto op.
    pub batched_ecalls: bool,
    /// CA public key baked into the binary.
    pub ca_public: VerifyingKey,
    /// Cost model.
    pub cost: CostModel,
    /// Client machine cycle meter.
    pub meter: CycleMeter,
    /// Simulation clock.
    pub clock: SharedClock,
    /// Platform identity (CPU fuse keys).
    pub cpu: CpuIdentity,
    /// Deterministic seed.
    pub rng_seed: u64,
}

impl EndBoxClientConfig {
    /// A reasonable default configuration for `subject` on `cpu`,
    /// protected by `ca_public`.
    pub fn new(subject: &str, ca_public: VerifyingKey, cpu: CpuIdentity) -> Self {
        EndBoxClientConfig {
            subject: subject.to_string(),
            trust: TrustLevel::Hardware,
            suite: CipherSuite::Aes128CbcHmac,
            click_config: Some("FromDevice(tun0) -> ToDevice(tun0);".to_string()),
            config_version: 1,
            offered_version: PROTOCOL_V2,
            min_version: PROTOCOL_V1,
            c2c_flagging: false,
            batched_ecalls: true,
            ca_public,
            cost: CostModel::calibrated(),
            meter: CycleMeter::new(),
            clock: SharedClock::new(),
            cpu,
            rng_seed: 0xc11e47,
        }
    }
}

/// Client-side traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Packets handed to the tunnel by applications.
    pub sent: u64,
    /// Packets delivered to applications.
    pub received: u64,
    /// Egress packets dropped by the middlebox.
    pub dropped_egress: u64,
    /// Ingress packets dropped by the middlebox.
    pub dropped_ingress: u64,
    /// Datagrams emitted on the wire.
    pub datagrams_out: u64,
}

/// The EndBox client.
#[derive(Debug)]
pub struct EndBoxClient {
    app: EnclaveApp,
    trust: TrustLevel,
    fragmenter: Fragmenter,
    reassembler: Reassembler,
    qe: QuotingEnclave,
    cost: CostModel,
    meter: CycleMeter,
    clock: SharedClock,
    session_id: Option<u64>,
    pending_update: Option<u64>,
    /// Traffic counters.
    pub stats: ClientStats,
}

impl EndBoxClient {
    /// Builds the client (creates the enclave, loads the initial Click
    /// configuration).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] for invalid initial configurations.
    pub fn new(cfg: EndBoxClientConfig) -> Result<EndBoxClient, EndBoxError> {
        // Vanilla clients pay no enclave costs: zero out transition and
        // partition charges, and run without a middlebox.
        let mut cost = cfg.cost.clone();
        let click_config = match cfg.trust {
            TrustLevel::Untrusted => {
                cost.ecall_sim = 0;
                cost.partition_per_packet = 0;
                cost.partition_per_byte = 0.0;
                None
            }
            _ => cfg.click_config.clone(),
        };
        let app = EnclaveApp::new(EnclaveAppConfig {
            subject: cfg.subject.clone(),
            mode: cfg.trust.sgx_mode(),
            suite: cfg.suite,
            click_config: click_config
                .unwrap_or_else(|| "FromDevice(tun0) -> ToDevice(tun0);".to_string()),
            click_config_version: cfg.config_version,
            ca_public: cfg.ca_public,
            offered_version: cfg.offered_version,
            min_version: cfg.min_version,
            c2c_flagging: cfg.c2c_flagging,
            batched_ecalls: cfg.batched_ecalls,
            cost: cost.clone(),
            meter: cfg.meter.clone(),
            clock: cfg.clock.clone(),
            cpu: cfg.cpu.clone(),
            rng_seed: cfg.rng_seed,
        })?;
        Ok(EndBoxClient {
            app,
            trust: cfg.trust,
            fragmenter: Fragmenter::new(),
            reassembler: Reassembler::new(),
            qe: QuotingEnclave::new(cfg.cpu),
            cost,
            meter: cfg.meter,
            clock: cfg.clock,
            session_id: None,
            pending_update: None,
            stats: ClientStats::default(),
        })
    }

    /// Runs the full Fig. 4 enrollment against the CA and IAS. Returns the
    /// sealed enrollment blob the host should persist: a later restart can
    /// skip attestation via [`EndBoxClient::restore_enrollment`].
    ///
    /// # Errors
    ///
    /// Attestation failures (unknown measurement, revoked platform, …).
    pub fn enroll(
        &mut self,
        subject: &str,
        ca: &mut CertificateAuthority,
        ias: &IasSimulator,
        rng: &mut impl rand::RngCore,
    ) -> Result<Vec<u8>, EndBoxError> {
        let report = self.app.begin_enrollment()?;
        let quote = self.qe.quote(&report, rng)?;
        let now_secs = self.clock.now().as_secs_f64() as u64;
        let response = ca.enroll(subject, &quote, ias, now_secs, rng)?;
        self.app.finish_enrollment(&response, now_secs)
    }

    /// Restores a previous enrollment from its sealed blob — no CA or IAS
    /// interaction needed ("an enclave only has to be attested once",
    /// §III-C).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Enrollment`] when the blob was sealed on a different
    /// CPU or by different enclave code.
    pub fn restore_enrollment(&mut self, sealed: &[u8]) -> Result<(), EndBoxError> {
        self.app.restore_enrollment(sealed)
    }

    /// Starts the VPN handshake; send the returned datagrams to the
    /// server.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before enrollment.
    pub fn connect_start(&mut self) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self.app.handshake_start()?;
        Ok(self.fragment_record(&record))
    }

    /// Completes the handshake from the server's response datagram.
    ///
    /// # Errors
    ///
    /// Handshake validation failures.
    pub fn connect_complete(&mut self, datagram: &[u8]) -> Result<(), EndBoxError> {
        let Some(bytes) = self.reassembler.push(datagram)? else {
            return Err(EndBoxError::NotReady("handshake response incomplete"));
        };
        let record = Record::from_bytes(&bytes)?;
        if record.opcode != Opcode::HandshakeResp {
            return Err(EndBoxError::Vpn(endbox_vpn::VpnError::Malformed(
                "expected HandshakeResp",
            )));
        }
        let session = self.app.handshake_complete(&record)?;
        self.session_id = Some(session);
        Ok(())
    }

    /// True once the tunnel is established.
    pub fn is_connected(&self) -> bool {
        self.session_id.is_some()
    }

    /// The negotiated session id.
    pub fn session_id(&self) -> Option<u64> {
        self.session_id
    }

    /// Sends one IP packet through the middlebox and tunnel. Returns the
    /// wire datagrams (possibly several fragments), or an empty vector if
    /// the middlebox dropped the packet.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before connecting.
    pub fn send_packet(&mut self, packet: Packet) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.stats.sent += 1;
        // Untrusted side: tun read + user-space bookkeeping.
        self.meter.add(
            self.cost.vpn_per_write + (self.cost.memcpy_per_byte * packet.len() as f64) as u64,
        );
        match self.app.process_egress(packet)? {
            EgressResult::Dropped => {
                self.stats.dropped_egress += 1;
                Ok(Vec::new())
            }
            EgressResult::Sealed(record) => Ok(self.fragment_record(&record)),
        }
    }

    /// Sends a whole batch of IP packets through the middlebox and tunnel
    /// as **one** unit: one enclave transition, one Click traversal, one
    /// sealed `DataBatch` record (then fragmented as usual). Returns the
    /// wire datagrams, empty when the middlebox dropped every packet.
    ///
    /// Per-packet tun reads still cost what they cost on the untrusted
    /// side; the batching win is on the enclave boundary, the record
    /// framing and the crypto fixed costs.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before connecting.
    pub fn send_batch(&mut self, packets: Vec<Packet>) -> Result<Vec<Vec<u8>>, EndBoxError> {
        if packets.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.sent += packets.len() as u64;
        let total_bytes: usize = packets.iter().map(Packet::len).sum();
        // Untrusted side: one tun read + bookkeeping per packet.
        self.meter.add(
            self.cost.vpn_per_write * packets.len() as u64
                + (self.cost.memcpy_per_byte * total_bytes as f64) as u64,
        );
        let result = self.app.process_egress_batch(PacketBatch::from(packets))?;
        self.stats.dropped_egress += result.dropped as u64;
        match result.record {
            None => Ok(Vec::new()),
            Some(record) => Ok(self.fragment_record(&record)),
        }
    }

    /// Receives one wire datagram on the batched path; returns every
    /// packet delivered once a full record reassembles. Handles plain
    /// `Data`, batched `DataBatch` and `Ping` records, so a receive loop
    /// can be pointed at a mixed stream.
    ///
    /// # Errors
    ///
    /// Authentication/replay/fragmentation failures.
    pub fn receive_datagram_batch(&mut self, datagram: &[u8]) -> Result<Vec<Packet>, EndBoxError> {
        self.meter.add(self.cost.vpn_per_fragment);
        let Some(bytes) = self.reassembler.push(datagram)? else {
            return Ok(Vec::new());
        };
        let record = Record::from_bytes(&bytes)?;
        self.dispatch_record(&record)
    }

    /// Shared data-path dispatch for reassembled records (both receive
    /// entry points), including stats/meter accounting.
    fn dispatch_record(&mut self, record: &Record) -> Result<Vec<Packet>, EndBoxError> {
        match record.opcode {
            Opcode::DataBatch => {
                let result = self.app.process_ingress_batch(record)?;
                let delivered = result.packets;
                self.stats.received += delivered.len() as u64;
                self.stats.dropped_ingress += (result.frames - delivered.len()) as u64;
                // Untrusted side: one tun write per delivered packet.
                self.meter
                    .add(self.cost.vpn_per_write * delivered.len() as u64);
                Ok(delivered)
            }
            Opcode::Data => {
                let delivered = self.app.process_ingress(record)?;
                match delivered {
                    Some(pkt) => {
                        self.stats.received += 1;
                        // Untrusted side: write to the application/tun.
                        self.meter.add(self.cost.vpn_per_write);
                        Ok(vec![pkt])
                    }
                    None => {
                        self.stats.dropped_ingress += 1;
                        Ok(Vec::new())
                    }
                }
            }
            Opcode::Ping => {
                let msg = self.app.process_ping(record)?;
                self.note_announcement(&msg);
                Ok(Vec::new())
            }
            _ => Err(EndBoxError::Vpn(endbox_vpn::VpnError::Malformed(
                "unexpected record on data path",
            ))),
        }
    }

    /// Receives one wire datagram; returns a packet when a full record
    /// reassembles, decrypts, and passes the middlebox. (Batched
    /// `DataBatch` records go through
    /// [`EndBoxClient::receive_datagram_batch`].)
    ///
    /// # Errors
    ///
    /// Authentication/replay/fragmentation failures.
    pub fn receive_datagram(&mut self, datagram: &[u8]) -> Result<Option<Packet>, EndBoxError> {
        self.meter.add(self.cost.vpn_per_fragment);
        let Some(bytes) = self.reassembler.push(datagram)? else {
            return Ok(None);
        };
        let record = Record::from_bytes(&bytes)?;
        if record.opcode == Opcode::DataBatch {
            // A batched record can deliver several packets; this
            // single-packet entry point cannot represent that without
            // silently dropping the rest.
            return Err(EndBoxError::Vpn(endbox_vpn::VpnError::Malformed(
                "batched record on single-packet receive path",
            )));
        }
        Ok(self.dispatch_record(&record)?.pop())
    }

    fn note_announcement(&mut self, msg: &PingMessage) {
        let current = self.app.config_version();
        if msg.config_version > current {
            self.pending_update = Some(msg.config_version);
        }
    }

    /// A configuration version announced by the server that we have not
    /// applied yet (Fig. 5 step 5).
    pub fn pending_update(&self) -> Option<u64> {
        self.pending_update
    }

    /// Fetches and applies a pending update from the config server
    /// (Fig. 5 steps 6–8). Returns `true` if an update was applied.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::ConfigUpdate`] on verification failures.
    pub fn fetch_and_apply_update(
        &mut self,
        config_server: &ConfigServer,
    ) -> Result<bool, EndBoxError> {
        let Some(version) = self.pending_update else {
            return Ok(false);
        };
        let signed = config_server
            .fetch(version)
            .ok_or(EndBoxError::ConfigUpdate(
                "announced version not on config server",
            ))?;
        self.app.apply_config(signed)?;
        self.pending_update = None;
        Ok(true)
    }

    /// Builds the client's periodic ping (proves the config version,
    /// Fig. 5 step 9).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] before connecting.
    pub fn build_ping(&mut self) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self.app.build_ping()?;
        Ok(self.fragment_record(&record))
    }

    /// Registers a TLS session key forwarded by the patched TLS library
    /// (§III-D management-interface path).
    ///
    /// # Errors
    ///
    /// Enclave interface errors.
    pub fn register_tls_key(&mut self, flow: FlowId, key: [u8; 16]) -> Result<(), EndBoxError> {
        self.app.register_tls_key(flow, key)
    }

    /// Reads a Click handler inside the enclave (management interface).
    pub fn click_handler(&mut self, element: &str, handler: &str) -> Option<String> {
        self.app.click_read_handler(element, handler)
    }

    /// The configuration version currently applied.
    pub fn config_version(&mut self) -> u64 {
        self.app.config_version()
    }

    /// Direct access to the enclave application (tests, attack battery).
    pub fn enclave_app(&mut self) -> &mut EnclaveApp {
        &mut self.app
    }

    /// Recycling counters of the in-enclave ingress buffer pool — the
    /// client-side counterpart of the server shards' `PoolStats`, so
    /// ingress reuse is observable on both ends of the tunnel.
    pub fn ingress_pool_stats(&mut self) -> endbox_netsim::PoolStats {
        self.app.ingress_pool_stats()
    }

    /// This client's trust level.
    pub fn trust(&self) -> TrustLevel {
        self.trust
    }

    /// The client's cycle meter.
    pub fn meter(&self) -> &CycleMeter {
        &self.meter
    }

    fn fragment_record(&mut self, record: &Record) -> Vec<Vec<u8>> {
        // Fragmentation/encapsulation happens outside the enclave on the
        // sealed bytes (Fig. 3).
        let bytes = record.to_bytes();
        let frags = self.fragmenter.fragment(&bytes, self.cost.mtu_payload);
        self.meter
            .add(self.cost.vpn_per_fragment * frags.len() as u64);
        self.stats.datagrams_out += frags.len() as u64;
        frags
    }
}
