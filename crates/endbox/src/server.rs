//! The EndBox server: the sole entry point into the managed network.
//!
//! Only traffic sealed by a correctly attested client decrypts here, so
//! bypassing the client-side middlebox yields traffic the firewall drops
//! (§III-A, R2). The server also sanitises the client-to-client QoS flag
//! on packets entering from outside ("the ENDBOX server removes the QoS
//! byte if it is set to 0xeb", §IV-A) and optionally runs a *server-side*
//! Click instance (the OpenVPN+Click baseline of §V).

use crate::error::EndBoxError;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::packet::QOS_ENDBOX_PROCESSED;
use endbox_netsim::time::SharedClock;
use endbox_netsim::{Packet, PacketBatch};
use endbox_vpn::channel::CipherSuite;
use endbox_vpn::frag::{Fragmenter, Reassembler};
use endbox_vpn::handshake::HandshakeConfig;
use endbox_vpn::ping::PingMessage;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::server::{ServerEvent, VpnServer};
use std::collections::HashMap;

/// Server configuration.
#[derive(Debug)]
pub struct EndBoxServerConfig {
    /// Handshake identity/policy (certificate issued by the CA).
    pub handshake: HandshakeConfig,
    /// Data-channel suite.
    pub suite: CipherSuite,
    /// Optional server-side Click configuration (OpenVPN+Click baseline).
    pub server_click: Option<String>,
    /// Cost model.
    pub cost: CostModel,
    /// Server machine cycle meter.
    pub meter: CycleMeter,
    /// Simulation clock.
    pub clock: SharedClock,
    /// Deterministic seed.
    pub rng_seed: u64,
}

/// What the server did with a received datagram.
#[derive(Debug)]
pub enum Delivery {
    /// Incomplete record (more fragments pending).
    Pending,
    /// Handshake finished; send these datagrams back to the client.
    Established {
        /// New session id.
        session_id: u64,
        /// Response datagrams for the client.
        response: Vec<Vec<u8>>,
    },
    /// A tunnel packet was delivered into the managed network.
    Packet {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packet.
        packet: Packet,
    },
    /// A batched record delivered several tunnel packets at once (§IV
    /// batching). Packets the server-side Click dropped are already
    /// filtered out (see `counters`).
    PacketBatch {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packets, in batch order.
        packets: Vec<Packet>,
    },
    /// A client ping arrived (config-version proof).
    Ping {
        /// Originating session.
        session_id: u64,
        /// Contents.
        message: PingMessage,
    },
    /// The session disconnected.
    Disconnected {
        /// Session that ended.
        session_id: u64,
    },
}

/// The EndBox VPN server.
pub struct EndBoxServer {
    vpn: VpnServer,
    reassemblers: HashMap<u64, Reassembler>,
    fragmenter: Fragmenter,
    server_click: Option<Router>,
    cost: CostModel,
    meter: CycleMeter,
    clock: SharedClock,
    delivered: u64,
    click_dropped: u64,
    rejected: u64,
}

impl std::fmt::Debug for EndBoxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndBoxServer")
            .field("sessions", &self.vpn.session_count())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl EndBoxServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] if the server-side Click config is invalid.
    pub fn new(cfg: EndBoxServerConfig) -> Result<EndBoxServer, EndBoxError> {
        let server_click = match &cfg.server_click {
            None => None,
            Some(text) => {
                let env = ElementEnv {
                    cost: cfg.cost.clone(),
                    meter: cfg.meter.clone(),
                    clock: cfg.clock.clone(),
                    in_enclave: false,
                    hardware_mode: false,
                    // The attached Click receives packets over a socket
                    // from OpenVPN; it does not own devices (fetch/IPC
                    // costs are charged on delivery instead).
                    device_io: false,
                    tls_keys: Default::default(),
                };
                Some(Router::from_config(text, env)?)
            }
        };
        let vpn = VpnServer::new(
            cfg.handshake,
            cfg.suite,
            cfg.meter.clone(),
            cfg.cost.clone(),
            cfg.rng_seed,
        );
        Ok(EndBoxServer {
            vpn,
            reassemblers: HashMap::new(),
            fragmenter: Fragmenter::new(),
            server_click,
            cost: cfg.cost,
            meter: cfg.meter,
            clock: cfg.clock,
            delivered: 0,
            click_dropped: 0,
            rejected: 0,
        })
    }

    /// Receives one wire datagram from peer `peer_id` (a socket-address
    /// analogue used to separate fragment streams).
    ///
    /// # Errors
    ///
    /// Every authentication/policy failure; callers drop the traffic.
    pub fn receive_datagram(
        &mut self,
        peer_id: u64,
        datagram: &[u8],
    ) -> Result<Delivery, EndBoxError> {
        self.meter.add(self.cost.vpn_server_per_fragment);
        let reasm = self.reassemblers.entry(peer_id).or_default();
        let Some(bytes) = reasm.push(datagram).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?
        else {
            return Ok(Delivery::Pending);
        };
        let record = Record::from_bytes(&bytes)?;
        let now_secs = self.clock.now().as_secs_f64() as u64;
        let event = self.vpn.handle_record(&record, now_secs).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?;
        match event {
            ServerEvent::Established {
                session_id,
                response,
                ..
            } => {
                let datagrams = self.fragment(&response);
                Ok(Delivery::Established {
                    session_id,
                    response: datagrams,
                })
            }
            ServerEvent::Data {
                session_id,
                payload,
            } => {
                let mut packet = Packet::from_bytes(payload).map_err(|_| {
                    EndBoxError::Vpn(endbox_vpn::VpnError::Malformed("bad tunnelled packet"))
                })?;
                // Server-side Click (OpenVPN+Click baseline): fetch cost +
                // element processing.
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the packet to the Click process and back:
                    // fetch copies plus inter-process crossings.
                    self.meter.add(
                        self.cost.click_fetch_per_packet
                            + self.cost.click_ipc_per_packet
                            + (self.cost.click_fetch_per_byte * packet.len() as f64) as u64,
                    );
                    let out = click.process(packet);
                    if !out.accepted {
                        self.click_dropped += 1;
                        return Err(EndBoxError::PacketDropped);
                    }
                    packet = out.emitted.into_iter().next().expect("accepted");
                }
                // Deliver into the managed network.
                self.meter.add(self.cost.vpn_per_write);
                self.delivered += 1;
                Ok(Delivery::Packet { session_id, packet })
            }
            ServerEvent::DataBatch {
                session_id,
                payloads,
            } => {
                let mut packets = Vec::with_capacity(payloads.len());
                for payload in payloads {
                    packets.push(Packet::from_bytes(payload).map_err(|_| {
                        EndBoxError::Vpn(endbox_vpn::VpnError::Malformed("bad tunnelled packet"))
                    })?);
                }
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the whole batch to the Click process at
                    // once: the IPC crossing is paid once per batch, the
                    // fetch copies per packet/byte as before.
                    let total: usize = packets.iter().map(Packet::len).sum();
                    self.meter.add(
                        self.cost.click_fetch_per_packet * packets.len() as u64
                            + self.cost.click_ipc_per_packet
                            + (self.cost.click_fetch_per_byte * total as f64) as u64,
                    );
                    let n = packets.len();
                    let out = click.process_batch(PacketBatch::from(packets));
                    self.click_dropped += (n - out.accepted) as u64;
                    packets = out.into_first_emissions();
                }
                // Deliver into the managed network: one write per packet.
                self.meter
                    .add(self.cost.vpn_per_write * packets.len() as u64);
                self.delivered += packets.len() as u64;
                Ok(Delivery::PacketBatch {
                    session_id,
                    packets,
                })
            }
            ServerEvent::Ping {
                session_id,
                message,
            } => Ok(Delivery::Ping {
                session_id,
                message,
            }),
            ServerEvent::Disconnected { session_id } => {
                self.reassemblers.remove(&peer_id);
                Ok(Delivery::Disconnected { session_id })
            }
        }
    }

    /// Seals and fragments a packet towards a client (ingress direction).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_to_client(
        &mut self,
        session_id: u64,
        packet: &Packet,
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.meter.add(
            self.cost.vpn_per_write + (self.cost.memcpy_per_byte * packet.len() as f64) as u64,
        );
        let record = self
            .vpn
            .seal_to_client(session_id, Opcode::Data, packet.bytes())?;
        Ok(self.fragment(&record))
    }

    /// Seals several packets towards a client as **one** `DataBatch`
    /// record (ingress direction, §IV batching), then fragments it.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_batch_to_client(
        &mut self,
        session_id: u64,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let total: usize = packets.iter().map(Packet::len).sum();
        self.meter.add(
            self.cost.vpn_per_write * packets.len() as u64
                + (self.cost.memcpy_per_byte * total as f64) as u64,
        );
        let payloads: Vec<&[u8]> = packets.iter().map(Packet::bytes).collect();
        let record = self.vpn.seal_batch_to_client(session_id, &payloads)?;
        Ok(self.fragment(&record))
    }

    /// Sanitises a packet arriving from *outside* the managed network:
    /// clears a spoofed `0xeb` QoS flag so external traffic cannot skip
    /// client-side Click processing (§IV-A).
    pub fn sanitize_external(&self, packet: &mut Packet) {
        if packet.tos() == QOS_ENDBOX_PROCESSED {
            packet.set_tos(0);
        }
    }

    /// Announces a configuration update (Fig. 5 steps 2–3).
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32) {
        let now_secs = self.clock.now().as_secs_f64() as u64;
        self.vpn
            .announce_config(version, grace_period_secs, now_secs);
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn make_ping(&mut self, session_id: u64) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self
            .vpn
            .make_ping(session_id, self.clock.now().as_nanos())?;
        Ok(self.fragment(&record))
    }

    /// Connected session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.vpn.session_ids()
    }

    /// Connected client count.
    pub fn session_count(&self) -> usize {
        self.vpn.session_count()
    }

    /// The config version a session has proved via ping.
    pub fn client_config_version(&self, session_id: u64) -> Option<u64> {
        self.vpn
            .session(session_id)
            .map(|s| s.reported_config_version)
    }

    /// (delivered, click-dropped, rejected) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.delivered, self.click_dropped, self.rejected)
    }

    /// Reads a handler on the server-side Click instance, if any.
    pub fn server_click_handler(&self, element: &str, handler: &str) -> Option<String> {
        self.server_click.as_ref()?.read_handler(element, handler)
    }

    /// Hot-swaps the server-side Click configuration (used by the vanilla
    /// Click reconfiguration baseline of Table II).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] on invalid configs or if no server-side
    /// Click exists.
    pub fn hot_swap_server_click(&mut self, config: &str) -> Result<(), EndBoxError> {
        match self.server_click.as_mut() {
            Some(router) => {
                router.hot_swap(config)?;
                Ok(())
            }
            None => Err(EndBoxError::NotReady("no server-side Click instance")),
        }
    }

    fn fragment(&mut self, record: &Record) -> Vec<Vec<u8>> {
        let bytes = record.to_bytes();
        let frags = self.fragmenter.fragment(&bytes, self.cost.mtu_payload);
        self.meter
            .add(self.cost.vpn_server_per_fragment * frags.len() as u64);
        frags
    }
}
